"""RAPL-style windowed power limiting as a control loop.

Bodas et al. [8] ("simple power-aware scheduler to limit power
consumption by HPC system within a budget") and the RAPL-based works
the survey cites rely on running-average enforcement: short bursts
above the limit are fine, the window average is not.  This policy
gives every node a :class:`~repro.power.rapl.RaplDomain` and closes
the loop with DVFS: step a node's frequency down while its window is
non-compliant, step back up while there is allowance headroom.

Compared to a static cap at the same wattage, the windowed control
lets bursty jobs keep full frequency through short spikes — the
defining RAPL advantage.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.epa import FunctionalCategory
from ..power.dvfs import FrequencyLadder
from ..power.rapl import RaplDomain
from ..units import check_positive
from .base import Policy


class RaplEnforcementPolicy(Policy):
    """Per-node windowed power limits enforced via DVFS stepping.

    Parameters
    ----------
    node_limit_watts:
        The running-average limit per node.
    window:
        Averaging window, seconds.
    check_interval:
        Sampling/control period (several samples per window).
    ladder:
        DVFS steps; defaults to 6 steps over the node range.
    """

    name = "rapl-enforcement"

    def __init__(
        self,
        node_limit_watts: float,
        window: float = 600.0,
        check_interval: float = 60.0,
        ladder: FrequencyLadder = None,
    ) -> None:
        super().__init__()
        self.node_limit_watts = check_positive("node_limit_watts",
                                               node_limit_watts)
        self.window = check_positive("window", window)
        self.control_interval = check_positive("check_interval", check_interval)
        self.ladder = ladder
        self.domains: Dict[int, RaplDomain] = {}
        self.steps_down = 0
        self.steps_up = 0

    def on_attach(self) -> None:
        machine = self.simulation.machine
        if self.ladder is None:
            node = machine.nodes[0]
            self.ladder = FrequencyLadder.linear(
                node.min_frequency, node.max_frequency, steps=6
            )
        self.domains = {
            n.node_id: RaplDomain(self.node_limit_watts, self.window)
            for n in machine.nodes
        }

    def on_tick(self, now: float) -> None:
        machine = self.simulation.machine
        rm = self.simulation.rm
        to_lower: List = []
        to_raise: List = []
        # One vectorized kernel gives every node's draw (machine.nodes
        # order); only the window bookkeeping and the rare step
        # decisions remain per-node.
        all_watts = self.simulation.node_watts()
        for node, watts in zip(machine.nodes, all_watts):
            domain = self.domains[node.node_id]
            domain.record(now, watts)
            if not node.is_on:
                continue
            if not domain.compliant(now):
                new_freq = self.ladder.step_down(node.frequency)
                if new_freq < node.frequency:
                    to_lower.append((node, new_freq))
            else:
                # Headroom: if even a one-step-up draw fits the current
                # allowance, recover performance.
                allowance = domain.allowance(now)
                up = self.ladder.step_up(node.frequency)
                if up > node.frequency:
                    ratio = up / node.max_frequency
                    model = self.simulation.power_model
                    predicted = model.power_at_ratio(node, ratio, 1.0)
                    if predicted <= allowance:
                        to_raise.append((node, up))
        for node, freq in to_lower:
            rm.set_frequency([node], freq)
            self.steps_down += 1
        for node, freq in to_raise:
            rm.set_frequency([node], freq)
            self.steps_up += 1

    def compliant_fraction(self, now: float) -> float:
        """Fraction of nodes whose window average meets the limit."""
        if not self.domains:
            return 1.0
        ok = sum(1 for d in self.domains.values() if d.compliant(now))
        return ok / len(self.domains)

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "rapl-domains",
                FunctionalCategory.POWER_MONITORING,
                f"per-node {self.window:.0f}s running-average windows",
            ),
            (
                "rapl-dvfs-loop",
                FunctionalCategory.POWER_CONTROL,
                f"step DVFS to hold {self.node_limit_watts:.0f} W/node "
                f"window average",
            ),
        ]
