#!/usr/bin/env python
"""KAUST's production deployment: static partition power capping.

Table I: "Static power capping via Cray CAPMC.  30% of nodes run
uncapped, 70% run with 270 W power cap."  This example runs the KAUST
center scenario and then compares the capped machine against an
uncapped twin on the same workload, showing the trade the deployment
accepts: a guaranteed worst-case power bound versus slowdown of
compute-heavy jobs on the capped partition.

Run:  python examples/kaust_static_capping.py
"""

import copy

from repro.centers import build_center_simulation
from repro.centers.base import center_workload, standard_machine
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import StaticCappingPolicy
from repro.units import HOUR


def main() -> None:
    # The full center scenario, as registered in the capability matrix.
    build = build_center_simulation("kaust", seed=7, duration=8 * HOUR,
                                    nodes=96)
    print("KAUST scenario:")
    for note in build.notes:
        print(f"  - {note}")
    result = build.simulation.run()
    m = result.metrics
    print(f"  completed {m.jobs_completed}/{m.jobs_submitted}, "
          f"peak {m.peak_power_watts / 1e3:.1f} kW, "
          f"util {m.utilization:.1%}")
    policy = build.simulation.policies[0]
    print(f"  guaranteed worst-case power: "
          f"{policy.worst_case_power() / 1e3:.1f} kW "
          f"(machine peak {build.simulation.machine.peak_power / 1e3:.1f} kW)")

    # Controlled comparison: same workload, capped vs uncapped machine.
    print("\ncapped vs uncapped on identical workload:")
    base_jobs = center_workload("kaust", standard_machine("tmp", nodes=96),
                                duration=8 * HOUR, seed=7)
    for label, policies in (
        ("uncapped", []),
        ("kaust 70%@270W", [StaticCappingPolicy(cap_watts=270.0,
                                                capped_fraction=0.7)]),
    ):
        machine = standard_machine("shaheen", nodes=96, idle_power=110.0,
                                   max_power=360.0, seed=7)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                                copy.deepcopy(base_jobs),
                                policies=policies, seed=7)
        m = sim.run().metrics
        print(f"  {label:16s}: peak {m.peak_power_watts / 1e3:6.1f} kW, "
              f"makespan {m.makespan / 3600:5.2f} h, "
              f"slowdown {m.mean_bounded_slowdown:5.2f}")


if __name__ == "__main__":
    main()
