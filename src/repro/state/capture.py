"""Snapshot and restore of live :class:`ClusterSimulation` state.

Contract
--------
``snapshot(sim)`` walks a *running* simulation and produces a
:class:`~repro.state.serialize.SimState`: a plain-data tree holding the
engine clock/heap/sequence counters, every rng stream position, all
mutable node fields, job life-cycle state, running executions, queue
contents, power-accounting caches (both backends, captured bit-exactly
— a restored run must NOT re-sum, because a full re-sum can differ
from the incremental accumulator in the last ulp), meter and trace
buffers, and scheduler/policy attributes.

``restore(state, factory)`` takes a *factory* — a zero-argument
callable rebuilding a structurally identical fresh simulation (same
machine spec, scheduler, policies, workload, seed, backend; the
executor passes its variant builder) — then wipes the fresh heap and
grafts the captured dynamic state onto it.  A config digest recorded
at snapshot time guards against restoring onto a different recipe.

The round-trip invariant: the restored simulation fires bit-identical
subsequent events, so ``run()`` from a checkpoint finishes with a
``SimulationResult`` identical to the uninterrupted run.  Pass-local
scheduler scratch (e.g. ``FreeNodeProfile`` reservations built inside
one backfill pass) never lives across events, so capturing between
events needs no scheduler-internal heap state.
"""

from __future__ import annotations

import copy
import enum
import hashlib
import json
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from .._version import __version__
from ..buffers import sample_buffer
from ..cluster.node import Node, NodeState
from ..errors import StateError
from ..power.budget import PowerBudget
from ..simulator.trace import TraceRecord
from ..workload.job import Job, JobState, MoldableConfig
from ..workload.phases import Phase, PhaseProfile
from .events import build_event, describe_event, simulation_roots, _roots_by_id
from .serialize import STATE_SCHEMA_VERSION, SimState

#: Enums allowed to round-trip through generic attribute capture.
_ENUMS = {"NodeState": NodeState, "JobState": JobState}

#: Framework classes that must never be swallowed into a generic
#: attribute capture (they are captured through their own dedicated
#: sections, or are structural and rebuilt by the factory).
_FRAMEWORK_CLASSES = frozenset({
    "ClusterSimulation", "Simulator", "Machine", "Site", "ResourceManager",
    "PowerMeter", "TelemetrySampler", "TraceRecorder", "VectorPowerMirror",
    "RngStreams", "Generator", "EpaCoordinator", "JobQueue", "JobExecution",
    "EventHandle", "_ChainHandle", "PeriodicChain", "NodePowerModel",
    "SiteSimulation", "BudgetCoordinator",
})

_FAIL = object()


# ----------------------------------------------------------------------
# Config signature
# ----------------------------------------------------------------------
def _config_signature(sim_obj) -> Dict[str, Any]:
    # ``bulk_ops`` is deliberately NOT part of the signature: the bulk
    # cohort engine is bit-identical to the scalar per-node spec (same
    # decisions, same float accumulation order, same mirror dirty-set
    # contents — the bulk teardown path even marks non-BUSY execution
    # nodes dirty to match the scalar loop), so checkpoints taken under
    # either mode restore interchangeably into the other.
    machine = sim_obj.machine
    node_statics = [
        (n.node_id, n.cores, n.memory_gb, n.idle_power, n.max_power,
         n.boot_time, n.shutdown_time, n.off_power, n.max_frequency,
         n.min_frequency)
        for n in machine.nodes
    ]
    summary = {
        "machine": machine.name,
        "nodes": len(machine),
        "scheduler": type(sim_obj.scheduler).__qualname__,
        "policies": [type(p).__qualname__ for p in sim_obj.policies],
        "seed": sim_obj.rng.seed,
        "backend": "vector" if sim_obj.power_vector is not None else "scalar",
        "components": sorted(
            (key, type(obj).__qualname__)
            for key, obj in getattr(sim_obj, "components", {}).items()
        ),
        "sample_interval": sim_obj.meter.interval,
        "scheduler_interval": sim_obj.scheduler_interval,
        "comm_penalty": sim_obj.comm_penalty,
        "queues": sorted(sim_obj.queue.queue_names),
    }
    digest = hashlib.sha256(
        json.dumps([summary, node_statics], sort_keys=True).encode()
    ).hexdigest()
    return {"digest": digest, "summary": summary}


# ----------------------------------------------------------------------
# Generic attribute capture (schedulers, policies)
# ----------------------------------------------------------------------
def _encode_value(value: Any, depth: int = 0) -> Any:
    if depth > 12:
        return _FAIL
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, enum.Enum):
        kind = type(value).__name__
        if kind not in _ENUMS:
            return _FAIL
        return {"$enum": [kind, value.value]}
    if isinstance(value, Job):
        return {"$job": value.job_id}
    if isinstance(value, Node):
        return {"$node": value.node_id}
    if isinstance(value, PowerBudget):
        return {"$budget": _encode_budget(value)}
    if isinstance(value, (list, tuple)):
        items = [_encode_value(v, depth + 1) for v in value]
        if any(item is _FAIL for item in items):
            return _FAIL
        return items if isinstance(value, list) else tuple(items)
    if isinstance(value, (set, frozenset)):
        items = [_encode_value(v, depth + 1) for v in value]
        if any(item is _FAIL for item in items):
            return _FAIL
        return set(items)
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, (str, int, float, bool)) and k is not None:
                return _FAIL
            ev = _encode_value(v, depth + 1)
            if ev is _FAIL:
                return _FAIL
            out[k] = ev
        return out
    if callable(value):
        return _FAIL
    cls = type(value)
    if cls.__name__ in _FRAMEWORK_CLASSES:
        return _FAIL
    from ..core.scheduler import Scheduler
    from ..policies.base import Policy
    if isinstance(value, (Scheduler, Policy)):
        return _FAIL
    # Nested stateful helper owned by the component (e.g. a runtime
    # predictor, a frequency ladder, a frozen config dataclass): capture
    # its plain attributes and re-apply them onto the factory-built
    # counterpart at restore time.
    if cls.__module__.startswith("repro.") and hasattr(value, "__dict__"):
        attrs = {}
        for k, v in vars(value).items():
            ev = _encode_value(v, depth + 1)
            if ev is not _FAIL:
                attrs[k] = ev
        return {"$obj": {"class": cls.__qualname__, "attrs": attrs}}
    return _FAIL


def _encode_budget(budget: PowerBudget) -> Dict[str, Any]:
    return {
        "name": budget.name,
        "limit": budget.limit_watts,
        "reserved": budget.reserved,
        "children": [_encode_budget(c) for c in budget.children.values()],
    }


def _build_budget(desc: Dict[str, Any], parent: Optional[PowerBudget]) -> PowerBudget:
    budget = PowerBudget(desc["name"], desc["limit"], parent=parent)
    budget._reserved = desc["reserved"]
    for child in desc["children"]:
        _build_budget(child, budget)
    return budget


class _RestoreContext:
    __slots__ = ("job_by_id", "machine")

    def __init__(self, job_by_id: Dict[str, Job], machine) -> None:
        self.job_by_id = job_by_id
        self.machine = machine


def _decode_value(enc: Any, ctx: _RestoreContext) -> Any:
    if isinstance(enc, dict):
        if "$enum" in enc:
            kind, value = enc["$enum"]
            return _ENUMS[kind](value)
        if "$job" in enc:
            try:
                return ctx.job_by_id[enc["$job"]]
            except KeyError:
                raise StateError(f"restored simulation has no job {enc['$job']!r}")
        if "$node" in enc:
            return ctx.machine.node(enc["$node"])
        if "$budget" in enc:
            return _build_budget(enc["$budget"], None)
        if "$obj" in enc:
            # Reached only when an $obj sits inside a container (no
            # existing target to patch): not restorable in place.
            raise StateError(
                f"cannot rebuild nested object {enc['$obj']['class']!r} "
                f"inside a container; give the owning component explicit "
                f"__repro_getstate__/__repro_setstate__ hooks"
            )
        return {k: _decode_value(v, ctx) for k, v in enc.items()}
    if isinstance(enc, list):
        return [_decode_value(v, ctx) for v in enc]
    if isinstance(enc, tuple):
        return tuple(_decode_value(v, ctx) for v in enc)
    if isinstance(enc, set):
        return set(_decode_value(v, ctx) for v in enc)
    if isinstance(enc, np.ndarray):
        return enc.copy()
    return enc


def _contains_obj_marker(enc: Any) -> bool:
    if isinstance(enc, dict):
        if "$obj" in enc:
            return True
        return any(_contains_obj_marker(v) for v in enc.values())
    if isinstance(enc, (list, tuple, set)):
        return any(_contains_obj_marker(v) for v in enc)
    return False


def _set_attr(obj: Any, key: str, value: Any) -> None:
    try:
        current = getattr(obj, key, _FAIL)
        if current is not _FAIL and type(current) is type(value) and current == value:
            return  # unchanged (also keeps frozen config objects happy)
    except Exception:
        pass
    try:
        setattr(obj, key, value)
    except AttributeError:
        object.__setattr__(obj, key, value)


def _capture_component(obj: Any) -> Dict[str, Any]:
    """Capture the plain mutable attributes of one scheduler/policy."""
    getstate = getattr(obj, "__repro_getstate__", None)
    if callable(getstate):
        return {"$hook": copy.deepcopy(getstate())}
    out: Dict[str, Any] = {}
    for key, value in vars(obj).items():
        if key == "simulation":
            continue  # framework back-ref, re-wired by the factory
        enc = _encode_value(value)
        if enc is not _FAIL:
            out[key] = enc
    return out


def _apply_component(obj: Any, captured: Dict[str, Any], ctx: _RestoreContext) -> None:
    if "$hook" in captured:
        setstate = getattr(obj, "__repro_setstate__", None)
        if not callable(setstate):
            raise StateError(
                f"{type(obj).__name__} captured via __repro_getstate__ but "
                f"has no __repro_setstate__"
            )
        setstate(copy.deepcopy(captured["$hook"]))
        return
    for key, enc in captured.items():
        if isinstance(enc, dict) and "$obj" in enc:
            target = getattr(obj, key, None)
            if target is None:
                continue
            desc = enc["$obj"]
            if type(target).__qualname__ != desc["class"]:
                raise StateError(
                    f"{type(obj).__name__}.{key}: checkpoint holds a "
                    f"{desc['class']}, factory built a {type(target).__qualname__}"
                )
            for k, v in desc["attrs"].items():
                _set_attr(target, k, _decode_value(v, ctx))
        elif _contains_obj_marker(enc):
            # $obj nested inside a container: leave the factory-built
            # value alone rather than restore it half-way.
            continue
        else:
            _set_attr(obj, key, _decode_value(enc, ctx))


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
_JOB_MUTABLE = (
    "nodes", "work_seconds", "walltime_request", "start_time", "end_time",
    "assigned_frequency", "energy_joules", "kill_reason", "power_estimate",
)


def _capture_job(job: Job) -> Dict[str, Any]:
    entry = {
        "job_id": job.job_id,
        "submit_time": job.submit_time,
        "user": job.user,
        "app_name": job.app_name,
        "tag": job.tag,
        "memory_gb_per_node": job.memory_gb_per_node,
        "priority": job.priority,
        "queue": job.queue,
        "profile": [(p.fraction, p.sensitivity, p.intensity, p.kind)
                    for p in job.profile],
        "moldable": [(c.nodes, c.work_seconds) for c in job.moldable],
        "state": job.state.value,
        "assigned_nodes": list(job.assigned_nodes),
    }
    for key in _JOB_MUTABLE:
        entry[key] = getattr(job, key)
    return entry


def _apply_job(job: Job, entry: Dict[str, Any]) -> Job:
    for key in _JOB_MUTABLE:
        setattr(job, key, entry[key])
    job.state = JobState(entry["state"])
    job.assigned_nodes = list(entry["assigned_nodes"])
    return job


def _rebuild_job(entry: Dict[str, Any]) -> Job:
    """Reconstruct a job absent from the factory build (e.g. created
    mid-run by a requeue policy)."""
    job = Job(
        job_id=entry["job_id"],
        nodes=int(entry["nodes"]),
        work_seconds=entry["work_seconds"],
        walltime_request=entry["walltime_request"],
        submit_time=entry["submit_time"],
        user=entry["user"],
        profile=PhaseProfile([Phase(*p) for p in entry["profile"]]),
        app_name=entry["app_name"],
        tag=entry["tag"],
        memory_gb_per_node=entry["memory_gb_per_node"],
        priority=entry["priority"],
        queue=entry["queue"],
        moldable=tuple(MoldableConfig(int(n), w) for n, w in entry["moldable"]),
    )
    return _apply_job(job, entry)


# ----------------------------------------------------------------------
# Snapshot
# ----------------------------------------------------------------------
def snapshot(sim_obj, extra_roots: Dict[str, Any] = None) -> SimState:
    """Capture the full live state of *sim_obj* as plain data.

    Raises :class:`StateError` if the heap holds an event the capture
    layer cannot describe (see :mod:`repro.state.events`).
    """
    engine = sim_obj.sim
    roots = simulation_roots(sim_obj, extra_roots)
    by_id = _roots_by_id(roots)

    events = [describe_event(ev, by_id) for ev in engine.iter_live_events()]

    nodes = sim_obj.machine.nodes
    node_state = {
        "state": [n.state.value for n in nodes],
        "frequency": np.array([n.frequency for n in nodes]),
        "power_cap": np.array([
            np.inf if n.power_cap is None else n.power_cap for n in nodes
        ]),
        "variability": np.array([n.variability for n in nodes]),
        "last_state_change": np.array([n.last_state_change for n in nodes]),
        "idle_since": np.array([
            np.nan if n.idle_since is None else n.idle_since for n in nodes
        ]),
        "running_job": [n.running_job for n in nodes],
    }

    executions = [
        {
            "job_id": e.job.job_id,
            "node_ids": [n.node_id for n in e.nodes],
            "work_done": e.work_done,
            "speed": e.speed,
            "power_watts": e.power_watts,
            "last_update": e.last_update,
            "cap_violated": e.cap_violated,
            "placement_penalty": e.placement_penalty,
        }
        for e in sim_obj._executions.values()
    ]

    mirror = sim_obj.power_vector
    if mirror is not None:
        power = {
            "backend": "vector",
            "watts": mirror._watts.copy(),
            "total": mirror._total,
            "dirty": sorted(int(r) for r in mirror._dirty),
            "all_dirty": mirror._all_dirty,
            "utilization": mirror.utilization.copy(),
            "sensitivity": mirror.sensitivity.copy(),
        }
    else:
        power = {
            "backend": "scalar",
            "node_watts": {int(k): float(v)
                           for k, v in sim_obj._node_watts.items()},
            "total": sim_obj._power_total,
            "dirty": sorted(int(n) for n in sim_obj._power_dirty),
            "all_dirty": sim_obj._power_all_dirty,
        }

    meter = sim_obj.meter
    trace = sim_obj.trace
    data = {
        "config": _config_signature(sim_obj),
        "engine": {
            "now": engine.now,
            "seq": engine._seq,
            "events_fired": engine.events_fired,
            "events": events,
        },
        "rng": {
            name: copy.deepcopy(gen.bit_generator.state)
            for name, gen in sim_obj.rng._streams.items()
        },
        "nodes": node_state,
        "jobs": [_capture_job(j) for j in sim_obj.jobs],
        # v4: dict with the live-row count so restore can verify the
        # rebuilt JobTable mirrors the queue exactly.
        "queue": {
            "jobs": list(sim_obj.queue._jobs.keys()),
            "table_live": sim_obj.queue._table.live_count,
        },
        "executions": executions,
        "counters": {
            "started": sim_obj._started_count,
            "terminal": sim_obj._terminal_count,
            "pass_pending": sim_obj._pass_pending,
            "prepared": sim_obj._prepared,
            "boots_initiated": sim_obj.rm.boots_initiated,
            "shutdowns_initiated": sim_obj.rm.shutdowns_initiated,
        },
        "power": power,
        "meter": {
            "times": np.array(meter._times, dtype=float),
            "watts": np.array(meter._watts, dtype=float),
            "energy": meter.energy_joules,
        },
        "trace": {
            "enabled": trace.enabled,
            "max_records": trace.max_records,
            "emitted": trace.total_emitted,
            "records": [
                (r.time, r.category, dict(r.data)) for r in trace.records()
            ],
        },
        "scheduler": {
            "class": type(sim_obj.scheduler).__qualname__,
            "attrs": _capture_component(sim_obj.scheduler),
        },
        "policies": [
            {"class": type(p).__qualname__, "attrs": _capture_component(p)}
            for p in sim_obj.policies
        ],
        # v5: attached auxiliary components (telemetry samplers etc.)
        # round-trip like policies; their keys/classes sit in the
        # config digest so restore factories must rebuild them.
        "components": {
            key: {"class": type(obj).__qualname__,
                  "attrs": _capture_component(obj)}
            for key, obj in getattr(sim_obj, "components", {}).items()
        },
    }
    return SimState(schema=STATE_SCHEMA_VERSION, repro_version=__version__, data=data)


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
def restore(state: SimState, factory: Callable[[], Any],
            extra_roots_factory: Callable[[Any], Dict[str, Any]] = None):
    """Rebuild a live simulation from *state*.

    Parameters
    ----------
    state:
        A snapshot produced by :func:`snapshot` (possibly round-tripped
        through :mod:`repro.state.serialize`).
    factory:
        Zero-argument callable returning a fresh, structurally
        identical :class:`ClusterSimulation` (or an object with a
        ``.simulation`` attribute holding one, matching the analysis
        executor's builders).
    extra_roots_factory:
        Optional callable mapping the fresh simulation to the same
        ``extra_roots`` dict that was passed to :func:`snapshot`.

    Returns the restored simulation, ready to continue with
    :meth:`run` (or :func:`repro.state.run_checkpointed`).
    """
    if state.schema != STATE_SCHEMA_VERSION:
        raise StateError(
            f"snapshot schema {state.schema} not supported "
            f"(this build uses {STATE_SCHEMA_VERSION})"
        )
    built = factory()
    sim_obj = getattr(built, "simulation", built)
    data = state.data

    fresh_sig = _config_signature(sim_obj)
    if fresh_sig["digest"] != data["config"]["digest"]:
        raise StateError(
            "factory built a simulation with a different configuration than "
            f"the checkpoint: {fresh_sig['summary']} != {data['config']['summary']}"
        )

    engine = sim_obj.sim
    # Wipe everything the factory scheduled (submits, periodic chains,
    # meter start): the captured heap replaces it wholesale.
    engine.clear_events()
    eng = data["engine"]
    engine.restore_clock(eng["now"], eng["seq"], eng["events_fired"])

    # --- rng streams -------------------------------------------------
    for name, bg_state in data["rng"].items():
        sim_obj.rng.stream(name).bit_generator.state = copy.deepcopy(bg_state)

    # --- jobs --------------------------------------------------------
    fresh_by_id = {j.job_id: j for j in sim_obj.jobs}
    captured_ids = {entry["job_id"] for entry in data["jobs"]}
    extra = [jid for jid in fresh_by_id if jid not in captured_ids]
    if extra:
        raise StateError(
            f"factory workload has jobs absent from the checkpoint: {extra[:5]}"
        )
    jobs: List[Job] = []
    for entry in data["jobs"]:
        job = fresh_by_id.get(entry["job_id"])
        if job is not None:
            _apply_job(job, entry)
        else:
            job = _rebuild_job(entry)
        jobs.append(job)
    sim_obj.jobs = jobs
    job_by_id = {j.job_id: j for j in jobs}

    # --- nodes -------------------------------------------------------
    nodes = sim_obj.machine.nodes
    ns = data["nodes"]
    for row, node in enumerate(nodes):
        node.state = NodeState(ns["state"][row])
        node.frequency = float(ns["frequency"][row])
        cap = float(ns["power_cap"][row])
        node.power_cap = None if np.isinf(cap) else cap
        node.variability = float(ns["variability"][row])
        node.last_state_change = float(ns["last_state_change"][row])
        idle = float(ns["idle_since"][row])
        node.idle_since = None if np.isnan(idle) else idle
        node.running_job = ns["running_job"][row]

    # --- scheduling-context masks (derived from node state) ----------
    sim_obj._avail_mask = np.fromiter(
        (n.is_available for n in nodes), dtype=bool, count=len(nodes)
    )
    sim_obj._down_mask = np.fromiter(
        (n.state is NodeState.DOWN for n in nodes), dtype=bool, count=len(nodes)
    )
    sim_obj._usable_count = len(nodes) - int(sim_obj._down_mask.sum())
    sim_obj._avail_count = int(sim_obj._avail_mask.sum())

    # --- queue -------------------------------------------------------
    # Rebuild through the queue's wholesale-restore hook so the SoA
    # JobTable mirror is regrown row for row (schema v4 contract);
    # grafting ``_jobs`` directly would leave the mirror empty.
    queue_data = data["queue"]
    sim_obj.queue.restore_jobs(
        {jid: job_by_id[jid] for jid in queue_data["jobs"]}
    )
    if sim_obj.queue._table.live_count != queue_data["table_live"]:
        raise StateError(
            "queue restore: JobTable rebuilt with "
            f"{sim_obj.queue._table.live_count} live rows, snapshot "
            f"recorded {queue_data['table_live']}"
        )

    # --- counters ----------------------------------------------------
    counters = data["counters"]
    sim_obj._started_count = counters["started"]
    sim_obj._terminal_count = counters["terminal"]
    sim_obj._pass_pending = counters["pass_pending"]
    sim_obj._prepared = counters["prepared"]
    sim_obj.rm.boots_initiated = counters["boots_initiated"]
    sim_obj.rm.shutdowns_initiated = counters["shutdowns_initiated"]

    # --- power accounting (bit-exact: no re-sum) ---------------------
    power = data["power"]
    backend = "vector" if sim_obj.power_vector is not None else "scalar"
    if power["backend"] != backend:
        raise StateError(
            f"checkpoint power backend {power['backend']!r} != factory "
            f"backend {backend!r}"
        )
    if backend == "vector":
        mirror = sim_obj.power_vector
        mirror.refresh_all()  # re-read restored node fields into the SoA
        mirror.utilization[:] = power["utilization"]
        mirror.sensitivity[:] = power["sensitivity"]
        mirror._watts[:] = power["watts"]
        mirror._total = power["total"]
        mirror._dirty = set(int(r) for r in power["dirty"])
        mirror._all_dirty = power["all_dirty"]
    else:
        sim_obj._node_watts = {int(k): float(v)
                               for k, v in power["node_watts"].items()}
        sim_obj._power_total = power["total"]
        sim_obj._power_dirty = set(int(n) for n in power["dirty"])
        sim_obj._power_all_dirty = power["all_dirty"]

    # --- executions --------------------------------------------------
    from ..core.simulation import JobExecution  # local: avoid cycle at import

    sim_obj._executions = {}
    sim_obj._node_exec = {}
    sim_obj._exec_slots = []
    sim_obj._free_slots = []
    mirror = sim_obj.power_vector
    if mirror is not None:
        # SoA membership is rebuilt from the executions, not captured:
        # slot numbers are pure identities (nothing orders on them), so
        # renumbering on restore cannot perturb replay.  Direct array
        # scatter — not bind_execution — keeps the bit-exact dirty set
        # restored above untouched.
        mirror.exec_slot.fill(-1)
        mirror.bound_jobs.fill(0)
    for entry in data["executions"]:
        job = job_by_id[entry["job_id"]]
        exec_nodes = [sim_obj.machine.node(nid) for nid in entry["node_ids"]]
        execution = JobExecution(job, exec_nodes)
        execution.work_done = entry["work_done"]
        execution.speed = entry["speed"]
        execution.power_watts = entry["power_watts"]
        execution.last_update = entry["last_update"]
        execution.cap_violated = entry["cap_violated"]
        execution.placement_penalty = entry["placement_penalty"]
        sim_obj._executions[job.job_id] = execution
        if mirror is not None:
            execution.rows = mirror.rows_for(entry["node_ids"])
            slot = sim_obj._alloc_slot(execution)
            mirror.exec_slot[execution.rows] = slot
            mirror.bound_jobs[execution.rows] = 1
        else:
            for node in exec_nodes:
                sim_obj._node_exec[node.node_id] = execution

    # --- meter -------------------------------------------------------
    meter = sim_obj.meter
    meter._times = sample_buffer()
    meter._watts = sample_buffer()
    meter._energy_joules = 0.0
    meter.record_batch(data["meter"]["times"], data["meter"]["watts"])
    # The bulk-vectorized trapezoid may differ from the incremental
    # accumulator in the last ulp; the checkpoint's exact value wins.
    meter._energy_joules = data["meter"]["energy"]
    meter._handle = None

    # --- trace -------------------------------------------------------
    trace = sim_obj.trace
    tr = data["trace"]
    trace.enabled = tr["enabled"]
    trace.max_records = tr["max_records"]
    trace._records = [
        TraceRecord(t, category, dict(payload))
        for t, category, payload in tr["records"]
    ]
    trace._dead = 0
    trace._emitted = tr["emitted"]
    trace._pending = []
    trace._buckets = {}
    first = tr["emitted"] - len(trace._records)
    for i, record in enumerate(trace._records):
        trace._buckets.setdefault(record.category, []).append(first + i)

    # --- scheduler / policies ---------------------------------------
    ctx = _RestoreContext(job_by_id, sim_obj.machine)
    sched = data["scheduler"]
    if type(sim_obj.scheduler).__qualname__ != sched["class"]:
        raise StateError(
            f"factory scheduler {type(sim_obj.scheduler).__qualname__} != "
            f"checkpoint scheduler {sched['class']}"
        )
    _apply_component(sim_obj.scheduler, sched["attrs"], ctx)
    if len(sim_obj.policies) != len(data["policies"]):
        raise StateError(
            f"factory has {len(sim_obj.policies)} policies, checkpoint has "
            f"{len(data['policies'])}"
        )
    for policy, captured in zip(sim_obj.policies, data["policies"]):
        if type(policy).__qualname__ != captured["class"]:
            raise StateError(
                f"policy mismatch: factory {type(policy).__qualname__} != "
                f"checkpoint {captured['class']}"
            )
        _apply_component(policy, captured["attrs"], ctx)

    # --- attached components (config digest guarantees key/class match)
    components = getattr(sim_obj, "components", {})
    for key, captured in data.get("components", {}).items():
        target = components.get(key)
        if target is None:
            raise StateError(
                f"checkpoint has component {key!r} the factory did not attach"
            )
        _apply_component(target, captured["attrs"], ctx)

    # --- events (last: handles wire into restored executions/meter) --
    roots = simulation_roots(
        sim_obj,
        extra_roots_factory(sim_obj) if extra_roots_factory else None,
    )
    handles = {}
    for desc in eng["events"]:
        name, handle = build_event(desc, engine, roots, job_by_id, sim_obj.machine)
        handles[name] = handle
    for execution in sim_obj._executions.values():
        execution.end_handle = handles.get(f"end:{execution.job.job_id}")
        execution.timeout_handle = handles.get(f"timeout:{execution.job.job_id}")
    meter._handle = handles.get(f"meter:{meter.name}")

    return sim_obj
