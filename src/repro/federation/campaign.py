"""Campaign driver: nine centers in lockstep under the broker.

The campaign advances every site one coordination epoch at a time on a
:class:`~repro.analysis.executor.FanoutPool` — sites run concurrently
within an epoch, and the epoch boundary is the barrier where telemetry
flows up to the :class:`~repro.federation.broker.GlobalBroker` and
budget directives flow back down.  Site state travels inside the epoch
tasks as ``RPST`` snapshot bytes, so the pool is free to land a site
on a different worker every epoch (checkpoint/migrate is the normal
path) and a retained snapshot can be forked for what-if scoring
without touching the primary run.

Determinism contract: with fixed site configs, markets and broker
parameters, the per-site state fingerprints after every epoch — and
hence the campaign fingerprint — are identical across runs and across
worker counts.  DESIGN.md §13 spells out why.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.executor import FanoutPool
from ..centers import CENTER_MARKETS, center_slugs
from ..errors import ConfigurationError
from ..grid.market import RegionMarket
from ..units import DAY, HOUR
from .broker import GlobalBroker
from .protocol import EpochTask, SiteConfig, SiteDirective, SiteReport
from .site import advance_site

__all__ = [
    "FederationCampaign",
    "FederationResult",
    "SiteResult",
    "federation_fingerprint",
    "pareto_front",
]


def federation_fingerprint(reports: Mapping[str, Sequence[SiteReport]]) -> str:
    """One digest pinning every site's state after every epoch."""
    digest = hashlib.sha256()
    for slug in sorted(reports):
        for report in reports[slug]:
            digest.update(
                f"{slug}:{report.epoch}:{report.fingerprint}\n".encode()
            )
    return digest.hexdigest()


def pareto_front(rows: Sequence[Mapping[str, float]],
                 objectives: Sequence[str]) -> List[int]:
    """Indices of *rows* not dominated on the (minimized) objectives."""
    front: List[int] = []
    for i, row in enumerate(rows):
        dominated = False
        for j, other in enumerate(rows):
            if j == i:
                continue
            no_worse = all(other[k] <= row[k] for k in objectives)
            better = any(other[k] < row[k] for k in objectives)
            if no_worse and better:
                dominated = True
                break
        if not dominated:
            front.append(i)
    return front


@dataclass(frozen=True)
class SiteResult:
    """Aggregates for one site over the whole campaign."""

    slug: str
    cost: float
    carbon_kg: float
    energy_joules: float
    completed_jobs: int
    vetoes: int
    metrics: Dict[str, float]
    fingerprints: Tuple[str, ...]


@dataclass(frozen=True)
class FederationResult:
    """Everything one campaign run produced."""

    sites: Dict[str, SiteResult]
    reports: Dict[str, Tuple[SiteReport, ...]]
    directives: Dict[str, Tuple[SiteDirective, ...]]
    fingerprint: str
    epochs: int
    epoch_seconds: float
    horizon: float

    def total_cost(self) -> float:
        return sum(s.cost for s in self.sites.values())

    def total_carbon_kg(self) -> float:
        return sum(s.carbon_kg for s in self.sites.values())

    def total_energy_joules(self) -> float:
        return sum(s.energy_joules for s in self.sites.values())

    def mean_bounded_slowdown(self) -> float:
        values = [
            s.metrics.get("mean_bounded_slowdown", 0.0)
            for s in self.sites.values()
        ]
        return sum(values) / len(values) if values else 0.0

    def summary(self) -> Dict[str, float]:
        """The Pareto coordinates of this run (all minimized)."""
        return {
            "cost": self.total_cost(),
            "carbon_kg": self.total_carbon_kg(),
            "energy_joules": self.total_energy_joules(),
            "mean_bounded_slowdown": self.mean_bounded_slowdown(),
            "completed_jobs": float(
                sum(s.completed_jobs for s in self.sites.values())
            ),
            "vetoes": float(sum(s.vetoes for s in self.sites.values())),
        }


class FederationCampaign:
    """Run a fleet of center simulations in lockstep epochs.

    Parameters
    ----------
    sites:
        Site configs; defaults to all nine surveyed centers.
    markets:
        slug -> :class:`RegionMarket`; defaults to the registry's
        stylized regional markets.  Used for billing even with the
        broker off, so cost deltas are like-for-like.
    broker:
        The coordination layer; ``None`` runs the broker-off baseline
        (every directive infinite — the budget policy stays inert).
    horizon / epoch_seconds:
        Campaign span and coordination period.  The last epoch is
        truncated if the horizon is not a multiple.
    workers:
        Process fan-out for the per-epoch site advance.
    retain_snapshots:
        Keep each site's end-of-epoch snapshot bytes on the campaign
        (enables :meth:`fork_site` what-ifs; costs memory).
    """

    def __init__(
        self,
        sites: Optional[Sequence[SiteConfig]] = None,
        markets: Optional[Mapping[str, RegionMarket]] = None,
        broker: Optional[GlobalBroker] = None,
        horizon: float = 2.0 * DAY,
        epoch_seconds: float = 6.0 * HOUR,
        workers: int = 1,
        retain_snapshots: bool = False,
    ) -> None:
        if horizon <= 0 or epoch_seconds <= 0:
            raise ConfigurationError("horizon and epoch must be positive")
        if sites is None:
            sites = tuple(
                SiteConfig(slug=slug, horizon=horizon)
                for slug in center_slugs()
            )
        if not sites:
            raise ConfigurationError("campaign needs at least one site")
        slugs = [cfg.slug for cfg in sites]
        if len(set(slugs)) != len(slugs):
            raise ConfigurationError(f"duplicate site slugs: {slugs}")
        self.sites: Tuple[SiteConfig, ...] = tuple(sites)
        self.markets: Dict[str, RegionMarket] = dict(
            markets if markets is not None else CENTER_MARKETS
        )
        missing = [s for s in slugs if s not in self.markets]
        if missing:
            raise ConfigurationError(f"no market for sites: {missing}")
        self.broker = broker
        self.horizon = horizon
        self.epoch_seconds = epoch_seconds
        self.workers = workers
        self.retain_snapshots = retain_snapshots
        self.epochs = int(math.ceil(horizon / epoch_seconds))
        #: slug -> epoch -> snapshot bytes (when retained).
        self.snapshots: Dict[str, Dict[int, bytes]] = {}

    # ------------------------------------------------------------------
    def _epoch_bounds(self, epoch: int) -> Tuple[float, float]:
        start = epoch * self.epoch_seconds
        end = min((epoch + 1) * self.epoch_seconds, self.horizon)
        return start, end

    def run(self) -> FederationResult:
        """Execute the campaign; returns the aggregated result."""
        slugs = [cfg.slug for cfg in self.sites]
        blobs: Dict[str, Optional[bytes]] = {s: None for s in slugs}
        directives: Dict[str, SiteDirective] = {
            s: SiteDirective(epoch=0) for s in slugs
        }
        reports: Dict[str, List[SiteReport]] = {s: [] for s in slugs}
        issued: Dict[str, List[SiteDirective]] = {s: [] for s in slugs}
        self.snapshots = {s: {} for s in slugs}

        with FanoutPool(workers=self.workers) as pool:
            for epoch in range(self.epochs):
                start, end = self._epoch_bounds(epoch)
                final = epoch == self.epochs - 1
                tasks = [
                    EpochTask(
                        config=cfg,
                        directive=directives[cfg.slug],
                        epoch=epoch,
                        epoch_start=start,
                        epoch_end=end,
                        snapshot_blob=blobs[cfg.slug],
                        final=final,
                    )
                    for cfg in self.sites
                ]
                outcomes = pool.map(advance_site, tasks)
                for cfg, outcome in zip(self.sites, outcomes):
                    slug = cfg.slug
                    reports[slug].append(outcome.report)
                    issued[slug].append(directives[slug])
                    blobs[slug] = outcome.snapshot_blob
                    if self.retain_snapshots and outcome.snapshot_blob:
                        self.snapshots[slug][epoch] = outcome.snapshot_blob
                if not final:
                    directives = self._next_directives(
                        epoch, {s: reports[s][-1] for s in slugs}
                    )

        sites = {
            slug: self._site_result(slug, reports[slug]) for slug in slugs
        }
        return FederationResult(
            sites=sites,
            reports={s: tuple(r) for s, r in reports.items()},
            directives={s: tuple(d) for s, d in issued.items()},
            fingerprint=federation_fingerprint(reports),
            epochs=self.epochs,
            epoch_seconds=self.epoch_seconds,
            horizon=self.horizon,
        )

    def _next_directives(
        self, epoch: int, latest: Mapping[str, SiteReport]
    ) -> Dict[str, SiteDirective]:
        """Broker pass for the next epoch (or inert inf directives)."""
        if self.broker is None:
            return {
                slug: SiteDirective(epoch=epoch + 1) for slug in latest
            }
        start, end = self._epoch_bounds(epoch + 1)
        grants = self.broker.allocate(latest, start, end)
        return {
            slug: SiteDirective(epoch=epoch + 1, budget_watts=watts)
            for slug, watts in grants.items()
        }

    def _site_result(
        self, slug: str, site_reports: Sequence[SiteReport]
    ) -> SiteResult:
        market = self.markets[slug]
        cost = 0.0
        carbon = 0.0
        for report in site_reports:
            if len(report.power_times) >= 2:
                cost += market.cost_of(report.power_times, report.power_watts)
                carbon += market.carbon_of(
                    report.power_times, report.power_watts
                )
        last = site_reports[-1]
        return SiteResult(
            slug=slug,
            cost=cost,
            carbon_kg=carbon,
            energy_joules=last.energy_joules,
            completed_jobs=last.completed_jobs,
            vetoes=last.vetoes,
            metrics=dict(last.metrics or {}),
            fingerprints=tuple(r.fingerprint for r in site_reports),
        )

    # ------------------------------------------------------------------
    def fork_site(
        self,
        slug: str,
        epoch: int,
        budget_watts: float = math.inf,
        until: Optional[float] = None,
    ) -> SiteReport:
        """What-if: fork one site from a retained snapshot and score it.

        Advances a *copy* of the site from its end-of-*epoch* state
        under a hypothetical budget, without perturbing the primary
        campaign state (the snapshot bytes are immutable; the fork
        builds its own simulation).  Requires ``retain_snapshots``.
        """
        blob = self.snapshots.get(slug, {}).get(epoch)
        if blob is None:
            raise ConfigurationError(
                f"no retained snapshot for site {slug!r} epoch {epoch} "
                "(construct the campaign with retain_snapshots=True)"
            )
        config = next(cfg for cfg in self.sites if cfg.slug == slug)
        start = (epoch + 1) * self.epoch_seconds
        end = until if until is not None else min(
            start + self.epoch_seconds, self.horizon
        )
        task = EpochTask(
            config=config,
            directive=SiteDirective(epoch=epoch + 1, budget_watts=budget_watts),
            epoch=epoch + 1,
            epoch_start=start,
            epoch_end=end,
            snapshot_blob=blob,
            final=False,
            keep_snapshot=False,
        )
        return advance_site(task).report

    def score_budgets(
        self,
        slug: str,
        epoch: int,
        candidates: Sequence[float],
    ) -> List[Tuple[float, float, float]]:
        """Score candidate budgets for one site's next epoch.

        Returns ``(budget, cost, backlog_jobs)`` per candidate — the
        what-if curve a planner would hand the broker.  Each fork is
        independent; the primary run's state is untouched.
        """
        market = self.markets[slug]
        rows: List[Tuple[float, float, float]] = []
        for budget in candidates:
            report = self.fork_site(slug, epoch, budget_watts=budget)
            cost = (
                market.cost_of(report.power_times, report.power_watts)
                if len(report.power_times) >= 2
                else 0.0
            )
            rows.append((budget, cost, float(report.backlog_jobs)))
        return rows
