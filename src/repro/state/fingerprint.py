"""State fingerprints: cheap per-event probes and exact digests.

Two tiers:

* :func:`light_fingerprint` — a cheap digest of the counters and
  per-execution progress that change on (almost) every event.  Safe to
  call from an engine observer: it reads only existing fields and never
  flushes the power caches (flushing would change *when* the half-dirty
  re-sum path triggers and hence the last-ulp float results of the run
  under observation).
* :func:`state_fingerprint` / :func:`sim_fingerprint` — the sha256 of
  the canonical serialized snapshot: exact, order-sensitive, used by
  the round-trip fixed-point tests and divergence reports.

:func:`result_fingerprint` digests a finished
:class:`~repro.core.simulation.SimulationResult` (job outcomes, meter
series, final time) — what "identical results" means in the resume
acceptance tests and the CI replay-determinism job.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Tuple

import numpy as np

from .capture import snapshot
from .serialize import SimState, state_digest


def light_fingerprint(sim_obj) -> str:
    """Cheap, non-perturbing digest of the fast-changing state."""
    engine = sim_obj.sim
    mirror = sim_obj.power_vector
    power_total = mirror._total if mirror is not None else sim_obj._power_total
    parts = [
        repr(engine.now), str(engine._seq), str(engine.events_fired),
        str(engine.pending), str(sim_obj._started_count),
        str(sim_obj._terminal_count), str(len(sim_obj.queue._jobs)),
        repr(power_total), str(sim_obj.trace.total_emitted),
        str(sim_obj.meter.num_samples), repr(sim_obj.meter.energy_joules),
    ]
    for job_id, e in sim_obj._executions.items():
        parts.append(
            f"{job_id}:{e.work_done!r}:{e.speed!r}:{e.power_watts!r}:"
            f"{e.last_update!r}"
        )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


def state_fingerprint(state: SimState) -> str:
    """Exact canonical digest of a snapshot."""
    return state_digest(state)


def sim_fingerprint(sim_obj) -> str:
    """Exact digest of the live simulation (snapshots it first)."""
    return state_digest(snapshot(sim_obj))


def component_digests(state: SimState) -> Dict[str, str]:
    """Per-section digests of a snapshot — names the diverging
    subsystem in a divergence report."""
    out = {}
    for key, value in state.data.items():
        section = SimState(state.schema, state.repro_version, {key: value})
        out[key] = state_digest(section)
    return out


def result_fingerprint(result) -> str:
    """Digest of a :class:`SimulationResult`: per-job outcomes and
    energy, the meter series, and the final clock."""
    h = hashlib.sha256()
    h.update(repr(result.final_time).encode())
    for job in sorted(result.jobs, key=lambda j: j.job_id):
        h.update(
            f"{job.job_id}|{job.state.value}|{job.start_time!r}|"
            f"{job.end_time!r}|{job.energy_joules!r}|"
            f"{sorted(job.assigned_nodes)!r}\n".encode()
        )
    times, watts = result.meter.series()
    h.update(np.ascontiguousarray(times, dtype=float).tobytes())
    h.update(np.ascontiguousarray(watts, dtype=float).tobytes())
    h.update(repr(result.meter.energy_joules).encode())
    return h.hexdigest()


def diff_states(a: SimState, b: SimState, limit: int = 32) -> List[Tuple[str, Any, Any]]:
    """Leaf-level differences between two snapshots as
    ``(path, a_value, b_value)`` triples (up to *limit*)."""
    out: List[Tuple[str, Any, Any]] = []

    def walk(x: Any, y: Any, path: str) -> None:
        if len(out) >= limit:
            return
        if type(x) is not type(y):
            out.append((path, x, y))
            return
        if isinstance(x, dict):
            for k in x.keys() | y.keys():
                if k not in x or k not in y:
                    out.append((f"{path}.{k}", x.get(k, "<absent>"),
                                y.get(k, "<absent>")))
                else:
                    walk(x[k], y[k], f"{path}.{k}")
            return
        if isinstance(x, (list, tuple)):
            if len(x) != len(y):
                out.append((f"{path}#len", len(x), len(y)))
                return
            for i, (xv, yv) in enumerate(zip(x, y)):
                walk(xv, yv, f"{path}[{i}]")
            return
        if isinstance(x, np.ndarray):
            if x.shape != y.shape or x.dtype != y.dtype or not np.array_equal(
                x, y, equal_nan=True
            ):
                out.append((path, x, y))
            return
        if isinstance(x, float):
            equal = (x == y) or (np.isnan(x) and np.isnan(y))
        else:
            equal = x == y
        if not equal:
            out.append((path, x, y))

    walk(a.data, b.data, "")
    return out
