"""Snapshot/restore round trips of live simulations (repro.state).

The central invariant: restoring a mid-run snapshot yields a
simulation whose remaining run is bit-identical to the original —
same events, same floats, same final :class:`SimulationResult`.
"""

from __future__ import annotations

import functools

import pytest

from repro.cluster import NodeState
from repro.errors import StateError
from repro.state import (
    diff_states,
    light_fingerprint,
    load_state,
    resume_run,
    result_fingerprint,
    run_checkpointed,
    restore,
    sim_fingerprint,
    snapshot,
    state_fingerprint,
)

from .state_scenarios import build_rich, build_small, step_until

BACKENDS = ("vector", "scalar")


@pytest.mark.parametrize("backend", BACKENDS)
class TestSmallRoundTrip:
    def test_snapshot_restore_fixed_point(self, backend):
        sim = step_until(build_small(backend=backend), 700.0)
        st = snapshot(sim)
        restored = restore(st, functools.partial(build_small, backend=backend))
        assert state_fingerprint(snapshot(restored)) == state_fingerprint(st)
        assert light_fingerprint(restored) == light_fingerprint(sim)

    def test_resumed_run_is_identical(self, backend):
        ref = result_fingerprint(build_small(backend=backend).run())
        sim = step_until(build_small(backend=backend), 700.0)
        st = snapshot(sim)
        restored = restore(st, functools.partial(build_small, backend=backend))
        assert result_fingerprint(run_checkpointed(restored)) == ref
        # The donor simulation is untouched by snapshot: it finishes
        # identically too.
        assert result_fingerprint(run_checkpointed(sim)) == ref

    def test_snapshot_does_not_perturb(self, backend):
        ref = result_fingerprint(build_small(backend=backend).run())
        sim = build_small(backend=backend)
        sim.prepare()
        while sim.sim.step():
            snapshot(sim)
            if sim.all_jobs_terminal:
                break
        assert result_fingerprint(sim.finalize()) == ref

    def test_until_horizon_resume(self, backend):
        ref = result_fingerprint(build_small(backend=backend).run(until=1500.0))
        sim = step_until(build_small(backend=backend), 600.0)
        st = snapshot(sim)
        result = resume_run(
            st, functools.partial(build_small, backend=backend), until=1500.0
        )
        assert result_fingerprint(result) == ref


@pytest.mark.parametrize("backend", BACKENDS)
class TestRichRoundTrip:
    """All six node states, power caps, pending boot event, backfill."""

    def cut_sim(self, backend):
        sim = step_until(build_rich(backend=backend), 900.0)
        # Manufacture the remaining states deterministically: one DOWN
        # node and one BOOTING node with its boot event in flight.
        idle = [n for n in sim.machine.nodes if n.state is NodeState.IDLE]
        off = [n for n in sim.machine.nodes if n.state is NodeState.OFF]
        assert idle and off, "scenario must leave idle and off nodes at the cut"
        sim.rm.drain_node(idle[0])
        sim.rm.boot_node(off[0])
        return sim

    def test_all_six_states_present(self, backend):
        sim = self.cut_sim(backend)
        states = {n.state for n in sim.machine.nodes}
        assert states == {
            NodeState.OFF, NodeState.BOOTING, NodeState.IDLE,
            NodeState.BUSY, NodeState.SHUTTING_DOWN, NodeState.DOWN,
        }
        assert any(n.power_cap is not None for n in sim.machine.nodes)

    def test_fixed_point_and_identical_finish(self, backend):
        sim = self.cut_sim(backend)
        st = snapshot(sim)
        restored = restore(st, functools.partial(build_rich, backend=backend))
        st2 = snapshot(restored)
        assert diff_states(st, st2) == []
        assert state_fingerprint(st2) == state_fingerprint(st)
        fp_restored = result_fingerprint(run_checkpointed(restored))
        fp_original = result_fingerprint(run_checkpointed(sim))
        assert fp_restored == fp_original

    def test_node_fields_survive(self, backend):
        sim = self.cut_sim(backend)
        restored = restore(
            snapshot(sim), functools.partial(build_rich, backend=backend)
        )
        for a, b in zip(sim.machine.nodes, restored.machine.nodes):
            assert a.state is b.state
            assert a.power_cap == b.power_cap
            assert a.frequency == b.frequency
            assert a.idle_since == b.idle_since or (
                a.idle_since is None and b.idle_since is None
            )


class TestCheckpointedRun:
    def test_checkpointed_run_identical_to_plain(self, tmp_path):
        ref = result_fingerprint(build_small().run())
        sim = build_small()
        saves = []
        result = run_checkpointed(
            sim, interval=300.0,
            sink=lambda s: saves.append(sim_fingerprint(s)),
        )
        assert result_fingerprint(result) == ref
        assert len(saves) >= 2

    def test_kill_and_resume_from_file(self, tmp_path):
        ref = result_fingerprint(build_rich().run())
        from repro.state import checkpoint_to

        path = str(tmp_path / "ck.ckpt")
        sink = checkpoint_to(path)
        sim = step_until(build_rich(), 1200.0)
        sink(sim)  # the "kill" leaves only the file behind
        del sim
        result = resume_run(load_state(path), build_rich)
        assert result_fingerprint(result) == ref


class TestGuards:
    def test_restore_rejects_different_config(self):
        st = snapshot(step_until(build_small(), 500.0))
        with pytest.raises(StateError, match="config"):
            restore(st, build_rich)

    def test_restore_rejects_different_seed(self):
        st = snapshot(step_until(build_small(seed=7), 500.0))
        with pytest.raises(StateError, match="config"):
            restore(st, functools.partial(build_small, seed=8))

    def test_trace_and_meter_survive(self):
        sim = step_until(build_small(), 700.0)
        n_records = len(sim.trace)
        n_samples = sim.meter.num_samples
        restored = restore(snapshot(sim), build_small)
        assert len(restored.trace) == n_records
        assert restored.trace.total_emitted == sim.trace.total_emitted
        assert restored.meter.num_samples == n_samples
        assert restored.meter.energy_joules == sim.meter.energy_joules
        times_a, _ = sim.meter.series()
        times_b, _ = restored.meter.series()
        assert list(times_a) == list(times_b)

    def test_rng_streams_survive(self):
        sim = step_until(build_small(), 700.0)
        # Advance a stream so its captured position differs from a
        # fresh one; the restored stream must continue from there.
        sim.rng.stream("probe").random(5)
        restored = restore(snapshot(sim), build_small)
        a = sim.rng.stream("probe").random(4).tolist()
        b = restored.rng.stream("probe").random(4).tolist()
        assert a == b
        fresh = build_small()
        assert fresh.rng.stream("probe").random(5).tolist() != a
