#!/usr/bin/env python
"""Regenerate the paper's artifacts: Tables I/II, Figures 1/2, and the
announced cross-center analysis.

Run:  python examples/survey_analysis.py
"""

from repro.survey import (
    SurveyAnalysis,
    build_component_graph,
    regional_distribution,
    selection_funnel,
    verify_component_graph,
)
from repro.survey.components import category_coverage
from repro.survey.geography import ascii_map
from repro.survey.matrix import render_table1, render_table2


def main() -> None:
    print(render_table1(cell_width=30))
    print()
    print(render_table2(cell_width=30))

    print("\nFIGURE 1 — component graph verification:")
    graph = build_component_graph()
    problems = verify_component_graph(graph)
    print(f"  {graph.number_of_nodes()} components, "
          f"{graph.number_of_edges()} interactions, "
          f"problems: {problems or 'none'}")
    for category, members in category_coverage(graph).items():
        print(f"  {category.value}: {', '.join(sorted(members))}")

    print("\nFIGURE 2 — geographic distribution:")
    for region, count in sorted(regional_distribution().items()):
        print(f"  {region:15s}: {count}")
    print()
    print(ascii_map())

    funnel = selection_funnel()
    print(f"\nSELECTION — identified {funnel.identified}, "
          f"participating {funnel.participating} "
          f"({funnel.participation_rate:.0%})")

    analysis = SurveyAnalysis()
    print("\nANALYSIS — common themes (>= 3 centers):")
    for record in analysis.common_themes(min_centers=3):
        print(f"  {record.technique.value:45s} "
              f"{record.total_centers} centers "
              f"({len(record.production)} in production)")

    print("\nANALYSIS — research/practice gap (research-only techniques):")
    for technique in analysis.research_production_gap()["research_only"]:
        print(f"  {technique.value}")

    print("\nANALYSIS — center clusters:")
    clusters = analysis.cluster_centers(num_clusters=3)
    by_label: dict = {}
    for slug, label in clusters.items():
        by_label.setdefault(label, []).append(slug)
    for label, members in sorted(by_label.items()):
        print(f"  cluster {label}: {', '.join(members)}")
    a, b, score = analysis.most_similar_pair()
    print(f"  most similar pair: {a} / {b} (Jaccard {score:.2f})")

    print("\nANALYSIS — vendor engagement:")
    for partner, centers in analysis.vendor_engagement().items():
        print(f"  {partner:30s}: {', '.join(centers)}")


if __name__ == "__main__":
    main()
