"""Tests for moldable, layout-aware, demand-response, reporting and
manual-action policies."""

import pytest

from repro.cluster import Machine, MachineSpec, NodeState
from repro.cluster.facility import (
    Chiller,
    Facility,
    MaintenanceWindow,
    PowerDistributionUnit,
)
from repro.cluster.site import Site
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.errors import PolicyError
from repro.grid import DemandResponseEvent, GridEventSchedule
from repro.policies import (
    DemandResponsePolicy,
    EnergyReportingPolicy,
    LayoutAwarePolicy,
    ManualActionPolicy,
    MoldablePolicy,
)
from repro.policies.manual import AdminAction
from repro.units import HOUR
from repro.workload import JobState, MoldableConfig
from repro.workload.phases import COMPUTE_BOUND
from tests.conftest import make_job


def machine16():
    return Machine(MachineSpec(name="m", nodes=16,
                               idle_power=100.0, max_power=400.0))


class TestMoldable:
    def _moldable_job(self, **kw):
        return make_job(
            nodes=4,
            work=400.0,
            walltime=1000.0,
            moldable=(
                MoldableConfig(2, 760.0),
                MoldableConfig(4, 400.0),
                MoldableConfig(8, 220.0),
            ),
            **kw,
        )

    def test_grows_job_when_nodes_free(self):
        machine = machine16()
        job = self._moldable_job()
        policy = MoldablePolicy(prefer_speed=True)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        # 16 nodes free: the 8-node config is fastest.
        assert job.nodes == 8
        assert job.state is JobState.COMPLETED
        assert policy.reshaped == 1

    def test_shrinks_under_crowding(self):
        machine = machine16()
        blocker = make_job(job_id="blocker", nodes=14, work=2000.0,
                           walltime=4000.0)
        job = self._moldable_job(job_id="mold", submit=10.0)
        policy = MoldablePolicy(prefer_speed=True)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                                [blocker, job], policies=[policy])
        sim.run()
        # Only 2 nodes free while the blocker runs.
        assert job.nodes == 2
        assert job.state is JobState.COMPLETED

    def test_efficiency_preference(self):
        machine = machine16()
        job = self._moldable_job()
        policy = MoldablePolicy(prefer_speed=False)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        # Node-seconds: 2x760=1520, 4x400=1600, 8x220=1760 -> pick 2.
        assert job.nodes == 2

    def test_power_budget_limits_choice(self):
        machine = machine16()
        job = self._moldable_job(profile=COMPUTE_BOUND)
        budget = machine.idle_floor_power + 2.5 * 300.0  # fits 2-node delta
        policy = MoldablePolicy(budget_watts=budget, prefer_speed=True)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        assert job.nodes == 2

    def test_non_moldable_untouched(self):
        machine = machine16()
        job = make_job(nodes=4, work=100.0, walltime=500.0)
        policy = MoldablePolicy()
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        assert job.nodes == 4
        assert policy.reshaped == 0


class TestLayoutAware:
    def _site_with_facility(self, machine):
        pdus = [
            PowerDistributionUnit("pdu0", 1e6, list(range(0, 8))),
            PowerDistributionUnit("pdu1", 1e6, list(range(8, 16))),
        ]
        chillers = [Chiller("ch0", 1e6, ["pdu0"]), Chiller("ch1", 1e6, ["pdu1"])]
        facility = Facility(1e6, pdus=pdus, chillers=chillers)
        return Site("s", [machine], facility=facility)

    def test_requires_site(self):
        machine = machine16()
        with pytest.raises(PolicyError):
            ClusterSimulation(machine, EasyBackfillScheduler(), [],
                              policies=[LayoutAwarePolicy()])

    def test_avoids_maintenance_dependent_nodes(self):
        machine = machine16()
        site = self._site_with_facility(machine)
        site.facility.add_maintenance(MaintenanceWindow("pdu0", 0.0, 10 * HOUR))
        job = make_job(nodes=8, work=100.0, walltime=500.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[LayoutAwarePolicy(horizon=HOUR)],
                                site=site)
        sim.run()
        assert job.state is JobState.COMPLETED
        assert all(nid >= 8 for nid in job.assigned_nodes)

    def test_horizon_sees_future_windows(self):
        machine = machine16()
        site = self._site_with_facility(machine)
        # Window opens at t=2h; policy horizon 4h keeps nodes clear now.
        site.facility.add_maintenance(
            MaintenanceWindow("ch0", 2 * HOUR, 6 * HOUR)
        )
        job = make_job(nodes=4, work=100.0, walltime=500.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[LayoutAwarePolicy(horizon=4 * HOUR)],
                                site=site)
        sim.run()
        assert all(nid >= 8 for nid in job.assigned_nodes)

    def test_no_maintenance_no_filtering(self):
        machine = machine16()
        site = self._site_with_facility(machine)
        job = make_job(nodes=16, work=100.0, walltime=500.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[LayoutAwarePolicy()],
                                site=site)
        sim.run()
        assert job.state is JobState.COMPLETED


class TestDemandResponse:
    def test_vetoes_during_event(self):
        machine = machine16()
        event = DemandResponseEvent(
            start=0.0, end=2 * HOUR,
            limit_watts=machine.idle_floor_power + 100.0,
        )
        policy = DemandResponsePolicy(GridEventSchedule([event]))
        job = make_job(nodes=8, work=100.0, walltime=1000.0,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        # Vetoed during the event, started after it.
        assert job.start_time >= 2 * HOUR
        assert policy.vetoes > 0
        assert job.state is JobState.COMPLETED

    def test_sheds_idle_nodes_during_event(self):
        machine = machine16()
        event = DemandResponseEvent(
            start=0.0, end=4 * HOUR,
            limit_watts=machine.idle_floor_power * 0.5,
        )
        policy = DemandResponsePolicy(GridEventSchedule([event]),
                                      check_interval=300.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [],
                                policies=[policy])
        sim.run(until=1 * HOUR)
        assert policy.sheds > 0
        off = machine.nodes_in_state(NodeState.OFF)
        assert len(off) >= 8

    def test_straddling_start_blocked(self):
        machine = machine16()
        # Event at t=1h; a big job submitted now would straddle it.
        event = DemandResponseEvent(
            start=1 * HOUR, end=2 * HOUR, limit_watts=1000.0
        )
        policy = DemandResponsePolicy(GridEventSchedule([event]))
        job = make_job(nodes=16, work=3 * HOUR, walltime=4 * HOUR,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run(until=0.5 * HOUR)
        assert job.state is JobState.PENDING

    def test_normal_operation_outside_events(self):
        machine = machine16()
        policy = DemandResponsePolicy(GridEventSchedule([]))
        job = make_job(nodes=8, work=100.0, walltime=500.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        assert job.state is JobState.COMPLETED
        assert policy.vetoes == 0


class TestEnergyReporting:
    def test_report_per_finished_job(self):
        machine = machine16()
        policy = EnergyReportingPolicy()
        jobs = [make_job(job_id=f"j{i}", nodes=2, work=100.0,
                         walltime=500.0, user=f"u{i % 2}")
                for i in range(4)]
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[policy])
        sim.run()
        assert len(policy.reports) == 4
        report = policy.report_for("j0")
        assert report is not None
        assert report.energy_joules > 0
        assert report.grade in "ABCDE"
        assert 0.0 <= report.efficiency_score <= 1.0

    def test_grades_reflect_intensity(self):
        machine = machine16()
        policy = EnergyReportingPolicy()
        hot = make_job(job_id="hot", work=100.0, walltime=500.0,
                       profile=COMPUTE_BOUND)
        from repro.workload.phases import COMM_BOUND

        cold = make_job(job_id="cold", work=100.0, walltime=500.0,
                        profile=COMM_BOUND, submit=1.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                                [hot, cold], policies=[policy])
        sim.run()
        hot_report = policy.report_for("hot")
        cold_report = policy.report_for("cold")
        assert hot_report.efficiency_score > cold_report.efficiency_score

    def test_user_summary(self):
        machine = machine16()
        policy = EnergyReportingPolicy()
        jobs = [make_job(job_id=f"j{i}", work=100.0, walltime=500.0,
                         user="alice")
                for i in range(3)]
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[policy])
        sim.run()
        summary = policy.user_summary()
        assert summary["alice"]["jobs"] == 3
        assert summary["alice"]["energy_joules"] > 0
        assert 0.0 <= summary["alice"]["mean_score"] <= 1.0

    def test_missing_job_returns_none(self):
        machine = machine16()
        policy = EnergyReportingPolicy()
        ClusterSimulation(machine, EasyBackfillScheduler(), [],
                          policies=[policy])
        assert policy.report_for("ghost") is None


class TestManualActions:
    def test_scripted_shutdown_and_boot(self):
        machine = machine16()
        policy = ManualActionPolicy([
            AdminAction(100.0, "shutdown", count=4),
            AdminAction(5000.0, "boot", count=2),
        ])
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [],
                                policies=[policy])
        sim.run(until=500.0)
        assert len(machine.nodes_in_state(NodeState.OFF)) == 4
        sim.sim.run(until=10_000.0)
        assert len(machine.nodes_in_state(NodeState.OFF)) == 2
        assert len(policy.executed) == 2

    def test_scripted_cap(self):
        machine = machine16()
        policy = ManualActionPolicy([
            AdminAction(100.0, "set_cap", cap_watts=300.0),
            AdminAction(200.0, "clear_cap"),
        ])
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [],
                                policies=[policy])
        sim.run(until=150.0)
        assert machine.node(0).power_cap == 300.0
        sim.sim.run(until=250.0)
        assert machine.node(0).power_cap is None

    def test_custom_callback(self):
        machine = machine16()
        fired = []
        policy = ManualActionPolicy([
            AdminAction(50.0, "custom", callback=lambda: fired.append(1)),
        ])
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [],
                                policies=[policy])
        sim.run(until=100.0)
        assert fired == [1]

    def test_validation(self):
        with pytest.raises(PolicyError):
            AdminAction(0.0, "explode")
        with pytest.raises(PolicyError):
            AdminAction(0.0, "custom")
