"""Global grid/market broker: rolling-horizon budget arbitrage.

The broker is the survey's "global coordination" layer made concrete:
nine sites sit in different grid regions (timezones, tariffs, carbon
traces, demand-response windows), and a fleet-wide power budget has to
land where electricity is currently cheap and clean.  Each epoch the
broker reads the sites' telemetry reports, prices the *next* epoch
window in every region (exact time-of-use mean, carbon-weighted), and
water-fills the budget in ascending effective-price order:

1. every site gets its idle floor (machines stay alive);
2. demand is covered cheapest-first, up to each site's ceiling and
   any demand-response limit in force;
3. spare headroom goes to the cheapest regions, so backlog drains
   where the kWh costs least.

The broker is pure arithmetic over reports and
:class:`~repro.grid.market.RegionMarket` schedules — no simulator
state, no randomness — so the allocation stream is a deterministic
function of the telemetry stream, which the lockstep-determinism
tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..errors import ConfigurationError
from ..grid.market import RegionMarket
from .protocol import SiteReport

__all__ = ["GlobalBroker", "EpochAllocation"]


@dataclass(frozen=True)
class EpochAllocation:
    """One epoch's allocation record, kept for post-hoc analysis."""

    epoch: int
    window_start: float
    window_end: float
    total_budget_watts: float
    #: slug -> effective price (tariff + carbon_weight * carbon).
    effective_prices: Dict[str, float]
    #: slug -> demand signal the broker saw.
    demands: Dict[str, float]
    #: slug -> granted budget, watts.
    grants: Dict[str, float]


class GlobalBroker:
    """Allocate a fleet-wide power budget across regional markets.

    Parameters
    ----------
    markets:
        slug -> :class:`RegionMarket` for every federated site.
    budget_fraction:
        Fleet budget as a fraction of the summed site ceilings
        (ignored when *total_budget_watts* is given).
    total_budget_watts:
        Absolute fleet budget; overrides *budget_fraction*.
    carbon_weight:
        Currency-per-kg weight folding carbon intensity into the
        effective price (0 = pure cost arbitrage).
    """

    def __init__(
        self,
        markets: Mapping[str, RegionMarket],
        budget_fraction: float = 0.8,
        total_budget_watts: Optional[float] = None,
        carbon_weight: float = 0.0,
    ) -> None:
        if not markets:
            raise ConfigurationError("broker needs at least one market")
        if not 0.0 < budget_fraction <= 1.0:
            raise ConfigurationError("budget_fraction must be in (0, 1]")
        if total_budget_watts is not None and total_budget_watts <= 0:
            raise ConfigurationError("total_budget_watts must be positive")
        if carbon_weight < 0:
            raise ConfigurationError("carbon_weight must be >= 0")
        self.markets: Dict[str, RegionMarket] = dict(markets)
        self.budget_fraction = budget_fraction
        self.total_budget_watts = total_budget_watts
        self.carbon_weight = carbon_weight
        self.history: List[EpochAllocation] = []

    # ------------------------------------------------------------------
    def effective_price(
        self, slug: str, window_start: float, window_end: float
    ) -> float:
        """Carbon-weighted mean price of one region over the window."""
        market = self.markets[slug]
        price = market.mean_price(window_start, window_end)
        if self.carbon_weight:
            price += self.carbon_weight * market.mean_carbon(
                window_start, window_end
            )
        return price

    def allocate(
        self,
        reports: Mapping[str, SiteReport],
        window_start: float,
        window_end: float,
    ) -> Dict[str, float]:
        """Grant each site a budget for the coming epoch window.

        Deterministic: sites are visited in ascending
        ``(effective_price, slug)`` order, and every quantity derives
        from the reports and the market schedules alone.
        """
        missing = [s for s in reports if s not in self.markets]
        if missing:
            raise ConfigurationError(
                f"no market configured for sites: {sorted(missing)}"
            )

        floors: Dict[str, float] = {}
        ceilings: Dict[str, float] = {}
        demands: Dict[str, float] = {}
        prices: Dict[str, float] = {}
        for slug, report in reports.items():
            market = self.markets[slug]
            ceiling = min(
                report.ceiling_watts,
                market.dr_limit(window_start, window_end),
            )
            floor = min(report.floor_watts, ceiling)
            floors[slug] = floor
            ceilings[slug] = ceiling
            demands[slug] = min(max(report.demand_watts, floor), ceiling)
            prices[slug] = self.effective_price(
                slug, window_start, window_end
            )

        total = self.total_budget_watts
        if total is None:
            total = self.budget_fraction * sum(
                r.ceiling_watts for r in reports.values()
            )

        grants = dict(floors)
        remaining = total - sum(grants.values())
        if remaining < 0:
            # Budget below the summed idle floors: scale floors
            # pro-rata rather than brown a site out entirely.
            scale = total / sum(floors.values()) if sum(floors.values()) else 0.0
            grants = {s: f * scale for s, f in floors.items()}
            remaining = 0.0

        order = sorted(reports, key=lambda s: (prices[s], s))
        # Pass 1: cover reported demand, cheapest regions first.
        for slug in order:
            if remaining <= 0:
                break
            want = demands[slug] - grants[slug]
            if want > 0:
                grant = min(want, remaining)
                grants[slug] += grant
                remaining -= grant
        # Pass 2: spare headroom to the cheapest regions, up to their
        # ceilings — drain backlog where the kWh is cheapest.
        for slug in order:
            if remaining <= 0:
                break
            room = ceilings[slug] - grants[slug]
            if room > 0:
                grant = min(room, remaining)
                grants[slug] += grant
                remaining -= grant

        epoch = max((r.epoch for r in reports.values()), default=-1) + 1
        self.history.append(
            EpochAllocation(
                epoch=epoch,
                window_start=window_start,
                window_end=window_end,
                total_budget_watts=total,
                effective_prices=dict(prices),
                demands=dict(demands),
                grants=dict(grants),
            )
        )
        return grants
