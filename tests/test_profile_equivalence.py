"""Equivalence sweeps for the array-backed free-node profile and the
SoA execution-membership arrays.

The array :class:`repro.core.profile.FreeNodeProfile` (numpy backing,
optional numba kernels) must be decision-for-decision identical to the
list-based :class:`repro.core.reference_profile.ReferenceFreeNodeProfile`
— the PR-2 implementation preserved verbatim as an executable spec.
Hypothesis drives randomized release/reserve/query sequences through
both and compares every observable: step points, free counts, query
answers, raised errors.

The second half pins the vector backend's SoA execution membership
(``exec_slot`` rows + slot table) across snapshot/restore taken
mid-run, with executions in flight.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, MachineSpec
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.core.profile import FreeNodeProfile
from repro.core.reference_profile import ReferenceFreeNodeProfile
from repro.errors import SchedulingError
from repro.power import kernels
from repro.state import (
    restore,
    result_fingerprint,
    run_checkpointed,
    snapshot,
    state_fingerprint,
)
from repro.workload import Job

# ----------------------------------------------------------------------
# Strategies: randomized build + operation sequences
# ----------------------------------------------------------------------
_times = st.floats(min_value=0.0, max_value=1e5,
                   allow_nan=False, allow_infinity=False)
_counts = st.integers(min_value=0, max_value=64)

# Release lists crossing the vectorized from_releases threshold (16)
# in both directions, with duplicate timestamps and at/before-origin
# folds all reachable.
_releases = st.lists(st.tuples(_times, _counts), min_size=0, max_size=40)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), _times, _counts),
        st.tuples(st.just("reserve"), _times,
                  st.floats(min_value=0.0, max_value=5e4,
                            allow_nan=False, allow_infinity=False),
                  st.integers(min_value=1, max_value=32)),
        st.tuples(st.just("fit"), st.integers(min_value=0, max_value=128),
                  st.floats(min_value=0.0, max_value=5e4,
                            allow_nan=False, allow_infinity=False)),
        st.tuples(st.just("at_least"), st.integers(min_value=0, max_value=128),
                  _times),
        st.tuples(st.just("free_at"), _times),
    ),
    min_size=0, max_size=30,
)


def _assert_same_profile(arr: FreeNodeProfile,
                         ref: ReferenceFreeNodeProfile) -> None:
    assert len(arr) == len(ref)
    assert arr.times.tolist() == ref.times
    assert arr.free.tolist() == ref.free
    assert arr.tail_time == ref.tail_time


class TestProfileEquivalence:
    @given(origin=_times, free_now=_counts, releases=_releases, ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_randomized_sequences_decision_identical(
        self, origin, free_now, releases, ops
    ):
        arr = FreeNodeProfile.from_releases(origin, free_now, releases)
        ref = ReferenceFreeNodeProfile.from_releases(origin, free_now, releases)
        _assert_same_profile(arr, ref)

        for op in ops:
            kind = op[0]
            if kind == "add":
                _, time, count = op
                arr.add_release(time, count)
                ref.add_release(time, count)
            elif kind == "reserve":
                _, start, dur, count = op
                start = max(start, origin)
                arr.reserve(start, start + dur, count)
                ref.reserve(start, start + dur, count)
            elif kind == "fit":
                _, needed, dur = op
                got, want = arr.earliest_fit(needed, dur), ref.earliest_fit(
                    needed, dur)
                assert got == want
                assert got is None or type(got) is float
            elif kind == "at_least":
                _, needed, not_before = op
                if arr._monotone:
                    got = arr.earliest_at_least(needed, not_before)
                    want = ref.earliest_at_least(needed, not_before)
                    assert got == want
                    assert got is None or type(got) is float
            else:
                _, time = op
                got, want = arr.free_at(time), ref.free_at(time)
                assert got == want and type(got) is int
            _assert_same_profile(arr, ref)

    @given(origin=_times, free_now=_counts)
    @settings(max_examples=30, deadline=None)
    def test_error_paths_match(self, origin, free_now):
        arr = FreeNodeProfile(origin, free_now)
        ref = ReferenceFreeNodeProfile(origin, free_now)
        for prof in (arr, ref):
            with pytest.raises(SchedulingError):
                prof.add_release(origin + 1.0, -1)
            with pytest.raises(SchedulingError):
                prof.reserve(origin + 1.0, origin + 2.0, 0)
            with pytest.raises(SchedulingError):
                prof.reserve(origin - 1.0, origin + 1.0, 1)
            prof.reserve(origin + 1.0, origin + 2.0, 1)
            with pytest.raises(SchedulingError):
                prof.earliest_at_least(1, origin)
        _assert_same_profile(arr, ref)

    @given(releases=st.lists(st.tuples(_times, _counts),
                             min_size=16, max_size=48))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_from_releases_matches_fold(self, releases):
        """Above the vectorization threshold the np.unique/cumsum build
        must equal the one-by-one reference fold exactly."""
        arr = FreeNodeProfile.from_releases(0.0, 5, releases)
        ref = ReferenceFreeNodeProfile.from_releases(0.0, 5, releases)
        _assert_same_profile(arr, ref)


# ----------------------------------------------------------------------
# Kernel twins: numpy vs pure-python vs (optional) numba
# ----------------------------------------------------------------------
def _random_step(rng):
    n = int(rng.integers(1, 40))
    times = np.sort(rng.uniform(0.0, 1e4, size=n)).astype(np.float64)
    times = np.unique(times)
    free = rng.integers(-8, 64, size=times.size).astype(np.int64)
    return times, free


class TestEarliestFitKernelTwins:
    @pytest.mark.parametrize("seed", range(12))
    def test_np_matches_py(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(25):
            times, free = _random_step(rng)
            needed = int(rng.integers(0, 40))
            duration = float(rng.uniform(0.0, 5e3))
            assert kernels.earliest_fit_index_np(
                times, free, needed, duration
            ) == kernels.earliest_fit_index_py(times, free, needed, duration)

    @pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="numba unavailable")
    @pytest.mark.parametrize("seed", range(6))
    def test_nb_matches_np(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(25):
            times, free = _random_step(rng)
            needed = int(rng.integers(0, 40))
            duration = float(rng.uniform(0.0, 5e3))
            assert kernels._earliest_fit_nb(
                times, free, needed, duration
            ) == kernels.earliest_fit_index_np(times, free, needed, duration)


class TestInsertPointKernelTwins:
    @pytest.mark.parametrize("seed", range(8))
    def test_np_matches_list_insert(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        base_t = np.sort(rng.uniform(0.0, 100.0, size=n))
        base_f = rng.integers(0, 50, size=n).astype(np.int64)
        for idx in range(1, n):
            t = float(rng.uniform(base_t[idx - 1], base_t[idx]))
            times = np.concatenate([base_t, [0.0]])
            free = np.concatenate([base_f, [0]])
            kernels.insert_point_np(times, free, n, idx, t)
            lt = base_t.tolist()
            lf = base_f.tolist()
            lt.insert(idx, t)
            lf.insert(idx, lf[idx - 1])
            assert times.tolist() == lt
            assert free.tolist() == lf

    @pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="numba unavailable")
    def test_nb_matches_np(self):
        rng = np.random.default_rng(7)
        n = 20
        base_t = np.sort(rng.uniform(0.0, 100.0, size=n))
        base_f = rng.integers(0, 50, size=n).astype(np.int64)
        for idx in range(1, n):
            t = float(rng.uniform(base_t[idx - 1], base_t[idx]))
            ta = np.concatenate([base_t, [0.0]])
            fa = np.concatenate([base_f, [0]])
            tb, fb = ta.copy(), fa.copy()
            kernels.insert_point_np(ta, fa, n, idx, t)
            kernels._insert_point_nb(tb, fb, n, idx, t)
            assert ta.tolist() == tb.tolist()
            assert fa.tolist() == fb.tolist()


# ----------------------------------------------------------------------
# SoA execution membership across snapshot/restore
# ----------------------------------------------------------------------
def _build(seed):
    machine = Machine(MachineSpec(name="soa", nodes=16, nodes_per_cabinet=4))
    jobs = [
        Job(
            job_id=f"j{i}",
            nodes=1 + (i % 5),
            work_seconds=400.0 + 80.0 * i,
            walltime_request=4000.0,
            submit_time=20.0 * i,
        )
        for i in range(12)
    ]
    return ClusterSimulation(
        machine, EasyBackfillScheduler(), jobs, seed=seed,
        power_backend="vector",
    )


def _assert_exec_arrays_consistent(csim):
    mirror = csim.power_vector
    bound_rows = set()
    for execution in csim._executions.values():
        slot = execution.slot
        assert slot >= 0
        assert csim._exec_slots[slot] is execution
        rows = mirror.rows_for(execution.node_ids)
        assert (mirror.exec_slot[rows] == slot).all()
        assert (mirror.bound_jobs[rows] == 1).all()
        bound_rows.update(rows.tolist())
        for node_id in execution.node_ids:
            assert csim.execution_on(node_id) is execution
    unbound = np.setdiff1d(
        np.arange(len(csim.machine.nodes)), np.fromiter(
            bound_rows, dtype=np.intp, count=len(bound_rows))
    )
    assert (mirror.exec_slot[unbound] == -1).all()
    assert (mirror.bound_jobs[unbound] == 0).all()


class TestSoAExecutionSnapshot:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_mid_run_restore_rebuilds_exec_arrays(self, seed):
        factory = functools.partial(_build, seed)
        reference = result_fingerprint(factory().run())

        sim = factory()
        sim.prepare()
        # Step to a cut with executions in flight.
        while sim.sim.now < 300.0 and not sim.all_jobs_terminal:
            if not sim.sim.step():
                break
        assert sim._executions, "cut must land with jobs running"
        _assert_exec_arrays_consistent(sim)

        st_a = snapshot(sim)
        restored = restore(st_a, factory)
        _assert_exec_arrays_consistent(restored)
        # Restore is a fingerprint fixed point and replays to the
        # uninterrupted result.
        assert state_fingerprint(snapshot(restored)) == state_fingerprint(st_a)
        assert result_fingerprint(run_checkpointed(restored)) == reference

    def test_slots_recycle_through_freelist(self):
        sim = _build(1)
        sim.run()
        # All executions torn down: every row unbound, all slots freed.
        mirror = sim.power_vector
        assert (mirror.exec_slot == -1).all()
        assert not sim._executions
        assert all(e is None for e in sim._exec_slots)
        assert sorted(sim._free_slots) == list(range(len(sim._exec_slots)))
