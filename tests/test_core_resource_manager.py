"""Tests for the resource manager's actuation and notifications."""

import pytest

from repro.cluster import NodeState
from repro.core import ResourceManager
from repro.errors import NodeStateError
from repro.simulator import Simulator, TraceRecorder


@pytest.fixture
def rm_setup(small_machine):
    sim = Simulator()
    trace = TraceRecorder()
    changed = []
    speed_changes = []
    rm = ResourceManager(
        sim,
        small_machine,
        trace=trace,
        on_nodes_changed=lambda: changed.append(sim.now),
        on_speed_changed=speed_changes.append,
    )
    return sim, rm, small_machine, changed, speed_changes


class TestPowerStateControl:
    def test_shutdown_takes_time(self, rm_setup):
        sim, rm, machine, changed, _ = rm_setup
        node = machine.node(0)
        rm.shutdown_node(node)
        assert node.state is NodeState.SHUTTING_DOWN
        sim.run()
        assert node.state is NodeState.OFF
        assert sim.now == node.shutdown_time
        assert changed  # notification fired

    def test_boot_takes_time(self, rm_setup):
        sim, rm, machine, changed, _ = rm_setup
        node = machine.node(0)
        rm.shutdown_node(node)
        sim.run()
        rm.boot_node(node)
        assert node.state is NodeState.BOOTING
        sim.run()
        assert node.state is NodeState.IDLE
        assert rm.boots_initiated == 1
        assert rm.shutdowns_initiated == 1

    def test_bulk_operations_skip_wrong_states(self, rm_setup):
        sim, rm, machine, _, _ = rm_setup
        machine.node(0).assign("j", 0.0)
        stopped = rm.shutdown_nodes(machine.nodes)
        assert stopped == 15  # the busy node is skipped
        sim.run()
        booted = rm.boot_nodes(machine.nodes)
        assert booted == 15

    def test_cannot_shutdown_busy(self, rm_setup):
        _, rm, machine, _, _ = rm_setup
        machine.node(0).assign("j", 0.0)
        with pytest.raises(NodeStateError):
            rm.shutdown_node(machine.node(0))


class TestMaintenance:
    def test_drain_undrain(self, rm_setup):
        sim, rm, machine, changed, _ = rm_setup
        node = machine.node(0)
        rm.drain_node(node)
        assert node.state is NodeState.DOWN
        rm.undrain_node(node)
        assert node.state is NodeState.IDLE
        assert len(changed) == 2

    def test_drain_busy_raises(self, rm_setup):
        _, rm, machine, _, _ = rm_setup
        machine.node(0).assign("j", 0.0)
        with pytest.raises(NodeStateError):
            rm.drain_node(machine.node(0))


class TestPowerControl:
    def test_set_cap_notifies_speed_change(self, rm_setup):
        _, rm, machine, _, speed_changes = rm_setup
        affected = rm.set_power_cap(machine.nodes[:4], 200.0)
        assert affected == [0, 1, 2, 3]
        assert speed_changes == [[0, 1, 2, 3]]
        assert machine.node(0).power_cap == 200.0

    def test_clear_cap(self, rm_setup):
        _, rm, machine, _, _ = rm_setup
        rm.set_power_cap(machine.nodes[:2], 200.0)
        rm.set_power_cap(machine.nodes[:2], None)
        assert machine.node(0).power_cap is None

    def test_set_frequency(self, rm_setup):
        _, rm, machine, _, speed_changes = rm_setup
        rm.set_frequency(machine.nodes[:2], 1.5e9)
        assert machine.node(0).frequency == 1.5e9
        assert speed_changes[-1] == [0, 1]


class TestQueries:
    def test_idle_longer_than(self, rm_setup):
        sim, rm, machine, _, _ = rm_setup
        machine.node(0).assign("j", 0.0)
        sim.at(100.0, lambda: machine.node(0).release(100.0))
        sim.run()
        # Node 0 idle since 100; others since 0.
        sim._now = 150.0  # advance clock directly for the query
        longer = rm.idle_nodes_longer_than(100.0)
        assert machine.node(0) not in longer
        assert len(longer) == 15

    def test_off_nodes(self, rm_setup):
        sim, rm, machine, _, _ = rm_setup
        rm.shutdown_node(machine.node(3))
        sim.run()
        assert [n.node_id for n in rm.off_nodes()] == [3]

    def test_trace_records(self, rm_setup):
        sim, rm, machine, _, _ = rm_setup
        rm.shutdown_node(machine.node(0))
        sim.run()
        assert rm.trace.count("rm.shutdown.start") == 1
        assert rm.trace.count("rm.shutdown.done") == 1
