"""Demand-response events.

A demand-response (DR) request is the concrete mechanism by which an
ESP asks a large consumer to shed load for a window of time — the
central scenario of the ESP studies ([6], [36]) that motivated the
EPA JSRM team (Section II).  An event carries the window and the
power level the site must stay under during it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DemandResponseEvent:
    """One DR window: stay under ``limit_watts`` during [start, end)."""

    start: float
    end: float
    limit_watts: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError("DR event must have end > start")
        if self.limit_watts <= 0:
            raise ConfigurationError("DR limit must be positive")

    def active_at(self, time: float) -> bool:
        """True while the event is in force."""
        return self.start <= time < self.end


class GridEventSchedule:
    """An ordered collection of DR events (non-overlapping)."""

    def __init__(self, events: Sequence[DemandResponseEvent] = ()) -> None:
        self.events: List[DemandResponseEvent] = sorted(
            events, key=lambda e: e.start
        )
        for a, b in zip(self.events, self.events[1:]):
            if b.start < a.end:
                raise ConfigurationError(
                    f"DR events overlap: [{a.start},{a.end}) and [{b.start},{b.end})"
                )

    def __len__(self) -> int:
        return len(self.events)

    def active_event(self, time: float) -> Optional[DemandResponseEvent]:
        """The event in force at *time*, if any."""
        for event in self.events:
            if event.active_at(time):
                return event
            if event.start > time:
                break
        return None

    def next_event(self, time: float) -> Optional[DemandResponseEvent]:
        """The next event starting at or after *time*."""
        for event in self.events:
            if event.start >= time:
                return event
        return None

    def limit_at(self, time: float, default: float = float("inf")) -> float:
        """Power limit in force at *time* (or *default*)."""
        event = self.active_event(time)
        return event.limit_watts if event is not None else default
