"""Electricity service provider: tariffs and price signals.

Bates et al. [6] analyzed the ESP-supercomputing-center relationship;
time-of-use pricing is the simplest coupling: energy is cheaper at
night, so energy-aware schedulers can shift deferrable load.  Prices
are piecewise-constant over the day with optional peak surcharges.

The schedule keeps a sorted band-edge cache so whole sampled series
are priced in one ``searchsorted`` (:meth:`prices_at`), and exposes the
analytic tariff integral (:meth:`average_price`) that the federation
broker uses for rolling-horizon forecasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import DAY


@dataclass(frozen=True)
class ElectricityPriceSchedule:
    """Piecewise-constant daily tariff.

    ``bands`` is a sequence of (start_hour, end_hour, price_per_kwh)
    covering [0, 24) without gaps or overlaps.
    """

    bands: Tuple[Tuple[float, float, float], ...]

    def __post_init__(self) -> None:
        covered = 0.0
        last_end = 0.0
        ordered = sorted(self.bands)
        for start, end, price in ordered:
            if start != last_end:
                raise ConfigurationError(
                    f"tariff bands must tile [0,24): gap/overlap at hour {start}"
                )
            if price < 0:
                raise ConfigurationError("negative tariff price")
            covered += end - start
            last_end = end
        if abs(covered - 24.0) > 1e-9:
            raise ConfigurationError("tariff bands must cover 24 hours")
        # Sorted-edge caches for the vectorized paths.  The dataclass is
        # frozen over ``bands`` only; these are derived, not fields.
        starts = np.array([b[0] for b in ordered], dtype=float)
        prices = np.array([b[2] for b in ordered], dtype=float)
        widths = np.array([b[1] - b[0] for b in ordered], dtype=float)
        cum = np.concatenate(([0.0], np.cumsum(prices * widths)))
        object.__setattr__(self, "_starts", starts)
        object.__setattr__(self, "_prices", prices)
        object.__setattr__(self, "_cum", cum)

    @classmethod
    def flat(cls, price_per_kwh: float) -> "ElectricityPriceSchedule":
        """Single-band flat tariff."""
        return cls(((0.0, 24.0, price_per_kwh),))

    @classmethod
    def day_night(
        cls,
        day_price: float,
        night_price: float,
        day_start: float = 7.0,
        day_end: float = 21.0,
    ) -> "ElectricityPriceSchedule":
        """Two-band tariff with a daytime price window."""
        return cls(
            (
                (0.0, day_start, night_price),
                (day_start, day_end, day_price),
                (day_end, 24.0, night_price),
            )
        )

    def price_at(self, time: float) -> float:
        """Tariff (currency per kWh) at simulated *time*.

        The per-band scan is the executable spec the vectorized
        :meth:`prices_at` is pinned against.
        """
        hour = (time % DAY) / 3600.0
        for start, end, price in self.bands:
            if start <= hour < end:
                return price
        return self.bands[-1][2]

    def prices_at(self, times: Sequence[float]) -> np.ndarray:
        """Tariff at every sample of *times* (one searchsorted, no loop)."""
        hours = (np.asarray(times, dtype=float) % DAY) / 3600.0
        idx = np.searchsorted(self._starts, hours, side="right") - 1
        return self._prices[idx]

    # ------------------------------------------------------------------
    def _integral_to(self, time: float) -> float:
        """∫ price dh (currency/kWh · hours) over [0, *time*) seconds."""
        days, rem = divmod(time, DAY)
        hour = rem / 3600.0
        idx = min(
            int(np.searchsorted(self._starts, hour, side="right")) - 1,
            len(self._prices) - 1,
        )
        partial = self._cum[idx] + self._prices[idx] * (hour - self._starts[idx])
        return days * self._cum[-1] + partial

    def average_price(self, start: float, end: float) -> float:
        """Time-averaged tariff over the absolute window [start, end).

        Exact under the piecewise-constant model (no sampling grid),
        spanning band boundaries and whole days.
        """
        if end <= start:
            raise ConfigurationError("average_price window must have end > start")
        hours = (end - start) / 3600.0
        return (self._integral_to(end) - self._integral_to(start)) / hours


class ElectricityServiceProvider:
    """An ESP: a tariff plus a contracted demand limit.

    ``demand_limit_watts`` models the contracted maximum demand; the
    penalty rate applies to energy drawn above it (a simplification of
    real demand charges, sufficient to give policies the right
    gradient).
    """

    def __init__(
        self,
        schedule: ElectricityPriceSchedule,
        demand_limit_watts: float = float("inf"),
        penalty_per_kwh: float = 0.0,
    ) -> None:
        self.schedule = schedule
        self.demand_limit_watts = demand_limit_watts
        self.penalty_per_kwh = penalty_per_kwh

    def cost_of(self, times: Sequence[float], watts: Sequence[float]) -> float:
        """Energy cost of a sampled power series (trapezoid-free, piecewise).

        Each interval [t_i, t_{i+1}) is billed at the price of its
        start and the power of its start sample; above-limit power
        incurs the penalty rate on the excess.  Vectorized over the
        whole series; pinned sample-equivalent to :meth:`cost_of_scalar`.
        """
        if len(times) != len(watts):
            raise ConfigurationError("times and watts must have equal length")
        if len(times) < 2:
            return 0.0
        times = np.asarray(times, dtype=float)
        watts = np.asarray(watts, dtype=float)
        dt_hours = np.diff(times) / 3600.0
        np.maximum(dt_hours, 0.0, out=dt_hours)
        kwh = (watts[:-1] / 1e3) * dt_hours
        total = float(kwh @ self.schedule.prices_at(times[:-1]))
        if self.penalty_per_kwh != 0.0 and np.isfinite(self.demand_limit_watts):
            excess_kw = np.maximum(0.0, watts[:-1] - self.demand_limit_watts) / 1e3
            total += float(excess_kw @ dt_hours) * self.penalty_per_kwh
        return total

    def cost_of_scalar(
        self, times: Sequence[float], watts: Sequence[float]
    ) -> float:
        """Per-sample reference implementation of :meth:`cost_of`."""
        if len(times) != len(watts):
            raise ConfigurationError("times and watts must have equal length")
        total = 0.0
        for i in range(len(times) - 1):
            dt_hours = (times[i + 1] - times[i]) / 3600.0
            if dt_hours <= 0:
                continue
            kw = watts[i] / 1e3
            price = self.schedule.price_at(times[i])
            total += kw * dt_hours * price
            excess_kw = max(0.0, watts[i] - self.demand_limit_watts) / 1e3
            total += excess_kw * dt_hours * self.penalty_per_kwh
        return total
