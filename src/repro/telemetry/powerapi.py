"""PowerAPI-style segment measurement.

STFC research (Table II): "Programmable interface (PowerAPI-based)
for application power measurements of code segments (with interface
to JSRM)"; Trinity's development line "Developed Power API
implementation with Cray, utilized by MOAB/Torque".  Sandia's Power
API gives applications start/stop counters around code regions.  Here
a :class:`PowerApi` wraps a power source and exposes exactly that:
``start_segment`` / ``stop_segment`` pairs yielding energy and average
power per named segment, nestable like real instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import ConfigurationError
from ..simulator.engine import Simulator


@dataclass(frozen=True)
class SegmentMeasurement:
    """One measured code segment."""

    name: str
    start: float
    end: float
    energy_joules: float

    @property
    def duration(self) -> float:
        """Segment wall time, seconds."""
        return self.end - self.start

    @property
    def average_watts(self) -> float:
        """Mean power over the segment."""
        return self.energy_joules / self.duration if self.duration > 0 else 0.0


class PowerApi:
    """Start/stop power measurement of named segments.

    Parameters
    ----------
    sim:
        Simulator supplying the clock.
    power_source:
        Callable returning the instantaneous power of the measured
        entity (a job's nodes, a node, the machine).

    Energy is integrated with sample-and-hold between the observation
    points (segment boundaries); for higher fidelity call
    :meth:`observe` inside long segments.
    """

    def __init__(self, sim: Simulator, power_source: Callable[[], float]) -> None:
        self.sim = sim
        self.power_source = power_source
        self.completed: List[SegmentMeasurement] = []
        self._open: Dict[str, List] = {}  # name -> [start, energy, last_t, last_w]

    def start_segment(self, name: str) -> None:
        """Open a measurement segment."""
        if name in self._open:
            raise ConfigurationError(f"segment {name!r} already open")
        now = self.sim.now
        self._open[name] = [now, 0.0, now, float(self.power_source())]

    def observe(self) -> None:
        """Integrate all open segments up to now (optional refinement)."""
        now = self.sim.now
        watts = float(self.power_source())
        for state in self._open.values():
            _start, _energy, last_t, last_w = state
            state[1] += last_w * (now - last_t)
            state[2] = now
            state[3] = watts

    def stop_segment(self, name: str) -> SegmentMeasurement:
        """Close a segment and return its measurement."""
        state = self._open.pop(name, None)
        if state is None:
            raise ConfigurationError(f"segment {name!r} is not open")
        start, energy, last_t, last_w = state
        now = self.sim.now
        energy += last_w * (now - last_t)
        measurement = SegmentMeasurement(name, start, now, energy)
        self.completed.append(measurement)
        return measurement

    def measurements_for(self, name: str) -> List[SegmentMeasurement]:
        """All completed measurements of one segment name."""
        return [m for m in self.completed if m.name == name]

    @property
    def open_segments(self) -> List[str]:
        """Names of segments currently being measured."""
        return sorted(self._open)
