"""STFC (Hartree Centre) scenario — Table II row 1.

Production: continuous power and energy monitoring at data-center,
machine and job levels.  Tech development: job-level user power
reporting.  Research: PowerAPI-style segment measurement (exercised by
the telemetry tests).  The distinctive trait: heavy monitoring, no
active power control — the scenario wires a multi-channel telemetry
sampler and the reporting policy, and nothing that caps or throttles.
"""

from __future__ import annotations

from ..core.backfill import EasyBackfillScheduler
from ..core.simulation import ClusterSimulation
from ..policies.reporting import EnergyReportingPolicy
from ..telemetry.sampler import TelemetrySampler
from ..units import DAY
from .base import CenterBuild, center_workload, standard_machine, standard_site


def build_simulation(
    seed: int = 0,
    duration: float = 2.0 * DAY,
    nodes: int = 90,  # scaled stand-in for the 360-node testbed
) -> CenterBuild:
    """Assemble the STFC monitoring-centric scenario."""
    machine = standard_machine(
        "scafell-pike", nodes=nodes, idle_power=85.0, max_power=300.0, seed=seed,
    )
    site = standard_site("stfc", machine, region="Europe")
    workload = center_workload("stfc", machine, duration=duration, seed=seed)
    simulation = ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        workload,
        policies=[EnergyReportingPolicy()],
        site=site,
        seed=seed,
        sample_interval=30.0,  # "continuously collecting": fine-grained
    )
    # Data-center / machine / job -level channels (Table II wording).
    sampler = TelemetrySampler(simulation.sim, interval=60.0)
    sampler.add_channel("machine-power", simulation.machine_power, "W")
    sampler.add_channel(
        "facility-pue",
        lambda: site.cooling.pue(site.ambient.temperature(simulation.sim.now)),
    )
    sampler.add_channel(
        "running-jobs", lambda: float(len(simulation.running_jobs()))
    )
    sampler.start()
    # Component registration makes the sampler's periodic event (and
    # its collected series) part of checkpoints: without it, snapshots
    # of a live stfc run fail on the unreachable telemetry event.
    simulation.attach_component("telemetry", sampler)
    return CenterBuild(
        "stfc",
        simulation,
        notes=["monitoring-only: 30 s power meter + 3 telemetry channels"],
    )
