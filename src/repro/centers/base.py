"""Shared scaffolding for center scenarios.

Real surveyed systems range from hundreds (STFC's 360-node testbed) to
tens of thousands of nodes; scenarios default to O(100) nodes so a
full center simulation runs in seconds while preserving the control
dynamics (the policies operate on fractions and windows, not absolute
node counts).  Power figures are loosely calibrated to the public
specs of each flagship system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cluster.facility import Chiller, Facility, PowerDistributionUnit
from ..cluster.machine import Machine, MachineSpec
from ..cluster.site import Site
from ..cluster.thermal import AmbientModel, CoolingModel
from ..cluster.topology import build_for
from ..cluster.variability import VariabilityModel
from ..core.simulation import ClusterSimulation
from ..simulator.rng import RngStreams
from ..units import DAY
from ..workload.generator import WorkloadGenerator
from ..workload.job import Job
from ..workload.presets import center_workload_spec


@dataclass
class CenterBuild:
    """The assembled pieces of one center scenario."""

    slug: str
    simulation: ClusterSimulation
    notes: List[str] = field(default_factory=list)


def standard_machine(
    name: str,
    nodes: int = 128,
    idle_power: float = 100.0,
    max_power: float = 350.0,
    interconnect: str = "fat-tree",
    with_topology: bool = False,
    variability_std: float = 0.05,
    seed: int = 0,
    boot_time: float = 300.0,
) -> Machine:
    """A homogeneous machine with optional topology and variability."""
    spec = MachineSpec(
        name=name,
        nodes=nodes,
        nodes_per_cabinet=max(8, nodes // 8),
        idle_power=idle_power,
        max_power=max_power,
        interconnect=interconnect,
        boot_time=boot_time,
    )
    topology = build_for(interconnect, nodes) if with_topology else None
    machine = Machine(spec, topology=topology)
    if variability_std > 0:
        VariabilityModel(std=variability_std).apply(
            machine.nodes, RngStreams(seed).stream("variability")
        )
    return machine


def standard_site(
    name: str,
    machine: Machine,
    region: str = "Europe",
    budget_factor: float = 1.3,
    ambient: Optional[AmbientModel] = None,
    with_facility_map: bool = False,
    pdu_groups: int = 4,
) -> Site:
    """A site wrapping one machine, optionally with a PDU/chiller map."""
    budget = machine.peak_power * budget_factor
    facility = None
    if with_facility_map:
        nodes = machine.nodes
        per = max(1, len(nodes) // pdu_groups)
        pdus = []
        for g in range(pdu_groups):
            ids = [n.node_id for n in nodes[g * per : (g + 1) * per]]
            if not ids:
                continue
            pdus.append(
                PowerDistributionUnit(
                    f"pdu{g}",
                    capacity_watts=sum(
                        machine.node(i).effective_max_power for i in ids
                    ) * 1.2,
                    node_ids=ids,
                )
            )
        chillers = [
            Chiller(
                f"chiller{c}",
                capacity_watts=budget,
                pdu_ids=[p.pdu_id for p in pdus[c::2]],
            )
            for c in range(min(2, len(pdus)))
        ]
        facility = Facility(budget, cooling_capacity_watts=budget,
                            pdus=pdus, chillers=chillers)
    return Site(
        name,
        [machine],
        facility=facility or Facility(budget),
        ambient=ambient,
        cooling=CoolingModel(),
        region=region,
    )


def center_workload(
    slug: str,
    machine: Machine,
    duration: float = 2.0 * DAY,
    seed: int = 0,
    count: Optional[int] = None,
    **overrides,
) -> List[Job]:
    """Generate the center's preset workload scaled to *machine*."""
    spec = center_workload_spec(
        slug,
        duration=duration,
        max_nodes=min(
            center_workload_spec(slug).max_nodes, max(1, len(machine) // 2)
        ),
        **overrides,
    )
    rng = RngStreams(seed).stream(f"workload:{slug}")
    return WorkloadGenerator(spec, rng).generate(count=count)
