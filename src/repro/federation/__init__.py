"""Federated nine-center simulation under a global grid/market broker.

The survey's centers each optimize alone; this package runs all nine
concurrently as *sites* of one federation, advancing in deterministic
lockstep epochs.  A :class:`GlobalBroker` prices every region's next
epoch window (time-of-use tariff + carbon trace, timezone-shifted) and
water-fills a fleet power budget where electricity is cheap and clean;
sites enforce their directive through
:class:`~repro.policies.site_budget.SiteBudgetPolicy` and report
power/queue/slowdown telemetry back.  Site state moves between
processes as ``RPST`` snapshot bytes, which is also what makes what-if
forks and cross-worker migration safe.

See DESIGN.md §13 for the epoch protocol and determinism contract.
"""

from .broker import EpochAllocation, GlobalBroker
from .campaign import (
    FederationCampaign,
    FederationResult,
    SiteResult,
    federation_fingerprint,
    pareto_front,
)
from .protocol import (
    EpochOutcome,
    EpochTask,
    SiteConfig,
    SiteDirective,
    SiteReport,
)
from .site import advance_site, build_site_simulation

__all__ = [
    "EpochAllocation",
    "EpochOutcome",
    "EpochTask",
    "FederationCampaign",
    "FederationResult",
    "GlobalBroker",
    "SiteConfig",
    "SiteDirective",
    "SiteReport",
    "SiteResult",
    "advance_site",
    "build_site_simulation",
    "federation_fingerprint",
    "pareto_front",
]
