"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Machine, MachineSpec
from repro.power import NodePowerModel
from repro.simulator import RngStreams, Simulator, TraceRecorder
from repro.units import HOUR
from repro.workload import Job, WorkloadGenerator, WorkloadSpec


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator at t=0."""
    return Simulator()


@pytest.fixture
def trace() -> TraceRecorder:
    """A fresh trace recorder."""
    return TraceRecorder()


@pytest.fixture
def rng() -> RngStreams:
    """Seeded stream family for deterministic tests."""
    return RngStreams(12345)


@pytest.fixture
def small_machine() -> Machine:
    """16 nodes, 4 per cabinet, defaults otherwise."""
    return Machine(MachineSpec(name="tiny", nodes=16, nodes_per_cabinet=4))


@pytest.fixture
def power_model() -> NodePowerModel:
    """Default quadratic power model."""
    return NodePowerModel()


def make_job(
    job_id: str = "j1",
    nodes: int = 1,
    work: float = 100.0,
    walltime: float = 200.0,
    submit: float = 0.0,
    **kwargs,
) -> Job:
    """Terse job constructor for tests."""
    return Job(
        job_id=job_id,
        nodes=nodes,
        work_seconds=work,
        walltime_request=walltime,
        submit_time=submit,
        **kwargs,
    )


@pytest.fixture
def job_factory():
    """Expose :func:`make_job` as a fixture."""
    return make_job


@pytest.fixture
def small_workload(rng):
    """~40 small jobs over 4 hours for a 16-node machine."""
    spec = WorkloadSpec(
        arrival_rate=10.0 / HOUR,
        duration=4.0 * HOUR,
        min_nodes=1,
        max_nodes=8,
        mean_work=HOUR / 2,
    )
    return WorkloadGenerator(spec, rng.stream("wl")).generate(count=40)
