"""Checkpointed run loops.

:func:`run_checkpointed` drives a :class:`ClusterSimulation` exactly
like :meth:`ClusterSimulation.run` — same step loop, same stopping
condition, same stall bookkeeping — while invoking a checkpoint sink
whenever the clock passes the next checkpoint boundary.  Because the
loop is step-for-step identical and :func:`repro.state.snapshot` never
mutates the simulation, a checkpointed run produces a
``SimulationResult`` bit-identical to an uninterrupted one.

Resuming is just ``run_checkpointed(restore(state, factory), ...)``:
the restored simulation is already prepared, so ``prepare()`` is a
no-op and the loop continues from the captured event.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..units import check_positive
from .capture import restore, snapshot
from .serialize import save_state

_DEFAULT_STALL = 30.0 * 86400.0


def run_checkpointed(
    sim_obj,
    interval: Optional[float] = None,
    sink: Optional[Callable[[object], None]] = None,
    until: Optional[float] = None,
    stall_timeout: float = _DEFAULT_STALL,
):
    """Run *sim_obj* to completion, calling ``sink(sim_obj)`` every
    *interval* simulated seconds.

    The sink typically snapshots and saves::

        run_checkpointed(sim, 3600.0,
                         sink=lambda s: save_state(path, snapshot(s)))

    With ``sink=None`` (or ``interval=None``) this is behaviorally
    identical to ``sim_obj.run(until=until)``.

    Returns the :class:`SimulationResult`.
    """
    if interval is not None:
        check_positive("interval", interval)
    checkpointing = sink is not None and interval is not None

    sim_obj.prepare()
    engine = sim_obj.sim
    next_ck = (engine.now + interval) if checkpointing else None

    if until is not None:
        # Chunked engine.run: each chunk advances the clock exactly to
        # its boundary (events at the boundary fire inside the chunk),
        # so the concatenation is event-identical to one run(until=...).
        while True:
            target = until if next_ck is None or until <= next_ck else next_ck
            engine.run(until=target)
            if target >= until:
                break
            sink(sim_obj)
            next_ck = target + interval
        return sim_obj.finalize()

    # No horizon: replicate ClusterSimulation.run's step loop exactly
    # (run until every job is terminal; periodic components do not keep
    # the simulation alive; stall detection on no progress).
    last_progress_count = -1
    last_progress_time = engine.now
    while not sim_obj.all_jobs_terminal:
        if not engine.step():
            break
        progress = sim_obj.progress_count
        if progress != last_progress_count:
            last_progress_count = progress
            last_progress_time = engine.now
        elif engine.now - last_progress_time > stall_timeout:
            sim_obj.trace.emit(
                engine.now, "sim.stall",
                unfinished=len(sim_obj.jobs) - sim_obj._terminal_count,
            )
            break
        if checkpointing and engine.now >= next_ck:
            sink(sim_obj)
            next_ck = engine.now + interval
    return sim_obj.finalize()


def checkpoint_to(path: str) -> Callable[[object], None]:
    """A sink that snapshots the simulation and atomically writes the
    checkpoint to *path* (each checkpoint replaces the previous)."""

    def sink(sim_obj) -> None:
        save_state(path, snapshot(sim_obj))

    return sink


def resume_run(
    state,
    factory: Callable[[], object],
    interval: Optional[float] = None,
    sink: Optional[Callable[[object], None]] = None,
    until: Optional[float] = None,
    stall_timeout: float = _DEFAULT_STALL,
):
    """Restore *state* via *factory* and continue to completion.

    Stall detection restarts from the resume point (the original run's
    progress clock is not part of the captured state); runs that never
    stall — every supported workload — finish bit-identically.
    """
    sim_obj = restore(state, factory)
    return run_checkpointed(
        sim_obj, interval=interval, sink=sink, until=until,
        stall_timeout=stall_timeout,
    )
