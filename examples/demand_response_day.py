#!/usr/bin/env python
"""Grid interaction: a demand-response day with dual-source supply.

The survey's motivating scenario (Bates et al.; RIKEN's grid-vs-gas-
turbine research line): the electricity provider requests reduced
draw during an afternoon peak.  The site responds with DR-aware
scheduling; the supply side decides hour by hour whether grid or
on-site gas turbine is cheaper.

Run:  python examples/demand_response_day.py
"""

from repro.centers.base import center_workload, standard_machine
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.grid import (
    DemandResponseEvent,
    DualSourceSupply,
    ElectricityPriceSchedule,
    ElectricityServiceProvider,
    GridEventSchedule,
)
from repro.policies import DemandResponsePolicy
from repro.units import HOUR


def main() -> None:
    machine = standard_machine("k-like", nodes=96, idle_power=60.0,
                               max_power=180.0, seed=3)
    limit = machine.peak_power * 0.5
    events = GridEventSchedule([
        DemandResponseEvent(13 * HOUR, 17 * HOUR, limit),
    ])
    print(f"DR event: hours 13-17, limit {limit / 1e3:.1f} kW "
          f"(peak {machine.peak_power / 1e3:.1f} kW)")

    jobs = center_workload("riken", machine, duration=24 * HOUR, seed=3)
    sim = ClusterSimulation(
        machine, EasyBackfillScheduler(), jobs,
        policies=[DemandResponsePolicy(events, check_interval=300.0)],
        seed=3,
    )
    result = sim.run()
    m = result.metrics
    times, watts = result.meter.series()

    print(f"completed {m.jobs_completed}/{m.jobs_submitted}, "
          f"killed {m.jobs_killed}")
    in_window = (times >= 13 * HOUR) & (times < 17 * HOUR)
    if in_window.any():
        peak_in_window = watts[in_window].max()
        print(f"peak inside DR window : {peak_in_window / 1e3:.1f} kW "
              f"(limit {limit / 1e3:.1f} kW)")
    print(f"peak outside          : {watts.max() / 1e3:.1f} kW")

    # Price the day: tariff + demand penalty, then the supply decision.
    tariff = ElectricityPriceSchedule.day_night(0.26, 0.08)
    esp = ElectricityServiceProvider(tariff, demand_limit_watts=limit,
                                     penalty_per_kwh=2.0)
    cost = esp.cost_of(list(times), list(watts))
    print(f"day's energy cost     : {cost:.2f} (tariff + penalties)")

    supply = DualSourceSupply(tariff, turbine_capacity_watts=limit,
                              turbine_cost_per_kwh=0.14)
    print("\nhourly supply decision (demand = hourly mean power):")
    for hour in range(0, 24, 3):
        mask = (times >= hour * HOUR) & (times < (hour + 3) * HOUR)
        if not mask.any():
            continue
        demand = float(watts[mask].mean())
        decision = supply.decide(hour * HOUR, demand)
        print(f"  {hour:02d}:00  demand {demand / 1e3:6.1f} kW -> "
              f"grid {decision.grid_watts / 1e3:6.1f} kW, "
              f"turbine {decision.turbine_watts / 1e3:6.1f} kW "
              f"({decision.cost_per_hour:.2f}/h)")


if __name__ == "__main__":
    main()
