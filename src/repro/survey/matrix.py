"""The capability matrix: Tables I and II as generated artifacts.

:func:`build_capability_matrix` reconstructs the paper's two summary
tables from the typed survey data; renderers produce the aligned-text
versions the benchmarks print.  A boolean technique x center matrix
feeds the cross-center analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .data import all_center_slugs, survey_responses
from .model import MaturityStage
from .taxonomy import Technique

#: The paper splits the matrix after LRZ: Table I = first 5 centers.
TABLE1_CENTERS = ("riken", "tokyotech", "cea", "kaust", "lrz")
TABLE2_CENTERS = ("stfc", "trinity", "cineca", "jcahpc")


@dataclass
class CapabilityMatrix:
    """Centers x maturity-stages matrix of activity descriptions."""

    centers: List[str]
    cells: Dict[Tuple[str, MaturityStage], List[str]]

    def cell(self, center: str, stage: MaturityStage) -> List[str]:
        """Activity descriptions of one cell (may be empty)."""
        return self.cells.get((center, stage), [])

    def row(self, center: str) -> Dict[MaturityStage, List[str]]:
        """All three cells of one center."""
        return {stage: self.cell(center, stage) for stage in MaturityStage}

    # ------------------------------------------------------------------
    def technique_matrix(self) -> Tuple[np.ndarray, List[str], List[Technique]]:
        """(matrix, centers, techniques): boolean adoption matrix.

        ``matrix[i, j]`` is True when center *i* exhibits technique *j*
        at any maturity stage.
        """
        responses = {r.profile.slug: r for r in survey_responses()}
        techniques = sorted(Technique, key=lambda t: t.name)
        matrix = np.zeros((len(self.centers), len(techniques)), dtype=bool)
        for i, center in enumerate(self.centers):
            have = responses[center].techniques()
            for j, technique in enumerate(techniques):
                matrix[i, j] = technique in have
        return matrix, list(self.centers), techniques

    def production_counts(self) -> Dict[str, int]:
        """Number of production activities per center."""
        return {
            center: len(self.cell(center, MaturityStage.PRODUCTION))
            for center in self.centers
        }


def build_capability_matrix(
    centers: Optional[Sequence[str]] = None,
) -> CapabilityMatrix:
    """Build the matrix for *centers* (default: all nine, table order)."""
    centers = list(centers) if centers is not None else all_center_slugs()
    responses = {r.profile.slug: r for r in survey_responses()}
    cells: Dict[Tuple[str, MaturityStage], List[str]] = {}
    for center in centers:
        response = responses[center]
        for stage in MaturityStage:
            cells[(center, stage)] = [
                a.description for a in response.by_stage(stage)
            ]
    return CapabilityMatrix(centers, cells)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _wrap(text: str, width: int) -> List[str]:
    words = text.split()
    lines: List[str] = []
    line = ""
    for word in words:
        if line and len(line) + 1 + len(word) > width:
            lines.append(line)
            line = word
        else:
            line = f"{line} {word}".strip()
    if line:
        lines.append(line)
    return lines or [""]


def render_table(
    centers: Sequence[str],
    title: str,
    cell_width: int = 36,
) -> str:
    """Aligned-text rendering of one capability table."""
    matrix = build_capability_matrix(centers)
    responses = {r.profile.slug: r for r in survey_responses()}
    headers = ["Center"] + [stage.value for stage in MaturityStage]
    widths = [14] + [cell_width] * 3
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"

    def fmt_row(cols: List[List[str]]) -> str:
        height = max(len(c) for c in cols)
        lines = []
        for k in range(height):
            parts = []
            for col, width in zip(cols, widths):
                text = col[k] if k < len(col) else ""
                parts.append(f" {text:<{width}} ")
            lines.append("|" + "|".join(parts) + "|")
        return "\n".join(lines)

    out = [title, sep, fmt_row([[h] for h in headers]), sep]
    for center in centers:
        name = responses[center].profile.name
        cols = [_wrap(name, widths[0])]
        for stage in MaturityStage:
            cell_lines: List[str] = []
            entries = matrix.cell(center, stage)
            if not entries:
                cell_lines = ["-"]
            for i, entry in enumerate(entries):
                if i:
                    cell_lines.append("")
                cell_lines.extend(_wrap(entry, cell_width))
            cols.append(cell_lines)
        out.append(fmt_row(cols))
        out.append(sep)
    return "\n".join(out)


def render_table1(cell_width: int = 36) -> str:
    """Table I: RIKEN, Tokyo Tech, CEA, KAUST, LRZ."""
    return render_table(
        TABLE1_CENTERS,
        "TABLE I — Part 1 of the summary of the answers from each center.",
        cell_width,
    )


def render_table2(cell_width: int = 36) -> str:
    """Table II: STFC, Trinity (LANL+Sandia), CINECA, JCAHPC."""
    return render_table(
        TABLE2_CENTERS,
        "TABLE II — Part 2 of the summary of the answers from each center.",
        cell_width,
    )
