"""Experiment runner: evaluate policy variants on matched workloads.

Runs each named variant on an *identically generated* workload and
fresh machine (common random numbers — the standard variance-reduction
technique for simulation comparisons), then tabulates the metrics the
benches print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.metrics import MetricsReport
from ..core.simulation import ClusterSimulation, SimulationResult


@dataclass
class Variant:
    """One experimental arm.

    ``build`` must return a fresh, fully wired
    :class:`ClusterSimulation` — including its own machine and its own
    copy of the workload (job objects are mutated by runs).
    """

    name: str
    build: Callable[[], ClusterSimulation]
    notes: str = ""


@dataclass
class VariantResult:
    """Result of one arm."""

    name: str
    metrics: MetricsReport
    result: SimulationResult
    notes: str = ""


class ExperimentRunner:
    """Run a list of variants and collect comparable results."""

    def __init__(self, variants: List[Variant]) -> None:
        names = [v.name for v in variants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variant names: {names}")
        self.variants = variants
        self.results: List[VariantResult] = []

    def run_all(self, until: Optional[float] = None) -> List[VariantResult]:
        """Execute every variant; returns (and stores) the results."""
        self.results = []
        for variant in self.variants:
            simulation = variant.build()
            result = simulation.run(until=until)
            self.results.append(
                VariantResult(variant.name, result.metrics, result, variant.notes)
            )
        return self.results

    def metric_table(self, keys: List[str]) -> Dict[str, Dict[str, float]]:
        """variant -> {metric -> value} for the chosen metric keys."""
        table: Dict[str, Dict[str, float]] = {}
        for res in self.results:
            flat = res.metrics.as_dict()
            table[res.name] = {k: flat.get(k, float("nan")) for k in keys}
        return table

    def best_by(self, key: str, minimize: bool = True) -> VariantResult:
        """The variant with the best value of one metric."""
        if not self.results:
            raise ValueError("run_all() first")
        chooser = min if minimize else max
        return chooser(self.results, key=lambda r: r.metrics.as_dict().get(key, float("inf")))
