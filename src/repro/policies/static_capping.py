"""Static partition power capping — KAUST's production deployment.

Table I, KAUST: "Static power capping via Cray CAPMC.  30% of nodes
run uncapped, 70% run with 270 W power cap."  The policy splits the
machine into a capped partition and an uncapped partition at attach
time and installs per-node caps through the resource manager.  The
trade: guaranteed worst-case power at the cost of slowing
compute-bound work on the capped partition.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.epa import FunctionalCategory
from ..errors import PolicyError
from ..units import check_fraction, check_positive
from .base import Policy


class StaticCappingPolicy(Policy):
    """Cap a fixed fraction of nodes at a fixed wattage.

    Parameters
    ----------
    cap_watts:
        Per-node cap for the capped partition (KAUST: 270 W).
    capped_fraction:
        Fraction of nodes in the capped partition (KAUST: 0.70).
    low_power_first:
        If True, put the *most power-hungry* nodes (by variability) in
        the capped partition — they gain the most headroom.
    """

    name = "static-capping"

    def __init__(
        self,
        cap_watts: float,
        capped_fraction: float = 0.7,
        low_power_first: bool = True,
    ) -> None:
        super().__init__()
        self.cap_watts = check_positive("cap_watts", cap_watts)
        self.capped_fraction = check_fraction("capped_fraction", capped_fraction)
        self.low_power_first = low_power_first
        self.capped_node_ids: List[int] = []

    def on_attach(self) -> None:
        machine = self.simulation.machine
        count = int(round(self.capped_fraction * len(machine.nodes)))
        if count == 0:
            return
        nodes = list(machine.nodes)
        if self.low_power_first:
            nodes.sort(key=lambda n: (-n.effective_max_power, n.node_id))
        else:
            nodes.sort(key=lambda n: n.node_id)
        selected = nodes[:count]
        floor = max(n.cap_floor for n in selected)
        if self.cap_watts < floor:
            raise PolicyError(
                f"cap {self.cap_watts:.0f} W below enforceable floor {floor:.0f} W"
            )
        self.capped_node_ids = self.simulation.rm.set_power_cap(
            selected, self.cap_watts
        )

    def worst_case_power(self) -> float:
        """Guaranteed machine power bound under this partitioning."""
        machine = self.simulation.machine
        mirror = self.simulation.power_vector
        if mirror is not None:
            effective_max = mirror.max_power * mirror.variability
            capped = np.zeros(len(mirror), dtype=bool)
            if self.capped_node_ids:
                capped[mirror.rows_for(self.capped_node_ids)] = True
            return float(
                np.where(
                    capped,
                    np.minimum(self.cap_watts, effective_max),
                    effective_max,
                ).sum()
            )
        capped_ids = set(self.capped_node_ids)
        total = 0.0
        for node in machine.nodes:
            if node.node_id in capped_ids:
                total += min(self.cap_watts, node.effective_max_power)
            else:
                total += node.effective_max_power
        return total

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "static-capping",
                FunctionalCategory.POWER_CONTROL,
                f"{self.capped_fraction:.0%} of nodes capped at "
                f"{self.cap_watts:.0f} W (CAPMC-style)",
            )
        ]
