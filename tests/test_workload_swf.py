"""Tests for SWF trace reading and writing."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.workload import Job, read_swf, write_swf
from repro.workload.swf import roundtrip_string

SAMPLE = """\
; Sample SWF trace
; UnixStartTime: 0
1 0 10 100 4 -1 -1 4 200 -1 1 5 -1 2 1 -1 -1 -1
2 50 -1 300 8 -1 -1 8 600 -1 1 6 -1 3 1 -1 -1 -1
3 60 5 -1 -1 -1 -1 4 100 -1 0 5 -1 2 1 -1 -1 -1
"""


class TestRead:
    def test_parses_jobs(self):
        jobs = read_swf(io.StringIO(SAMPLE))
        # Third line has run_time -1 -> skipped.
        assert len(jobs) == 2
        assert jobs[0].job_id == "swf1"
        assert jobs[0].nodes == 4
        assert jobs[0].work_seconds == 100.0
        assert jobs[0].walltime_request == 200.0
        assert jobs[0].submit_time == 0.0
        assert jobs[0].user == "user005"

    def test_cores_per_node_division(self):
        jobs = read_swf(io.StringIO(SAMPLE), cores_per_node=4)
        assert jobs[0].nodes == 1
        assert jobs[1].nodes == 2

    def test_ceil_division(self):
        line = "1 0 0 100 5 -1 -1 5 200 -1 1 1 -1 1 1 -1 -1 -1\n"
        jobs = read_swf(io.StringIO(line), cores_per_node=4)
        assert jobs[0].nodes == 2  # ceil(5/4)

    def test_max_jobs(self):
        jobs = read_swf(io.StringIO(SAMPLE), max_jobs=1)
        assert len(jobs) == 1

    def test_requested_falls_back_to_actual(self):
        line = "1 0 0 100 4 -1 -1 -1 -1 -1 1 1 -1 1 1 -1 -1 -1\n"
        jobs = read_swf(io.StringIO(line))
        assert jobs[0].nodes == 4
        assert jobs[0].walltime_request == 100.0

    def test_short_line_raises(self):
        with pytest.raises(TraceFormatError):
            read_swf(io.StringIO("1 2 3\n"))

    def test_non_numeric_raises(self):
        bad = "1 0 0 abc 4 -1 -1 4 200 -1 1 1 -1 1 1 -1 -1 -1\n"
        with pytest.raises(TraceFormatError):
            read_swf(io.StringIO(bad))

    def test_bad_cores_per_node(self):
        with pytest.raises(TraceFormatError):
            read_swf(io.StringIO(SAMPLE), cores_per_node=0)


class TestWrite:
    def test_roundtrip(self, job_factory):
        jobs = [
            job_factory(job_id="a", nodes=4, work=100.0, walltime=200.0),
            job_factory(job_id="b", nodes=8, work=300.0, walltime=600.0, submit=50.0),
        ]
        for i, job in enumerate(jobs):
            job.start(job.submit_time + 10.0, list(range(job.nodes)))
            job.complete(job.start_time + job.work_seconds)
        text = roundtrip_string(jobs)
        back = read_swf(io.StringIO(text))
        assert len(back) == 2
        assert back[0].nodes == 4
        assert back[0].work_seconds == pytest.approx(100.0)
        assert back[1].submit_time == 50.0

    def test_header_written_as_comments(self, job_factory, tmp_path):
        job = job_factory()
        job.start(0.0, [0])
        job.complete(100.0)
        path = tmp_path / "trace.swf"
        write_swf([job], str(path), header="line1\nline2")
        content = path.read_text()
        assert content.startswith("; line1\n; line2\n")

    def test_file_roundtrip(self, job_factory, tmp_path):
        job = job_factory(nodes=2)
        job.start(5.0, [0, 1])
        job.complete(105.0)
        path = tmp_path / "t.swf"
        count = write_swf([job], str(path))
        assert count == 1
        back = read_swf(str(path))
        assert back[0].nodes == 2

    def test_unstarted_jobs_skipped_on_read(self, job_factory):
        # Written with -1 run time; reader drops them.
        pending = job_factory()
        text = roundtrip_string([pending])
        assert read_swf(io.StringIO(text)) == []

    def test_status_codes(self, job_factory):
        killed = job_factory(job_id="k")
        killed.start(0.0, [0])
        killed.kill(50.0, "power")
        text = roundtrip_string([killed])
        fields = text.strip().split()
        assert fields[10] == "5"  # SWF status: cancelled/killed
