"""Structured trace recording.

A :class:`TraceRecorder` is an append-only log of typed records emitted
by any component.  It is the simulation-side analogue of the long-term
monitoring archives the surveyed centers maintain (STFC: "continuously
collecting power and energy system monitoring info, data center,
machine, and job levels") — analyses are run over the trace after the
simulation, never by reaching into live objects.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time of the record, seconds.
    category:
        Dotted topic string, e.g. ``"job.start"``, ``"power.cap"``.
    data:
        Arbitrary payload; by convention a flat ``dict`` of primitives.
    """

    time: float
    category: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only, queryable trace log.

    Categories are dotted paths; queries match by exact category or by
    prefix (``"job"`` matches ``"job.start"`` and ``"job.end"``).
    Optional live subscribers receive records as they are emitted —
    used by telemetry aggregators and by tests.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        # Per-category bucket index: category -> positions in
        # ``_records`` (each list ascending by construction).  Category
        # queries fold the matching buckets instead of scanning every
        # record; analyses over long simulations query specific
        # categories thousands of times.
        self._buckets: Dict[str, List[int]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def emit(self, time: float, category: str, **data: Any) -> None:
        """Record an event at *time* under *category* with payload *data*."""
        if not self.enabled:
            return
        record = TraceRecord(time, category, data)
        self._buckets.setdefault(category, []).append(len(self._records))
        self._records.append(record)
        for sub in self._subscribers:
            sub(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live subscriber invoked for every new record."""
        self._subscribers.append(callback)

    def _matching_buckets(self, category: str) -> List[List[int]]:
        """Position lists of every bucket matching *category* (exact or
        dotted-prefix), unmerged."""
        prefix = category + "."
        return [
            positions
            for cat, positions in self._buckets.items()
            if cat == category or cat.startswith(prefix)
        ]

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Return records, optionally filtered by category prefix.

        Emission order is preserved: matching buckets hold ascending
        record positions, so a k-way merge restores the global order
        without touching non-matching records.
        """
        if category is None:
            return list(self._records)
        buckets = self._matching_buckets(category)
        if not buckets:
            return []
        if len(buckets) == 1:
            positions: Iterable[int] = buckets[0]
        else:
            positions = heapq.merge(*buckets)
        records = self._records
        return [records[i] for i in positions]

    def iter_between(
        self, start: float, end: float, category: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        """Yield records with ``start <= time < end`` (prefix-filtered)."""
        prefix = None if category is None else category + "."
        for r in self._records:
            if not (start <= r.time < end):
                continue
            if category is None or r.category == category or r.category.startswith(prefix):  # type: ignore[arg-type]
                yield r

    def count(self, category: Optional[str] = None) -> int:
        """Number of records under *category* (prefix match).

        O(#distinct categories), independent of the record count.
        """
        if category is None:
            return len(self._records)
        return sum(len(b) for b in self._matching_buckets(category))

    def clear(self) -> None:
        """Drop all records (subscribers stay registered)."""
        self._records.clear()
        self._buckets.clear()
