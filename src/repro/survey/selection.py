"""Section III: center selection criteria and funnel.

"A three-part test was utilized: (1) the center should be
representative of a high performance computing center and have at
least one system that is in the Top500 list; (2) the center should
have either actively deployed or [be] engaged in technology
development with the intention to deploy large-scale EPA JSRM
technologies in a production environment; (3) the center's leadership
was willing to participate. ... Ultimately, a list of eleven centers
was identified ... of which nine elected to participate."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .data import (
    IDENTIFIED_NOT_PARTICIPATING,
    survey_responses,
)
from .model import CenterProfile, MaturityStage, SurveyResponse


@dataclass(frozen=True)
class SelectionCriteria:
    """The three-part test of Section III."""

    require_top500: bool = True
    require_epa_deployment_path: bool = True
    require_willingness: bool = True

    def check_top500(self, profile: CenterProfile) -> bool:
        """Part 1: a Top500-listed system."""
        return profile.top500_listed or not self.require_top500

    @staticmethod
    def check_epa_path(response: SurveyResponse) -> bool:
        """Part 2: production deployment or tech-dev with intent.

        By the paper's construction, every participating center passes;
        the test is meaningful for hypothetical candidates.
        """
        has_production = bool(response.by_stage(MaturityStage.PRODUCTION))
        has_techdev = bool(response.by_stage(MaturityStage.TECH_DEV))
        return has_production or has_techdev

    def check_willingness(self, profile: CenterProfile) -> bool:
        """Part 3: leadership willing to participate."""
        return profile.participated or not self.require_willingness


@dataclass(frozen=True)
class SelectionFunnel:
    """The 11 -> 9 funnel of Section III."""

    identified: int
    participating: int
    declined: int
    passes_three_part_test: Dict[str, bool]

    @property
    def participation_rate(self) -> float:
        """Fraction of identified centers that participated."""
        return self.participating / self.identified if self.identified else 0.0


def selection_funnel(criteria: SelectionCriteria = SelectionCriteria()) -> SelectionFunnel:
    """Apply the three-part test and reproduce the paper's funnel."""
    responses = survey_responses()
    passes: Dict[str, bool] = {}
    for response in responses:
        profile = response.profile
        ok = (
            criteria.check_top500(profile)
            and criteria.check_epa_path(response)
            and criteria.check_willingness(profile)
        )
        passes[profile.slug] = ok
    identified = len(responses) + len(IDENTIFIED_NOT_PARTICIPATING)
    return SelectionFunnel(
        identified=identified,
        participating=len(responses),
        declined=len(IDENTIFIED_NOT_PARTICIPATING),
        passes_three_part_test=passes,
    )


def interview_timeline() -> Dict[str, str]:
    """The interview schedule facts from Section III."""
    return {
        "start": "September 2016",
        "end": "August 2017",
        "duration_months": "11",
        "response_pages": "8-17 per center",
    }
