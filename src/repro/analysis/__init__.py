"""Experiment harness: run, compare and report policy evaluations."""

from .stats import percentile_table, PercentileTable, workload_summary
from .runner import ExperimentRunner, Variant, VariantResult
from .executor import (
    DEFAULT_CACHE_DIR,
    ExecutorError,
    ExperimentExecutor,
    ResultCache,
    RunRecord,
    VariantSpec,
    config_fingerprint,
)
from .compare import relative_change, compare_metrics
from .report import (
    format_quantity,
    render_columns,
    render_dict_table,
    render_executor_summary,
    render_sparkline,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExecutorError",
    "ExperimentExecutor",
    "ExperimentRunner",
    "PercentileTable",
    "ResultCache",
    "RunRecord",
    "Variant",
    "VariantResult",
    "VariantSpec",
    "compare_metrics",
    "config_fingerprint",
    "format_quantity",
    "percentile_table",
    "relative_change",
    "render_columns",
    "render_dict_table",
    "render_executor_summary",
    "render_sparkline",
    "workload_summary",
]
