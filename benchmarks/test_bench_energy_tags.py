"""Experiment ``exp-energy-tags``: LRZ's goal-selectable scheduling.

Runs the same tagged workload under the three administrator goals
(best performance, energy-to-solution, EDP) on a frequency-diverse
application mix.  Shape claims (Auweter et al. [4] report ~6-8 %
energy savings on SuperMUC): energy-to-solution spends the least
energy, best-performance finishes fastest, EDP sits between.
"""

from __future__ import annotations

import copy

from repro.analysis.report import render_columns
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import EnergyTagPolicy, SchedulingGoal
from repro.simulator import RngStreams
from repro.units import HOUR
from repro.workload import WorkloadGenerator, WorkloadSpec

from .conftest import bench_machine, write_artifact


def _jobs():
    # Repeated tags so the characterization pays off.
    spec = WorkloadSpec(arrival_rate=50.0 / HOUR, duration=12 * HOUR,
                        max_nodes=16, mean_work=0.5 * HOUR)
    jobs = WorkloadGenerator(spec, RngStreams(37).stream("tags")).generate(
        count=150
    )
    return jobs


def _run(goal: SchedulingGoal):
    machine = bench_machine(48)
    policy = EnergyTagPolicy(goal=goal)
    sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                            copy.deepcopy(_jobs()), policies=[policy], seed=1)
    result = sim.run()
    return result.metrics, policy


def test_bench_energy_goals(benchmark, artifact_dir):
    def sweep():
        return {goal: _run(goal) for goal in SchedulingGoal}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for goal, (metrics, policy) in results.items():
        rows.append([
            goal.value,
            f"{metrics.total_energy_mwh:.3f}",
            f"{metrics.makespan / 3600:.2f}",
            f"{metrics.jobs_completed}",
            f"{len(policy.characterized_tags)}",
        ])
    write_artifact(
        "exp-energy-tags",
        "EXP-ENERGY-TAGS — LRZ goal comparison (150 tagged jobs)\n\n"
        + render_columns(
            ["goal", "energy[MWh]", "makespan[h]", "done", "tags"], rows,
        ),
    )

    perf = results[SchedulingGoal.BEST_PERFORMANCE][0]
    energy = results[SchedulingGoal.ENERGY_TO_SOLUTION][0]
    edp = results[SchedulingGoal.ENERGY_DELAY_PRODUCT][0]
    # Energy goal saves energy vs best performance (paper-scale: >3 %).
    assert energy.total_energy_joules <= 0.97 * perf.total_energy_joules
    # Best performance is no slower than the energy goal.
    assert perf.makespan <= energy.makespan * 1.02
    # EDP energy lands between the two extremes (with small tolerance).
    assert energy.total_energy_joules <= edp.total_energy_joules * 1.02
    assert edp.total_energy_joules <= perf.total_energy_joules * 1.02
    # Everyone finishes everything (walltime extension works).
    assert all(m.jobs_completed == 150 for m, _ in results.values())
