"""Experiment ``table2``: regenerate Table II of the paper.

Table II summarizes STFC, Trinity (LANL+Sandia), CINECA and JCAHPC.
"""

from __future__ import annotations

import pytest

from repro.centers import build_center_simulation
from repro.survey import MaturityStage, build_capability_matrix
from repro.survey.matrix import TABLE2_CENTERS, render_table2
from repro.units import HOUR

from .conftest import write_artifact


def test_bench_render_table2(benchmark, artifact_dir):
    text = benchmark(render_table2)
    write_artifact("table2", text)
    assert "STFC" in text and "TABLE II" in text
    # Signature cell contents from the paper's Table II, checked on the
    # underlying matrix (the renderer wraps and interleaves columns).
    matrix = build_capability_matrix(TABLE2_CENTERS)
    cells = " ".join(
        entry
        for center in TABLE2_CENTERS
        for stage in MaturityStage
        for entry in matrix.cell(center, stage)
    )
    assert "Continuously collecting power and energy" in cells  # STFC
    assert "CAPMC" in cells                                     # Trinity
    assert "University of Bologna" in cells                     # CINECA
    assert "Fujitsu proprietary product" in cells               # JCAHPC
    assert "post-job energy use reports" in cells


def test_bench_table2_structure(benchmark):
    matrix = benchmark(build_capability_matrix, TABLE2_CENTERS)
    assert len(matrix.centers) == 4
    for center in TABLE2_CENTERS:
        assert matrix.cell(center, MaturityStage.PRODUCTION)
    # JCAHPC's tech-dev cell is "-" in the paper.
    assert matrix.cell("jcahpc", MaturityStage.TECH_DEV) == []


@pytest.mark.parametrize("slug", TABLE2_CENTERS)
def test_bench_table2_center_executes(benchmark, slug):
    """Each Table-II row runs as a live simulation (scaled down)."""

    def run():
        build = build_center_simulation(slug, seed=2, duration=2 * HOUR,
                                        nodes=32)
        return build.simulation.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.metrics.jobs_completed > 0
