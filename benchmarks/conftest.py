"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table/figure) or one
quantitative experiment from the DESIGN.md per-experiment index.  Each
writes its rendered rows to ``benchmarks/out/<experiment>.txt`` so the
artifacts survive pytest's output capture, and asserts the *shape*
claims that must hold (who wins, by roughly what factor).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.cluster import Machine, MachineSpec
from repro.simulator import RngStreams
from repro.units import HOUR
from repro.workload import WorkloadGenerator, WorkloadSpec

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    """Directory where benches drop their rendered artifacts."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_artifact(name: str, text: str) -> None:
    """Persist one bench artifact (and echo it for -s runs)."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    print(f"\n[{name}]\n{text}\n")


def bench_machine(nodes: int = 64, **kw) -> Machine:
    """Standard benchmark machine."""
    defaults = dict(name="bench", nodes=nodes, idle_power=100.0,
                    max_power=400.0, nodes_per_cabinet=max(8, nodes // 8))
    defaults.update(kw)
    return Machine(MachineSpec(**defaults))


def bench_workload(
    seed: int = 11,
    count: int = 150,
    nodes: int = 64,
    rate_per_hour: float = 40.0,
    mean_work_hours: float = 0.5,
    **kw,
):
    """Standard benchmark workload, deterministic per seed."""
    spec = WorkloadSpec(
        arrival_rate=rate_per_hour / HOUR,
        duration=12.0 * HOUR,
        min_nodes=1,
        max_nodes=max(1, nodes // 2),
        mean_work=mean_work_hours * HOUR,
        **kw,
    )
    return WorkloadGenerator(spec, RngStreams(seed).stream("bench")).generate(
        count=count
    )
