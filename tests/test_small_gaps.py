"""Coverage for small helpers not exercised elsewhere."""

import pytest

from repro.prediction.features import feature_matrix, FEATURE_NAMES
from repro.analysis.stats import workload_summary
from repro.survey.taxonomy import (
    TECHNIQUE_DESCRIPTIONS,
    TECHNIQUE_IMPLEMENTATIONS,
    Technique,
)
from repro.workload.swf import roundtrip_string
from tests.conftest import make_job


class TestFeatureMatrix:
    def test_shape(self):
        jobs = [make_job(job_id=f"j{i}", nodes=2 ** i) for i in range(4)]
        matrix = feature_matrix(jobs)
        assert matrix.shape == (4, len(FEATURE_NAMES))

    def test_empty(self):
        assert feature_matrix([]).shape == (0, len(FEATURE_NAMES))


class TestWorkloadSummaryEdges:
    def test_empty_jobs(self):
        summary = workload_summary([], span=1000.0)
        assert summary["jobs_total"] == 0.0
        assert summary["mean_size_nodes"] == 0.0

    def test_zero_span(self):
        job = make_job()
        job.start(0.0, [0])
        job.complete(10.0)
        summary = workload_summary([job], span=0.0)
        assert summary["jobs_per_month"] == 0.0


class TestTaxonomyTables:
    def test_descriptions_cover_every_technique(self):
        assert set(TECHNIQUE_DESCRIPTIONS) == set(Technique)

    def test_implementations_cover_every_technique(self):
        assert set(TECHNIQUE_IMPLEMENTATIONS) == set(Technique)

    def test_enum_values_unique(self):
        values = [t.value for t in Technique]
        assert len(values) == len(set(values))


class TestSwfHelpers:
    def test_roundtrip_string_empty(self):
        assert roundtrip_string([]) == ""


class TestJobReprAndMisc:
    def test_node_repr(self):
        from repro.cluster import Node

        text = repr(Node(3))
        assert "Node(3" in text

    def test_moldable_tuple_immutable(self):
        from repro.workload import MoldableConfig

        cfg = MoldableConfig(4, 100.0)
        with pytest.raises(AttributeError):
            cfg.nodes = 8
