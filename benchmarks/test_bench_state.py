"""Experiment ``exp-state``: checkpoint subsystem cost at scale.

What a checkpointed campaign pays: the wall cost of one
``snapshot()``, one ``to_bytes()`` serialization, one ``restore()``,
and the on-disk checkpoint size — as a function of machine size, on a
mid-run simulation with live executions, queue backlog and warm power
caches.  The correctness side (bit-identical resume) is asserted here
on the benchmarked machine itself; the randomized sweeps live in
``tests/test_property_state.py``.

Timings land in ``benchmarks/out/BENCH_state.json`` (machine-readable,
uploaded by the CI benchmarks job) plus the usual rendered artifact.
"""

from __future__ import annotations

import functools
import json
import time

from repro.core import ClusterSimulation, FcfsScheduler
from repro.state import (
    restore,
    result_fingerprint,
    run_checkpointed,
    snapshot,
    state_fingerprint,
    to_bytes,
)
from repro.workload import Job

from .conftest import OUT_DIR, bench_machine, write_artifact


def _best_of(fn, rounds: int = 3) -> float:
    """Best-of-N wall time of one call (first call warms caches)."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


def _update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into benchmarks/out/BENCH_state.json."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_state.json"
    data = json.loads(path.read_text()) if path.exists() else {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def _build(nodes: int, seed: int = 5) -> ClusterSimulation:
    jobs = [
        Job(
            job_id=f"b{i}",
            nodes=max(1, (i * 7) % (nodes // 2)),
            work_seconds=600.0 + 90.0 * (i % 11),
            walltime_request=9000.0,
            submit_time=40.0 * i,
        )
        for i in range(48)
    ]
    return ClusterSimulation(
        bench_machine(nodes), FcfsScheduler(), jobs, seed=seed
    )


def _cut(nodes: int) -> ClusterSimulation:
    sim = _build(nodes)
    sim.prepare()
    while sim.sim.now < 2000.0 and sim.sim.step():
        pass
    return sim


def test_bench_state_snapshot_cost(artifact_dir):
    """snapshot/serialize/restore cost and checkpoint size vs nodes."""
    rows = {}
    for nodes in (256, 1024, 4096):
        sim = _cut(nodes)
        factory = functools.partial(_build, nodes)

        st = snapshot(sim)
        blob = to_bytes(st)
        t_snapshot = _best_of(lambda: snapshot(sim))
        t_serialize = _best_of(lambda: to_bytes(st))
        t_restore = _best_of(lambda: restore(st, factory))
        rows[nodes] = (t_snapshot, t_serialize, t_restore, len(blob))

        # Correctness on the benchmarked machine: restore is a fixed
        # point here too.
        assert state_fingerprint(snapshot(restore(st, factory))) == \
            state_fingerprint(st)

    lines = [
        "EXP-STATE — checkpoint subsystem cost\n"
        "(mid-run FCFS simulation, 48 jobs; one snapshot of live state)\n"
    ]
    for nodes, (ts, tz, tr, size) in rows.items():
        lines.append(
            f"{nodes:5d} nodes: snapshot {ts * 1e3:7.2f} ms"
            f"   serialize {tz * 1e3:7.2f} ms"
            f"   restore {tr * 1e3:7.2f} ms"
            f"   checkpoint {size / 1024.0:8.1f} KiB"
        )
    write_artifact("exp-state", "\n".join(lines) + "\n")
    _update_bench_json(
        "snapshot_cost",
        {
            str(nodes): {
                "snapshot_seconds": ts,
                "serialize_seconds": tz,
                "restore_seconds": tr,
                "checkpoint_bytes": size,
            }
            for nodes, (ts, tz, tr, size) in rows.items()
        },
    )

    # Shape claims: a checkpoint of a 4k-node sim stays comfortably
    # under 32 MiB and under a second to take.
    ts, tz, _, size = rows[4096]
    assert size < 32 * 1024 * 1024, f"checkpoint ballooned to {size} bytes"
    assert ts + tz < 1.0, f"snapshot+serialize took {ts + tz:.2f}s at 4k nodes"


def test_bench_state_resume_identical(artifact_dir):
    """The acceptance invariant on the bench machine: a mid-run
    checkpoint resumed to completion matches the uninterrupted run."""
    nodes = 1024
    reference = result_fingerprint(_build(nodes).run())
    sim = _cut(nodes)
    st = snapshot(sim)
    resumed = run_checkpointed(restore(st, functools.partial(_build, nodes)))
    assert result_fingerprint(resumed) == reference

    t_resume_full = _best_of(
        lambda: run_checkpointed(
            restore(st, functools.partial(_build, nodes))
        ),
        rounds=2,
    )
    write_artifact(
        "exp-state-resume",
        "EXP-STATE-RESUME — resume-to-completion from a mid-run checkpoint\n"
        f"({nodes} nodes; restored result identical to uninterrupted run)\n\n"
        f"restore+finish {t_resume_full * 1e3:8.1f} ms\n",
    )
    _update_bench_json(
        "resume",
        {
            "nodes": nodes,
            "restore_and_finish_seconds": t_resume_full,
            "identical": True,
        },
    )
