"""Randomized deep-queue equivalence sweeps for the batched backfill
passes (PR 9).

The whole-queue-slice rewrites in :mod:`repro.core.backfill` — the
EASY cumulative-sum screen and the conservative
:func:`repro.power.kernels.plan_conservative` pass with its cross-pass
profile cache — must be decision-for-decision identical to the seed
schedulers in :mod:`repro.core.reference_backfill`.  Hypothesis drives
randomized deep queues (hundreds of pending jobs, mixed moldable and
rigid, random running-set release profiles) through both and compares
start decisions, reservation sets and admit-call order.

The queues are built through a real :class:`JobQueue` so the sweeps
also exercise the JobTable gather that feeds ``ctx.pending_arrays``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, MachineSpec
from repro.core import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    JobQueue,
    SchedulingContext,
)
from repro.core.profile import FreeNodeProfile
from repro.core.reference_backfill import (
    ReferenceConservativeBackfillScheduler,
    ReferenceEasyBackfillScheduler,
)
from repro.core.scheduler import RunningJobInfo
from repro.power import kernels
from repro.workload import Job
from repro.workload.job import MoldableConfig

_NODES = 256

# Walltimes drawn from a small grid so release/end collisions (equal
# profile timestamps) are common — the merge paths differ most there.
_WALL_GRID = [300.0, 600.0, 900.0, 1800.0, 3600.0, 7200.0]


def _machine() -> Machine:
    return Machine(MachineSpec(name="sweep", nodes=_NODES, nodes_per_cabinet=32))


def _build_workload(seed: int, depth: int, busy_fraction: float):
    """A deep queue plus a running set on one machine, from one seed."""
    rng = np.random.default_rng(seed)
    machine = _machine()

    n_busy = int(_NODES * busy_fraction)
    running = []
    next_node = 0
    j = 0
    while next_node < n_busy:
        width = int(rng.integers(1, 33))
        ids = list(range(next_node, min(next_node + width, n_busy)))
        next_node += len(ids)
        job = Job(
            job_id=f"run{j}",
            nodes=len(ids),
            work_seconds=1e4,
            walltime_request=1e4,
            submit_time=0.0,
        )
        job.start(0.0, ids)
        for nid in ids:
            machine.node(nid).assign(job.job_id, 0.0)
        end = float(rng.choice(_WALL_GRID))
        running.append(RunningJobInfo(job, tuple(ids), end))
        j += 1

    queue = JobQueue()
    for i in range(depth):
        nodes = int(rng.integers(1, 65))
        wall = float(rng.choice(_WALL_GRID))
        moldable = ()
        if rng.random() < 0.3:
            moldable = (
                MoldableConfig(nodes=nodes, work_seconds=wall),
                MoldableConfig(nodes=max(1, nodes // 2), work_seconds=wall * 1.5),
            )
        queue.submit(
            Job(
                job_id=f"j{i:04d}",
                nodes=nodes,
                work_seconds=wall,
                walltime_request=wall,
                submit_time=float(i),
                priority=int(rng.integers(0, 4)),
                moldable=moldable,
            )
        )
    return machine, queue, running


def _ctx(machine, queue, running, now=0.0, arrays=True, admit=None):
    available = [n for n in machine.nodes if n.is_available]
    trivial = admit is None
    return SchedulingContext(
        now=now,
        machine=machine,
        pending=queue.pending(),
        available=available,
        running=list(running),
        admit=admit or (lambda job: True),
        usable_node_count=len(machine.nodes),
        trivial_admit=trivial,
        pending_arrays=queue.pending_arrays() if arrays else None,
    )


def _decision_key(decisions):
    return [(d.job.job_id, tuple(n.node_id for n in d.nodes)) for d in decisions]


class TestConservativeSweep:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           busy=st.floats(min_value=0.5, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_batched_matches_reference_decisions(self, seed, busy):
        machine, queue, running = _build_workload(seed, depth=500, busy_fraction=busy)
        fast = ConservativeBackfillScheduler()
        got = fast.schedule(_ctx(machine, queue, running))
        ref = ReferenceConservativeBackfillScheduler().schedule(
            _ctx(machine, queue, running, arrays=False)
        )
        assert _decision_key(got) == _decision_key(ref)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_reservation_sets_match_reference_path(self, seed):
        # Full-pass mode (no early stop) so every pending job plans a
        # reservation; the batched kernel must produce the same
        # (start, end, nodes) multiset as the reference loop.
        machine, queue, running = _build_workload(seed, depth=500, busy_fraction=0.9)
        fast = ConservativeBackfillScheduler()
        # Instance attributes shadow the class-level debug switches, so
        # nothing leaks into other tests.
        fast.stop_early = False
        fast.capture_reservations = True
        fast.schedule(_ctx(machine, queue, running))
        batched_resv = sorted(fast.last_reservations)
        fast.schedule(_ctx(machine, queue, running, arrays=False))
        reference_resv = sorted(fast.last_reservations)
        assert batched_resv == reference_resv

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_cache_hit_rounds_match_fresh_reference(self, seed):
        # Consecutive passes over a growing backlog with no starts in
        # between: the second and third pass take the cross-pass cache
        # path (catch-up from cache.planned) and must still match a
        # fresh reference scheduler run from scratch.
        machine, queue, running = _build_workload(seed, depth=300, busy_fraction=1.0)
        fast = ConservativeBackfillScheduler()
        rng = np.random.default_rng(seed + 1)
        for round_no, now in enumerate((0.0, 10.0, 20.0)):
            got = fast.schedule(_ctx(machine, queue, running, now=now))
            ref = ReferenceConservativeBackfillScheduler().schedule(
                _ctx(machine, queue, running, now=now, arrays=False)
            )
            assert _decision_key(got) == _decision_key(ref), f"round {round_no}"
            # Tail-append a few jobs; the monotone backlog keeps the
            # cached plan prefix valid for the catch-up path.
            for k in range(3):
                wall = float(rng.choice(_WALL_GRID))
                queue.submit(Job(
                    job_id=f"t{round_no}-{k}",
                    nodes=int(rng.integers(1, 65)),
                    work_seconds=wall,
                    walltime_request=wall,
                    submit_time=1e6 + round_no,
                ))

    def test_nontrivial_admit_routes_to_reference_path(self):
        # Any admission predicate must force the hook-visiting
        # reference path: admit() is consulted per job in queue order,
        # exactly as the seed scheduler does.
        machine, queue, running = _build_workload(3, depth=120, busy_fraction=0.8)
        calls_fast, calls_ref = [], []

        def admit_fast(job):
            calls_fast.append(job.job_id)
            return job.nodes % 7 != 0

        def admit_ref(job):
            calls_ref.append(job.job_id)
            return job.nodes % 7 != 0

        got = ConservativeBackfillScheduler().schedule(
            _ctx(machine, queue, running, admit=admit_fast)
        )
        ref = ReferenceConservativeBackfillScheduler().schedule(
            _ctx(machine, queue, running, arrays=False, admit=admit_ref)
        )
        assert _decision_key(got) == _decision_key(ref)
        assert calls_fast == calls_ref
        assert calls_fast  # the predicate was actually consulted


class TestEasySweep:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           busy=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=25, deadline=None)
    def test_batched_matches_reference_decisions(self, seed, busy):
        machine, queue, running = _build_workload(seed, depth=500, busy_fraction=busy)
        got = EasyBackfillScheduler().schedule(_ctx(machine, queue, running))
        ref = ReferenceEasyBackfillScheduler().schedule(
            _ctx(machine, queue, running, arrays=False)
        )
        assert _decision_key(got) == _decision_key(ref)

    def test_shallow_queue_uses_reference_loop(self):
        # Below the batching cutoff the plain loop runs even on a
        # trivial-admit context — same decisions either way, pinned
        # here so a cutoff regression is caught.
        machine, queue, running = _build_workload(11, depth=20, busy_fraction=0.5)
        got = EasyBackfillScheduler().schedule(_ctx(machine, queue, running))
        ref = ReferenceEasyBackfillScheduler().schedule(
            _ctx(machine, queue, running, arrays=False)
        )
        assert _decision_key(got) == _decision_key(ref)


# ----------------------------------------------------------------------
# plan_conservative kernel twins (py / np / nb)
# ----------------------------------------------------------------------
def _plan_inputs(seed, m=40, stop_early=True):
    rng = np.random.default_rng(seed)
    now = float(rng.uniform(0.0, 100.0))
    pool_free = int(rng.integers(0, 128))
    capacity = 256
    releases = sorted(
        (now + float(rng.choice(_WALL_GRID)), int(rng.integers(1, 32)))
        for _ in range(int(rng.integers(0, 12)))
    )
    profile = FreeNodeProfile.from_releases(now, pool_free, releases)
    times, free, n, monotone = profile.detach_arrays(extra=2 * m)
    nodes_req = rng.integers(1, 65, size=m).astype(np.int64)
    wall = rng.choice(_WALL_GRID, size=m).astype(np.float64)
    sfx_nodes = np.minimum.accumulate(nodes_req[::-1])[::-1].copy()
    sfx_wall = np.minimum.accumulate(wall[::-1])[::-1].copy()
    return dict(
        times=times, free=free, n=n, nodes_req=nodes_req, wall=wall,
        sfx_nodes=sfx_nodes, sfx_wall=sfx_wall, k0=0, now=now,
        pool_free=pool_free, capacity=capacity, monotone=monotone,
        stop_early=stop_early,
        starts_out=np.empty(m, dtype=np.int64),
        resv_out=np.empty((m, 3), dtype=np.float64),
    )


def _run_plan(fn, inp):
    inp = {k: (v.copy() if isinstance(v, np.ndarray) else v)
           for k, v in inp.items()}
    out = fn(**inp)
    n, planned, pool_free, minf, monotone, n_starts, n_resv = out
    return (
        planned, pool_free, minf, monotone,
        inp["times"][:n].tolist(), inp["free"][:n].tolist(),
        inp["starts_out"][:n_starts].tolist(),
        inp["resv_out"][:n_resv].tolist(),
    )


class TestPlanConservativeTwins:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("stop_early", [True, False])
    def test_np_matches_py(self, seed, stop_early):
        inp = _plan_inputs(seed, stop_early=stop_early)
        assert _run_plan(kernels.plan_conservative_np, inp) == \
            _run_plan(kernels.plan_conservative_py, inp)

    @pytest.mark.skipif(not kernels.HAVE_NUMBA, reason="numba unavailable")
    @pytest.mark.parametrize("seed", range(5))
    def test_nb_matches_np(self, seed):
        inp = _plan_inputs(seed)
        nb = {k: (v.copy() if isinstance(v, np.ndarray) else v)
              for k, v in inp.items()}
        got_np = _run_plan(kernels.plan_conservative_np, inp)
        out = kernels._plan_conservative_nb(
            nb["times"], nb["free"], nb["n"], nb["nodes_req"], nb["wall"],
            nb["sfx_nodes"], nb["sfx_wall"], nb["k0"], nb["now"],
            nb["pool_free"], nb["capacity"], nb["monotone"], nb["stop_early"],
            nb["starts_out"], nb["resv_out"],
        )
        n, planned, pool_free, minf, monotone, n_starts, n_resv = out
        got_nb = (
            int(planned), int(pool_free), float(minf), bool(monotone),
            nb["times"][:n].tolist(), nb["free"][:n].tolist(),
            nb["starts_out"][:n_starts].tolist(),
            nb["resv_out"][:n_resv].tolist(),
        )
        assert got_nb == got_np
