"""Registry of the nine executable center scenarios.

Maps survey slugs to scenario builders, so benches and examples can
iterate the capability matrix and *run* it.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import SurveyError
from ..units import DAY
from .base import CenterBuild
from . import cea, cineca, jcahpc, kaust, lrz, riken, stfc, tokyotech, trinity

#: slug -> builder.  Signature: (seed, duration, **kwargs) -> CenterBuild.
CENTER_BUILDERS: Dict[str, Callable[..., CenterBuild]] = {
    "riken": riken.build_simulation,
    "tokyotech": tokyotech.build_simulation,
    "cea": cea.build_simulation,
    "kaust": kaust.build_simulation,
    "lrz": lrz.build_simulation,
    "stfc": stfc.build_simulation,
    "trinity": trinity.build_simulation,
    "cineca": cineca.build_simulation,
    "jcahpc": jcahpc.build_simulation,
}


def center_slugs() -> List[str]:
    """All registered center slugs, survey-table order."""
    return list(CENTER_BUILDERS)


def build_center_simulation(
    slug: str, seed: int = 0, duration: float = 2.0 * DAY, **kwargs
) -> CenterBuild:
    """Build one center's scenario by slug."""
    try:
        builder = CENTER_BUILDERS[slug]
    except KeyError:
        raise SurveyError(
            f"unknown center {slug!r}; known: {center_slugs()}"
        ) from None
    return builder(seed=seed, duration=duration, **kwargs)
