"""Property-based tests: workload generation, SWF roundtrip and
whole-simulation conservation invariants."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, MachineSpec, NodeState
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.simulator import RngStreams
from repro.units import HOUR
from repro.workload import (
    WorkloadGenerator,
    WorkloadSpec,
    read_swf,
)
from repro.workload.swf import roundtrip_string

spec_strategy = st.builds(
    WorkloadSpec,
    arrival_rate=st.floats(min_value=1e-4, max_value=0.1),
    duration=st.floats(min_value=3600.0, max_value=48 * 3600.0),
    min_nodes=st.just(1),
    max_nodes=st.sampled_from([4, 16, 64, 256]),
    capability_fraction=st.floats(min_value=0.0, max_value=1.0),
    mean_work=st.floats(min_value=60.0, max_value=8 * 3600.0),
    work_sigma=st.floats(min_value=0.1, max_value=2.0),
    overestimate_mean=st.floats(min_value=1.0, max_value=5.0),
    moldable_fraction=st.floats(min_value=0.0, max_value=1.0),
)


class TestWorkloadProperties:
    @given(spec_strategy, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_generated_jobs_satisfy_invariants(self, spec, seed):
        rng = RngStreams(seed).stream("wl")
        jobs = WorkloadGenerator(spec, rng).generate(count=30)
        assert len(jobs) == 30
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)
        ids = [j.job_id for j in jobs]
        assert len(set(ids)) == 30
        for job in jobs:
            assert spec.min_nodes <= job.nodes <= spec.max_nodes
            assert job.work_seconds > 0
            assert job.walltime_request >= job.work_seconds
            for cfg in job.moldable:
                assert cfg.nodes >= 1
                assert cfg.work_seconds > 0

    @given(spec_strategy, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_swf_roundtrip_preserves_submission_fields(self, spec, seed):
        rng = RngStreams(seed).stream("wl")
        jobs = WorkloadGenerator(spec, rng).generate(count=10)
        # Complete them so SWF has run fields.
        for job in jobs:
            job.start(job.submit_time, list(range(job.nodes)))
            job.complete(job.start_time + job.work_seconds)
        text = roundtrip_string(jobs)
        back = read_swf(io.StringIO(text))
        assert len(back) == len(jobs)
        for original, parsed in zip(jobs, back):
            assert parsed.nodes == original.nodes
            assert parsed.submit_time == float(int(original.submit_time))
            assert abs(parsed.work_seconds - original.work_seconds) <= 1.0


class TestSimulationConservation:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_every_job_reaches_terminal_state(self, seed):
        machine = Machine(MachineSpec(name="m", nodes=8))
        spec = WorkloadSpec(arrival_rate=20.0 / HOUR, duration=4 * HOUR,
                            max_nodes=8, mean_work=HOUR / 4)
        jobs = WorkloadGenerator(spec, RngStreams(seed).stream("wl")).generate(
            count=25
        )
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                seed=seed)
        result = sim.run()
        assert all(j.is_terminal for j in jobs)
        m = result.metrics
        assert (m.jobs_completed + m.jobs_killed + m.jobs_timed_out
                == m.jobs_submitted)
        # All nodes returned to idle.
        assert all(n.state is NodeState.IDLE for n in machine.nodes)
        # Energy is positive and utilization within physical bounds.
        assert m.total_energy_joules > 0
        assert 0.0 <= m.utilization <= 1.0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_no_node_ever_double_booked(self, seed):
        machine = Machine(MachineSpec(name="m", nodes=8))
        spec = WorkloadSpec(arrival_rate=40.0 / HOUR, duration=2 * HOUR,
                            max_nodes=4, mean_work=HOUR / 6)
        jobs = WorkloadGenerator(spec, RngStreams(seed).stream("wl")).generate(
            count=20
        )
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                seed=seed)
        sim.run()
        # Reconstruct per-node occupancy intervals from job records.
        intervals = {}
        for job in jobs:
            if job.start_time is None:
                continue
            for nid in job.assigned_nodes:
                intervals.setdefault(nid, []).append(
                    (job.start_time, job.end_time)
                )
        for nid, spans in intervals.items():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2 + 1e-9, f"node {nid} double-booked"

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_energy_consistent_with_meter(self, seed):
        machine = Machine(MachineSpec(name="m", nodes=8))
        spec = WorkloadSpec(arrival_rate=20.0 / HOUR, duration=2 * HOUR,
                            max_nodes=8, mean_work=HOUR / 4)
        jobs = WorkloadGenerator(spec, RngStreams(seed).stream("wl")).generate(
            count=15
        )
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                seed=seed, sample_interval=30.0)
        result = sim.run()
        # Job-accounted energy can never exceed machine-metered energy
        # (the meter also sees idle draw).
        job_energy = sum(j.energy_joules for j in jobs)
        assert job_energy <= result.meter.energy_joules * 1.02
