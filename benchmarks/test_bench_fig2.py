"""Experiment ``fig2``: the geographic map of participating centers.

Figure 2 maps the nine centers; Section III: "These span the
geographic regions of Asia, Europe and the United States" (plus KAUST
in the Middle East).  The bench regenerates the map data, the regional
distribution and an ASCII rendering.
"""

from __future__ import annotations

from repro.survey import map_points, regional_distribution
from repro.survey.geography import ascii_map, countries

from .conftest import write_artifact


def test_bench_fig2_distribution(benchmark, artifact_dir):
    dist = benchmark(regional_distribution)
    art = [
        "FIGURE 2 — Geographic distribution of the participating centers",
        "",
    ]
    for region, count in sorted(dist.items()):
        art.append(f"  {region:15s}: {count}")
    art.append("")
    art.append(ascii_map())
    write_artifact("fig2", "\n".join(art))

    # Shape claims: nine centers, four regions, Japan the largest host.
    assert sum(dist.values()) == 9
    assert dist == {"Asia": 3, "Europe": 4, "Middle East": 1,
                    "North America": 1}
    assert countries()["Japan"] == 3


def test_bench_fig2_map_points(benchmark):
    points = benchmark(map_points)
    assert len(points) == 9
    # Sanity of coordinates: RIKEN in Japan's longitude band, Trinity
    # in the US West.
    by_slug = {p.slug: p for p in points}
    assert 125.0 < by_slug["riken"].longitude < 150.0
    assert -120.0 < by_slug["trinity"].longitude < -100.0
