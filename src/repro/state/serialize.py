"""Compact, versioned serialization of :class:`SimState`.

Container layout (``RPST`` format)::

    b"RPST" | u32 header_length (little-endian) | JSON header | raw array payload

The JSON header carries the schema version, the repro package version,
a sha256 content hash, an array directory (dtype/shape/offset per
array) and the state tree with ``{"__nd__": i}`` placeholders where
numpy arrays sit.  Array payloads are concatenated raw C-order bytes —
no pickling anywhere, so checkpoints are safe to load from untrusted
paths and stable across Python versions.

The encoding is canonical (sorted JSON keys, sorted set elements,
order-preserving pair lists for tuples and non-string-keyed dicts), so
equal states produce identical bytes and the content hash doubles as a
state fingerprint.

Only JSON-able scalars, lists, tuples, sets, dicts and numpy arrays may
appear in the tree; the capture layer encodes object references as
plain ``{"$...": ...}`` marker dicts *before* serialization, so this
module never needs to know about simulation objects.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from ..errors import StateError

MAGIC = b"RPST"
#: Bump on any incompatible change to the capture tree layout.
#: 2: periodic-chain descriptions carry the phase-locked grid
#: (``epoch``/``index``); v1 checkpoints would silently re-anchor
#: restored chains off-grid, breaking replay identity.
#: 3: vector-backend execution membership is SoA (``exec_slot`` rows
#: rebuilt from the executions section; per-node ``running_job`` is
#: None on that backend), so v2 vector checkpoints — whose node
#: states carry job ids the restore path would re-stamp — are
#: rejected instead of silently diverging.
#: 4: the queue section is a dict (``jobs`` + ``table_live``) and the
#: restore path rebuilds the queue's SoA JobTable through the same
#: hooks submissions use; v3 restores grafted ``_jobs`` directly,
#: which would leave the mirror empty and every batched scheduler
#: pass blind to the restored backlog.
#: 5: policy/component capture gained ``__repro_getstate__`` hooks
#: for nested-dataclass state (energy reports, tag
#: characterizations, admin scripts, learned predictors) and a
#: ``components`` section for attached auxiliaries (telemetry
#: samplers); v4 snapshots silently dropped that state on restore,
#: which diverged replay for five of the nine center scenarios.
STATE_SCHEMA_VERSION = 5


@dataclass
class SimState:
    """An in-memory snapshot of one :class:`ClusterSimulation`.

    ``data`` is a plain tree (dicts/lists/tuples/sets/scalars/numpy
    arrays plus ``$``-marker reference dicts) — fully decoupled from
    the live simulation it was captured from.
    """

    schema: int
    repro_version: str
    data: Dict[str, Any]


# ----------------------------------------------------------------------
# Tree encoding
# ----------------------------------------------------------------------
def _encode(value: Any, arrays: List[np.ndarray], path: str) -> Any:
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    # json round-trips python floats exactly (repr shortest-round-trip;
    # inf/nan use the python-json Infinity/NaN literals).
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        arrays.append(np.ascontiguousarray(value))
        return {"__nd__": len(arrays) - 1}
    if isinstance(value, list):
        return [_encode(v, arrays, path) for v in value]
    if isinstance(value, tuple):
        return {"__t__": [_encode(v, arrays, path) for v in value]}
    if isinstance(value, (set, frozenset)):
        return {"__s__": [_encode(v, arrays, path)
                          for v in sorted(value, key=repr)]}
    if isinstance(value, dict):
        if all(isinstance(k, str) and not k.startswith("__") for k in value):
            # Sorted walk: array payload order must match the sorted
            # JSON key order so equal states serialize to equal bytes
            # regardless of in-memory dict insertion order.
            return {k: _encode(value[k], arrays, f"{path}.{k}")
                    for k in sorted(value)}
        # Non-string (or marker-colliding) keys: order-preserving pairs.
        return {"__kv__": [[_encode(k, arrays, path), _encode(v, arrays, path)]
                           for k, v in value.items()]}
    raise StateError(
        f"cannot serialize {type(value).__name__} at {path!r}; the capture "
        f"layer must encode object references before serialization"
    )


def _decode(value: Any, arrays: List[np.ndarray]) -> Any:
    if isinstance(value, list):
        return [_decode(v, arrays) for v in value]
    if isinstance(value, dict):
        if len(value) == 1:
            if "__nd__" in value:
                return arrays[value["__nd__"]]
            if "__t__" in value:
                return tuple(_decode(v, arrays) for v in value["__t__"])
            if "__s__" in value:
                return set(_decode(v, arrays) for v in value["__s__"])
            if "__kv__" in value:
                return {_decode(k, arrays): _decode(v, arrays)
                        for k, v in value["__kv__"]}
        return {k: _decode(v, arrays) for k, v in value.items()}
    return value


# ----------------------------------------------------------------------
# Container
# ----------------------------------------------------------------------
def _dump_header(header: Dict[str, Any]) -> bytes:
    return json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")


def to_bytes(state: SimState) -> bytes:
    """Serialize *state* into the self-contained ``RPST`` container."""
    arrays: List[np.ndarray] = []
    tree = _encode(state.data, arrays, "data")
    directory = []
    offset = 0
    chunks = []
    for arr in arrays:
        raw = arr.tobytes()
        directory.append({
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": len(raw),
        })
        offset += len(raw)
        chunks.append(raw)
    payload = b"".join(chunks)
    header = {
        "schema": int(state.schema),
        "repro_version": state.repro_version,
        "content_hash": "",
        "arrays": directory,
        "data": tree,
    }
    digest = hashlib.sha256(_dump_header(header) + payload).hexdigest()
    header["content_hash"] = digest
    hbytes = _dump_header(header)
    return MAGIC + len(hbytes).to_bytes(4, "little") + hbytes + payload


def from_bytes(blob: bytes) -> SimState:
    """Parse an ``RPST`` container, verifying magic, schema and hash."""
    if len(blob) < 8 or blob[:4] != MAGIC:
        raise StateError("not an RPST checkpoint (bad magic)")
    hlen = int.from_bytes(blob[4:8], "little")
    if len(blob) < 8 + hlen:
        raise StateError("truncated RPST checkpoint (header)")
    try:
        header = json.loads(blob[8:8 + hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StateError(f"corrupt RPST header: {exc}") from exc
    schema = header.get("schema")
    if schema != STATE_SCHEMA_VERSION:
        raise StateError(
            f"checkpoint schema {schema} is not supported "
            f"(this build reads schema {STATE_SCHEMA_VERSION})"
        )
    payload = blob[8 + hlen:]
    expected = header.get("content_hash", "")
    check = dict(header)
    check["content_hash"] = ""
    actual = hashlib.sha256(_dump_header(check) + payload).hexdigest()
    if actual != expected:
        raise StateError("RPST content hash mismatch (corrupt checkpoint)")
    arrays: List[np.ndarray] = []
    for entry in header["arrays"]:
        start, nbytes = entry["offset"], entry["nbytes"]
        if start + nbytes > len(payload):
            raise StateError("truncated RPST checkpoint (payload)")
        arr = np.frombuffer(
            payload[start:start + nbytes], dtype=np.dtype(entry["dtype"])
        ).reshape(entry["shape"]).copy()
        arrays.append(arr)
    data = _decode(header["data"], arrays)
    return SimState(schema=schema, repro_version=header["repro_version"], data=data)


def state_digest(state: SimState) -> str:
    """Canonical sha256 fingerprint of *state* (the content hash of its
    serialized form)."""
    blob = to_bytes(state)
    hlen = int.from_bytes(blob[4:8], "little")
    header = json.loads(blob[8:8 + hlen].decode("utf-8"))
    return header["content_hash"]


def save_state(path: str, state: SimState) -> str:
    """Atomically write *state* to *path* (tmp file + rename)."""
    blob = to_bytes(state)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_state(path: str) -> SimState:
    """Read and verify a checkpoint written by :func:`save_state`."""
    with open(path, "rb") as fh:
        return from_bytes(fh.read())
