#!/usr/bin/env python
"""Federated nine-center campaign under the global grid/market broker.

The survey's nine centers run concurrently as sites of one fleet for a
simulated day, coordinating every six hours: each site reports power,
queue backlog and budget headroom; the broker prices every region's
next window (time-of-use tariff + carbon, timezone-shifted) and
water-fills a fleet power budget where electricity is cheap and clean.
The same campaign is then re-run broker-off — identical policy stacks,
infinite budgets — so the printed delta measures *coordination*, not
configuration.  A retained snapshot finally answers a what-if: what
would one site's next epoch cost under half its granted budget?

Run:  python examples/federation_campaign.py
(takes a few minutes: 9 sites x 1 day, two campaigns)
"""

from repro.centers import CENTER_MARKETS
from repro.federation import FederationCampaign, GlobalBroker, SiteConfig
from repro.units import DAY, HOUR


def run_campaign(label, broker, retain=False):
    sites = [
        SiteConfig(slug=slug, seed=1, horizon=1.0 * DAY)
        for slug in CENTER_MARKETS
    ]
    campaign = FederationCampaign(
        sites=sites,
        broker=broker,
        horizon=1.0 * DAY,
        epoch_seconds=6.0 * HOUR,
        workers=2,
        retain_snapshots=retain,
    )
    result = campaign.run()
    summary = result.summary()
    print(f"{label:>11}: cost {summary['cost']:8.2f}"
          f"   carbon {summary['carbon_kg']:8.1f} kg"
          f"   slowdown {summary['mean_bounded_slowdown']:6.2f}"
          f"   jobs {int(summary['completed_jobs'])}")
    return campaign, result


def main() -> None:
    broker = GlobalBroker(
        CENTER_MARKETS, budget_fraction=0.7, carbon_weight=0.1
    )
    campaign, coordinated = run_campaign("broker-on", broker, retain=True)
    _, baseline = run_campaign("broker-off", None)

    saved = baseline.total_cost() - coordinated.total_cost()
    print(f"\ncoordination saved {saved:.2f} "
          f"({saved / baseline.total_cost():.1%} of the electricity bill)")

    print("\nepoch-1 budget grants (watts), cheapest effective region first:")
    alloc = broker.history[0]
    for slug in sorted(alloc.grants, key=lambda s: alloc.effective_prices[s]):
        print(f"  {slug:>10}: {alloc.grants[slug]:9.0f} W"
              f"   at {alloc.effective_prices[slug]:.3f}/kWh effective")

    # What-if fork: replay cineca's second epoch from the retained
    # snapshot under half the granted budget — the primary campaign
    # state is untouched.
    half = alloc.grants["cineca"] / 2
    fork = campaign.fork_site("cineca", 0, budget_watts=half)
    primary = coordinated.reports["cineca"][1]
    print(f"\nwhat-if (cineca epoch 1 at {half:.0f} W):"
          f" backlog {fork.backlog_jobs} jobs vs {primary.backlog_jobs}"
          f" in the primary run")


if __name__ == "__main__":
    main()
