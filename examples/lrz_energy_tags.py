#!/usr/bin/env python
"""LRZ's production deployment: energy tags and goal selection.

Table I: new applications are characterized on first run for
"frequency, runtime and energy"; the administrator then selects the
scheduling goal — "energy to solution or best performance".  This
example runs the same tagged workload under both goals (plus EDP) and
prints the per-tag chosen frequencies and the energy/time trade.

Run:  python examples/lrz_energy_tags.py
"""

import copy

from repro.centers.base import standard_machine
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import EnergyTagPolicy, SchedulingGoal
from repro.simulator import RngStreams
from repro.units import HOUR, joules_to_mwh
from repro.workload import WorkloadGenerator, WorkloadSpec


def main() -> None:
    spec = WorkloadSpec(arrival_rate=40.0 / HOUR, duration=10 * HOUR,
                        max_nodes=16, mean_work=0.5 * HOUR)
    base_jobs = WorkloadGenerator(
        spec, RngStreams(21).stream("lrz")
    ).generate(count=120)

    results = {}
    policies = {}
    for goal in SchedulingGoal:
        machine = standard_machine("supermuc", nodes=64, idle_power=95.0,
                                   max_power=340.0, seed=21)
        policy = EnergyTagPolicy(goal=goal)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                                copy.deepcopy(base_jobs),
                                policies=[policy], seed=21)
        results[goal] = sim.run().metrics
        policies[goal] = policy

    print("goal comparison on the same 120-job tagged workload:\n")
    print(f"{'goal':24s} {'energy [MWh]':>13s} {'makespan [h]':>13s} "
          f"{'completed':>10s}")
    for goal, m in results.items():
        print(f"{goal.value:24s} "
              f"{joules_to_mwh(m.total_energy_joules):13.3f} "
              f"{m.makespan / 3600:13.2f} {m.jobs_completed:10d}")

    perf = results[SchedulingGoal.BEST_PERFORMANCE]
    energy = results[SchedulingGoal.ENERGY_TO_SOLUTION]
    saving = 1 - energy.total_energy_joules / perf.total_energy_joules
    stretch = energy.makespan / perf.makespan - 1
    print(f"\nenergy-to-solution saves {saving:.1%} energy for "
          f"{stretch:+.1%} makespan (Auweter et al. report ~6-8% on "
          f"SuperMUC)")

    policy = policies[SchedulingGoal.ENERGY_TO_SOLUTION]
    print("\nper-tag characterization (energy-to-solution goal):")
    shown = 0
    for tag in policy.characterized_tags:
        known = policy.characterizations[tag]
        if known.chosen_frequency is None or shown >= 8:
            continue
        print(f"  {tag:24s} sensitivity {known.sensitivity:.2f} -> "
              f"{known.chosen_frequency / 1e9:.2f} GHz "
              f"({known.runs} runs)")
        shown += 1


if __name__ == "__main__":
    main()
