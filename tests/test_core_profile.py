"""FreeNodeProfile unit tests + scheduler equivalence property tests.

The profile-based EASY/conservative schedulers must return exactly the
decisions of the seed implementations preserved in
``repro.core.reference_backfill`` — same jobs, same nodes, same order,
and the same admission-predicate call sequence.  The property tests
below drive both through hundreds of randomized scheduling contexts
(mixed running/pending jobs, stale release estimates, duplicate
release times, admission vetoes, boot-limited capacity) and compare
decision for decision.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    SchedulingContext,
)
from repro.core.profile import FreeNodeProfile
from repro.core.reference_backfill import (
    ReferenceConservativeBackfillScheduler,
    ReferenceEasyBackfillScheduler,
)
from repro.core.scheduler import RunningJobInfo
from repro.cluster import Machine, MachineSpec
from repro.errors import SchedulingError
from tests.conftest import make_job


# ----------------------------------------------------------------------
# FreeNodeProfile unit tests
# ----------------------------------------------------------------------
class TestFreeNodeProfile:
    def test_empty_profile_is_flat(self):
        p = FreeNodeProfile.from_releases(0.0, 7, [])
        assert p.free_at(0.0) == 7
        assert p.free_at(1e9) == 7
        assert p.tail_time == 0.0
        assert len(p) == 1
        assert p.earliest_fit(7, 100.0) == 0.0
        assert p.earliest_fit(8, 100.0) is None

    def test_releases_fold_at_or_before_origin(self):
        # Stale estimates (time <= origin) raise the base count, like
        # the seed's free_at() summing every delta with time <= t.
        p = FreeNodeProfile.from_releases(100.0, 2, [(50.0, 3), (100.0, 1), (200.0, 4)])
        assert p.free_at(100.0) == 6
        assert p.free_at(199.9) == 6
        assert p.free_at(200.0) == 10
        assert len(p) == 2

    def test_duplicate_release_times_consolidate(self):
        p = FreeNodeProfile.from_releases(0.0, 0, [(10.0, 2), (10.0, 3), (20.0, 1)])
        assert len(p) == 3  # origin, 10, 20
        assert p.free_at(10.0) == 5
        assert p.free_at(20.0) == 6

    def test_negative_release_guard(self):
        with pytest.raises(SchedulingError):
            FreeNodeProfile.from_releases(0.0, 4, [(10.0, -2)])
        p = FreeNodeProfile(0.0, 4)
        with pytest.raises(SchedulingError):
            p.add_release(10.0, -1)

    def test_reserve_count_guard(self):
        p = FreeNodeProfile(0.0, 4)
        with pytest.raises(SchedulingError):
            p.reserve(0.0, 10.0, 0)
        with pytest.raises(SchedulingError):
            p.reserve(0.0, 10.0, -3)
        with pytest.raises(SchedulingError):
            p.reserve(-5.0, 10.0, 1)  # before origin

    def test_reserve_subtracts_over_window_only(self):
        p = FreeNodeProfile.from_releases(0.0, 4, [(100.0, 4)])
        p.reserve(10.0, 50.0, 3)
        assert p.free_at(0.0) == 4
        assert p.free_at(10.0) == 1
        assert p.free_at(49.9) == 1
        assert p.free_at(50.0) == 4
        assert p.free_at(100.0) == 8

    def test_tail_reservation_extends_profile(self):
        # Reserving past the last breakpoint splits the constant tail.
        p = FreeNodeProfile.from_releases(0.0, 2, [(10.0, 6)])
        p.reserve(500.0, 900.0, 5)
        assert p.free_at(499.0) == 8
        assert p.free_at(500.0) == 3
        assert p.free_at(899.0) == 3
        assert p.free_at(900.0) == 8
        assert p.tail_time == 900.0

    def test_earliest_fit_monotone_binary_search(self):
        p = FreeNodeProfile.from_releases(0.0, 1, [(10.0, 2), (30.0, 4)])
        assert p.earliest_fit(1, 100.0) == 0.0
        assert p.earliest_fit(3, 100.0) == 10.0
        assert p.earliest_fit(7, 100.0) == 30.0
        assert p.earliest_fit(8, 100.0) is None

    def test_earliest_fit_skips_too_short_gaps(self):
        # 5 free only during [10, 40): a 50s job must wait until the
        # reservation ends, a 20s job fits in the gap.
        p = FreeNodeProfile(0.0, 5)
        p.reserve(0.0, 10.0, 3)
        p.reserve(40.0, 90.0, 2)
        assert p.earliest_fit(5, 20.0) == 10.0
        assert p.earliest_fit(5, 50.0) == 90.0
        assert p.earliest_fit(4, 1000.0) == 90.0

    def test_earliest_at_least_requires_monotone(self):
        p = FreeNodeProfile(0.0, 5)
        p.reserve(10.0, 20.0, 2)
        with pytest.raises(SchedulingError):
            p.earliest_at_least(5, 0.0)

    def test_earliest_at_least_reports_stale_breakpoints(self):
        # With origin -inf, a release before "now" stays an explicit
        # breakpoint and earliest_at_least may return a past time —
        # the EASY shadow computation compares against it verbatim.
        p = FreeNodeProfile.from_releases(float("-inf"), 2, [(50.0, 4)])
        assert p.earliest_at_least(6, 100.0) == 50.0
        assert p.earliest_at_least(2, 100.0) == 100.0
        assert p.earliest_at_least(7, 100.0) is None


# ----------------------------------------------------------------------
# EASY phase-2 merged-profile regression (duplicate release times)
# ----------------------------------------------------------------------
class TestEasyMergedProfileShadow:
    """Pin the shadow time when a phase-1 grant's release coincides
    with a running job's release: both deltas must merge into one
    breakpoint, giving shadow = that time exactly."""

    def _machine(self):
        return Machine(MachineSpec(name="tiny", nodes=16, nodes_per_cabinet=4))

    def _ctx(self, machine, pending, running):
        available = [n for n in machine.nodes if n.is_available]
        return SchedulingContext(
            now=0.0,
            machine=machine,
            pending=pending,
            available=available,
            running=running,
            admit=lambda job: True,
            usable_node_count=len(machine.nodes),
        )

    def _running(self, machine, node_ids, end):
        job = make_job(job_id="r0", nodes=len(node_ids), work=end, walltime=end)
        job.start(0.0, list(node_ids))
        for nid in node_ids:
            machine.node(nid).assign("r0", 0.0)
        return RunningJobInfo(job, tuple(node_ids), end)

    def test_filler_ending_at_merged_shadow_starts(self):
        machine = self._machine()
        running = self._running(machine, list(range(10)), end=1000.0)
        pending = [
            # Starts in phase 1; its release (t=1000) duplicates the
            # running job's release time in the merged profile.
            make_job(job_id="j0", nodes=2, walltime=1000.0),
            # Head needs the whole machine: shadow is the single merged
            # breakpoint t=1000 where 4 + 10 + 2 = 16 nodes free.
            make_job(job_id="head", nodes=16, walltime=500.0),
            # Ends exactly at the shadow: allowed.
            make_job(job_id="filler", nodes=4, walltime=1000.0),
        ]
        decisions = EasyBackfillScheduler().schedule(
            self._ctx(machine, pending, [running])
        )
        assert [d.job.job_id for d in decisions] == ["j0", "filler"]

    def test_filler_straddling_merged_shadow_blocked(self):
        machine = self._machine()
        running = self._running(machine, list(range(10)), end=1000.0)
        pending = [
            make_job(job_id="j0", nodes=2, walltime=1000.0),
            make_job(job_id="head", nodes=16, walltime=500.0),
            # One second past the shadow, and spare is 16-16=0: blocked.
            make_job(job_id="straddler", nodes=4, walltime=1001.0),
        ]
        decisions = EasyBackfillScheduler().schedule(
            self._ctx(machine, pending, [running])
        )
        assert [d.job.job_id for d in decisions] == ["j0"]


# ----------------------------------------------------------------------
# Property-based equivalence: profile schedulers vs seed references
# ----------------------------------------------------------------------
def _random_context(rng: random.Random, machine: Machine, veto_log: list):
    """Randomized SchedulingContext exercising the documented hazards:
    stale release estimates (< now), duplicate release times, admission
    vetoes, oversized jobs, and boot-limited capacity where
    usable_node_count exceeds len(available)."""
    n_nodes = len(machine.nodes)
    now = rng.choice([0.0, 100.0, 1234.5])

    n_busy = rng.randint(0, n_nodes - 1)
    busy_ids = rng.sample(range(n_nodes), n_busy)
    running = []
    i = 0
    while i < len(busy_ids):
        k = min(rng.randint(1, 6), len(busy_ids) - i)
        ids = tuple(busy_ids[i : i + k])
        i += k
        # Small offset palette to force duplicate release times; a
        # negative offset models a stale walltime estimate already
        # exceeded (job still running past its expected end).
        end = now + rng.choice([-50.0, 10.0, 60.0, 60.0, 120.0, 300.0, 900.0])
        job = make_job(job_id=f"r{i}", nodes=k, work=100.0, walltime=1000.0)
        running.append(RunningJobInfo(job, ids, end))

    busy = set(busy_ids)
    available = [n for n in machine.nodes if n.node_id not in busy]

    pending = []
    for j in range(rng.randint(1, 20)):
        nodes = rng.randint(1, n_nodes + 2)  # occasionally impossible
        wall = rng.choice([30.0, 60.0, 60.0, 110.0, 240.0, 600.0])
        pending.append(
            make_job(job_id=f"p{j}", nodes=nodes, work=wall, walltime=wall)
        )

    vetoed = set(
        rng.sample([j.job_id for j in pending], rng.randint(0, len(pending) // 2))
    )

    def admit(job):
        veto_log.append(job.job_id)
        return job.job_id not in vetoed

    usable = rng.choice(
        [n_nodes, n_nodes, n_nodes + 4, max(len(available) - 2, 1)]
    )
    return SchedulingContext(
        now=now,
        machine=machine,
        pending=pending,
        available=available,
        running=running,
        admit=admit,
        usable_node_count=usable,
    )


def _decision_key(decisions):
    return [
        (d.job.job_id, tuple(n.node_id for n in d.nodes)) for d in decisions
    ]


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize(
    "fast_cls,ref_cls",
    [
        (EasyBackfillScheduler, ReferenceEasyBackfillScheduler),
        (ConservativeBackfillScheduler, ReferenceConservativeBackfillScheduler),
    ],
    ids=["easy", "conservative"],
)
def test_profile_scheduler_matches_reference(seed, fast_cls, ref_cls):
    rng = random.Random(9000 + seed)
    for trial in range(25):
        machine = Machine(
            MachineSpec(
                name="prop",
                nodes=rng.choice([8, 16, 24, 48]),
                nodes_per_cabinet=4,
            )
        )
        admit_log: list = []
        ctx = _random_context(rng, machine, admit_log)
        fast = _decision_key(fast_cls().schedule(ctx))
        split = len(admit_log)
        ref = _decision_key(ref_cls().schedule(ctx))
        assert fast == ref, f"seed={seed} trial={trial}: {fast} != {ref}"
        # Admission predicate consulted for the same jobs in the same
        # order by both implementations.
        assert admit_log[:split] == admit_log[split:], (
            f"seed={seed} trial={trial}: admit() call sequences differ"
        )
