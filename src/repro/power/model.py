"""Node power/performance model.

The standard first-order model used throughout the power-aware
scheduling literature the survey cites (Etinski, Sarood, Patki,
Ellsworth):

* power splits into a static part (idle) and a dynamic part that
  scales with utilization and with frequency as ``(f/f_max)^alpha``
  (``alpha ~ 2`` captures voltage scaling with frequency);
* application speed scales with frequency according to a per-phase
  *frequency sensitivity* ``s`` in [0, 1]:
  ``speed = 1 - s·(1 - f/f_max)`` — compute-bound code (s=1) slows
  proportionally, memory/IO-bound code (s~0.2) barely notices
  (Freeh et al., cited as [21]).

Power capping is modeled as what the hardware actually does: clamp the
effective frequency to the highest value whose predicted power meets
the cap.  If even the minimum frequency exceeds the cap (e.g. cap near
idle power), the model reports the physical power — i.e. a *cap
violation* — which is exactly the condition emergency policies
(RIKEN's automated job killing) exist to handle.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.node import Node, NodeState
from ..errors import ConfigurationError
from ..units import check_fraction, check_positive


@dataclass(frozen=True)
class PowerSample:
    """Instantaneous operating point of one node.

    Attributes
    ----------
    watts:
        Predicted power draw.
    frequency_ratio:
        Effective frequency as a fraction of f_max after DVFS setting
        and cap clamping.
    speed:
        Relative execution speed in (0, 1] for the running phase.
    cap_violated:
        True when the cap could not be met even at minimum frequency.
    """

    watts: float
    frequency_ratio: float
    speed: float
    cap_violated: bool = False


class NodePowerModel:
    """Maps node state + workload intensity to power and speed.

    Parameters
    ----------
    alpha:
        Exponent of the dynamic-power/frequency curve; 2.0 by default.
    boot_power_fraction:
        Power during BOOTING as a fraction of max power (boot storms
        are a real constraint on Tokyo-Tech-style dynamic provisioning).
    shutdown_power_fraction:
        Power during SHUTTING_DOWN as a fraction of idle power.
    """

    def __init__(
        self,
        alpha: float = 2.0,
        boot_power_fraction: float = 0.6,
        shutdown_power_fraction: float = 1.0,
    ) -> None:
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {alpha}")
        self.alpha = float(alpha)
        self.boot_power_fraction = check_fraction(
            "boot_power_fraction", boot_power_fraction
        )
        self.shutdown_power_fraction = check_positive(
            "shutdown_power_fraction", shutdown_power_fraction
        )

    # ------------------------------------------------------------------
    def _dynamic_range(self, node: Node) -> float:
        """Variability-adjusted dynamic power span (max - idle), watts."""
        return (node.max_power - node.idle_power) * node.variability

    def operating_point(
        self,
        node: Node,
        utilization: float = 1.0,
        sensitivity: float = 1.0,
    ) -> PowerSample:
        """Compute the node's power and speed at its current settings.

        Parameters
        ----------
        utilization:
            Fraction of the node's compute capacity the running job
            exercises (job power intensity), in [0, 1].
        sensitivity:
            Frequency sensitivity of the running phase, in [0, 1].
        """
        state = node.state
        if state in (NodeState.OFF, NodeState.DOWN):
            return PowerSample(node.off_power, 0.0, 0.0)
        if state is NodeState.BOOTING:
            return PowerSample(
                node.off_power + self.boot_power_fraction * node.effective_max_power,
                0.0,
                0.0,
            )
        if state is NodeState.SHUTTING_DOWN:
            return PowerSample(node.idle_power * self.shutdown_power_fraction, 0.0, 0.0)
        if state is NodeState.IDLE:
            watts = node.idle_power
            if node.power_cap is not None and watts > node.power_cap:
                return PowerSample(watts, 1.0, 0.0, cap_violated=True)
            return PowerSample(watts, node.frequency / node.max_frequency, 0.0)

        # BUSY ----------------------------------------------------------
        utilization = min(1.0, max(0.0, utilization))
        sensitivity = min(1.0, max(0.0, sensitivity))
        dyn = self._dynamic_range(node) * utilization
        f_set = node.frequency / node.max_frequency
        f_min = node.min_frequency / node.max_frequency

        f_eff = f_set
        cap_violated = False
        if node.power_cap is not None and dyn > 0.0:
            uncapped = node.idle_power + dyn * f_set**self.alpha
            if uncapped > node.power_cap:
                budgeted = node.power_cap - node.idle_power
                if budgeted <= 0.0:
                    f_eff = f_min
                    cap_violated = True
                else:
                    f_cap = (budgeted / dyn) ** (1.0 / self.alpha)
                    if f_cap < f_min:
                        f_eff = f_min
                        cap_violated = True
                    else:
                        f_eff = min(f_set, f_cap)
        elif node.power_cap is not None and node.idle_power > node.power_cap:
            cap_violated = True

        watts = node.idle_power + dyn * f_eff**self.alpha
        speed = 1.0 - sensitivity * (1.0 - f_eff)
        speed = max(speed, 1e-9)
        return PowerSample(watts, f_eff, speed, cap_violated)

    # ------------------------------------------------------------------
    def power_at_ratio(
        self, node: Node, frequency_ratio: float, utilization: float = 1.0
    ) -> float:
        """Predicted BUSY power at an explicit frequency ratio."""
        frequency_ratio = min(1.0, max(node.min_frequency / node.max_frequency, frequency_ratio))
        dyn = self._dynamic_range(node) * min(1.0, max(0.0, utilization))
        return node.idle_power + dyn * frequency_ratio**self.alpha

    def frequency_for_cap(
        self, node: Node, cap: float, utilization: float = 1.0
    ) -> float:
        """Highest frequency (Hz) whose predicted power meets *cap*.

        Clamps to the node's DVFS range; at the bottom of the range the
        cap may still be violated (caller can check via
        :meth:`operating_point`).
        """
        dyn = self._dynamic_range(node) * min(1.0, max(0.0, utilization))
        if dyn <= 0.0:
            return node.max_frequency if cap >= node.idle_power else node.min_frequency
        budgeted = cap - node.idle_power
        if budgeted <= 0.0:
            return node.min_frequency
        ratio = (budgeted / dyn) ** (1.0 / self.alpha)
        freq = ratio * node.max_frequency
        return min(node.max_frequency, max(node.min_frequency, freq))

    def speed_at_ratio(self, frequency_ratio: float, sensitivity: float) -> float:
        """Relative speed at a frequency ratio for a phase sensitivity."""
        frequency_ratio = min(1.0, max(0.0, frequency_ratio))
        sensitivity = min(1.0, max(0.0, sensitivity))
        return max(1e-9, 1.0 - sensitivity * (1.0 - frequency_ratio))
