"""Trinity (LANL + Sandia) scenario — Table II row 2.

Production: Cray CAPMC power-capping infrastructure with out-of-band
control and administrator-set system-wide and node-level caps.  The
scenario wires a :class:`~repro.power.capmc.Capmc` facade and an
admin script that imposes a system-wide cap partway through the run —
exactly the administrator workflow the table describes.
"""

from __future__ import annotations

from ..core.backfill import EasyBackfillScheduler
from ..core.simulation import ClusterSimulation
from ..policies.manual import AdminAction, ManualActionPolicy
from ..power.capmc import Capmc
from ..units import DAY, HOUR
from .base import CenterBuild, center_workload, standard_machine, standard_site


def build_simulation(
    seed: int = 0,
    duration: float = 2.0 * DAY,
    nodes: int = 128,
    admin_cap_fraction: float = 0.8,
    cap_at: float = 6.0 * HOUR,
) -> CenterBuild:
    """Assemble the Trinity scenario.

    At *cap_at* the administrator sets a node-level cap sized so the
    whole system fits ``admin_cap_fraction`` of peak — the CAPMC
    system/node capping capability.
    """
    # Trinity XC40: Haswell/KNL, dragonfly (Aries).
    machine = standard_machine(
        "trinity", nodes=nodes, idle_power=120.0, max_power=400.0,
        interconnect="dragonfly", seed=seed,
    )
    site = standard_site("trinity", machine, region="North America")
    capmc = Capmc(machine)
    per_node_cap = machine.peak_power * admin_cap_fraction / len(machine)
    workload = center_workload("trinity", machine, duration=duration, seed=seed)
    simulation = ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        workload,
        policies=[
            ManualActionPolicy(
                [AdminAction(cap_at, "set_cap", cap_watts=per_node_cap)]
            )
        ],
        site=site,
        seed=seed,
        cap_watts_for_metrics=machine.peak_power * admin_cap_fraction,
    )
    build = CenterBuild(
        "trinity",
        simulation,
        notes=[
            f"admin sets {per_node_cap:.0f} W/node cap at "
            f"t={cap_at / HOUR:.0f}h (CAPMC out-of-band)",
        ],
    )
    build.simulation.extra_capmc = capmc  # exposed for tests/examples
    return build
