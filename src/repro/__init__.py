"""repro — an Energy and Power Aware Job Scheduling and Resource
Management (EPA JSRM) simulation framework.

Reproduction of *"Energy and Power Aware Job Scheduling and Resource
Management: Global Survey — Initial Analysis"* (EE HPC WG EPA JSRM
team, IPDPSW 2018): the survey's questionnaire, center data, Tables
I/II and Figures 1/2 as typed, testable artifacts — plus an executable
simulation of every surveyed technique, so the qualitative capability
matrix becomes a quantitative evaluation.

Quick start::

    from repro import quickstart
    result = quickstart()
    print(result.metrics.as_dict())

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.simulator` — discrete-event engine
- :mod:`repro.cluster` — nodes, machines, facility, thermal model
- :mod:`repro.power` — power models, DVFS, RAPL, CAPMC, meters, budgets
- :mod:`repro.workload` — jobs, generators, SWF traces
- :mod:`repro.telemetry` — samplers, aggregation, archives, Power API
- :mod:`repro.prediction` — job power/runtime and thermal prediction
- :mod:`repro.grid` — ESP tariffs, demand response, dual supply
- :mod:`repro.core` — schedulers, resource manager, the simulation
- :mod:`repro.policies` — the surveyed EPA techniques
- :mod:`repro.centers` — executable per-center scenarios
- :mod:`repro.survey` — the questionnaire, Tables I/II, Figures 1/2
- :mod:`repro.analysis` — experiment harness and reporting
- :mod:`repro.state` — deterministic checkpoint/restore/replay
"""

from ._version import __version__
from .cluster import Machine, MachineSpec, Node, NodeState, Site
from .core import (
    ClusterSimulation,
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
    MetricsReport,
    SimulationResult,
)
from .errors import ReproError
from .power import NodePowerModel
from .simulator import RngStreams, Simulator
from .workload import Job, WorkloadGenerator, WorkloadSpec

__all__ = [
    "ClusterSimulation",
    "ConservativeBackfillScheduler",
    "EasyBackfillScheduler",
    "FcfsScheduler",
    "Job",
    "Machine",
    "MachineSpec",
    "MetricsReport",
    "Node",
    "NodePowerModel",
    "NodeState",
    "ReproError",
    "RngStreams",
    "SimulationResult",
    "Simulator",
    "Site",
    "WorkloadGenerator",
    "WorkloadSpec",
    "__version__",
    "quickstart",
]


def quickstart(
    nodes: int = 64,
    jobs: int = 200,
    seed: int = 7,
) -> SimulationResult:
    """Run a small EASY-backfilled simulation and return its result.

    A convenience for first contact with the library; see
    ``examples/quickstart.py`` for the narrated version.
    """
    from .units import HOUR

    machine = Machine(MachineSpec(name="demo", nodes=nodes))
    spec = WorkloadSpec(
        arrival_rate=40.0 / HOUR,
        duration=12.0 * HOUR,
        max_nodes=max(1, nodes // 2),
    )
    workload = WorkloadGenerator(spec, RngStreams(seed).stream("wl")).generate(
        count=jobs
    )
    simulation = ClusterSimulation(
        machine, EasyBackfillScheduler(), workload, seed=seed
    )
    return simulation.run()
