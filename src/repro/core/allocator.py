"""Node-selection (allocation) strategies.

Given a job that fits, *which* nodes should it get?  Three strategies
from the surveyed material:

* first-fit — the baseline every resource manager implements;
* topology-aware — survey Q6's "topology-aware task allocation, as a
  way of ... indirectly improving energy consumption (by improving
  application performance, resulting in reduced wallclock time)";
* low-power-first — exploit manufacturing variability ([25], [39]) by
  preferring nodes that draw less power for the same work.
"""

from __future__ import annotations

from operator import attrgetter
from typing import List, Optional, Sequence

from ..cluster.machine import Machine
from ..cluster.node import Node
from ..cluster.topology import Topology
from ..errors import AllocationError


class Allocator:
    """Base class: pick ``count`` nodes from the available pool."""

    name = "base"

    def select(
        self, machine: Machine, available: Sequence[Node], count: int
    ) -> List[Node]:
        """Return exactly *count* nodes from *available*.

        Raises :class:`AllocationError` if the pool is too small —
        callers are expected to check fit first.
        """
        raise NotImplementedError

    def _check(self, available: Sequence[Node], count: int) -> None:
        if count <= 0:
            raise AllocationError(f"cannot allocate {count} nodes")
        if len(available) < count:
            raise AllocationError(
                f"need {count} nodes, only {len(available)} available"
            )


class FirstFitAllocator(Allocator):
    """Lowest node ids first — deterministic baseline."""

    name = "first-fit"

    def select(
        self, machine: Machine, available: Sequence[Node], count: int
    ) -> List[Node]:
        self._check(available, count)
        return sorted(available, key=attrgetter("node_id"))[:count]


class LowPowerAllocator(Allocator):
    """Prefer nodes with the lowest variability-adjusted max power.

    Under a power budget, efficient nodes buy more throughput per watt
    (Inadomi et al. [25]).  Ties break on node id for determinism.
    """

    name = "low-power"

    def select(
        self, machine: Machine, available: Sequence[Node], count: int
    ) -> List[Node]:
        self._check(available, count)
        return sorted(
            available, key=attrgetter("effective_max_power", "node_id")
        )[:count]


class TopologyAwareAllocator(Allocator):
    """Greedy compact placement on the machine's topology.

    Strategy: try each cabinet-aligned contiguous window first (cheap
    and usually compact); fall back to a greedy nearest-neighbour
    expansion from the best seed.  Falls back to first-fit when the
    machine has no topology.
    """

    name = "topology-aware"

    def __init__(self, sample_seeds: int = 4) -> None:
        self.sample_seeds = max(1, int(sample_seeds))

    def select(
        self, machine: Machine, available: Sequence[Node], count: int
    ) -> List[Node]:
        self._check(available, count)
        topo: Optional[Topology] = machine.topology
        ordered = sorted(available, key=attrgetter("node_id"))
        if topo is None or count == 1:
            return ordered[:count]

        # Contiguous-id window: in all three topology builders node ids
        # are laid out with locality, so a contiguous window is compact.
        best_window: Optional[List[Node]] = None
        best_cost = float("inf")
        ids = [n.node_id for n in ordered]
        for start in range(0, len(ordered) - count + 1):
            window_ids = ids[start : start + count]
            # Perfectly contiguous windows are likely compact; score them.
            if window_ids[-1] - window_ids[0] == count - 1:
                cost = topo.placement_cost(window_ids)
                if cost < best_cost:
                    best_cost = cost
                    best_window = ordered[start : start + count]
        if best_window is not None:
            return best_window

        # Greedy expansion from a few seeds.
        best_sel: Optional[List[Node]] = None
        step = max(1, len(ordered) // self.sample_seeds)
        for seed_idx in range(0, len(ordered), step):
            seed = ordered[seed_idx]
            chosen = [seed]
            rest = [n for n in ordered if n is not seed]
            while len(chosen) < count:
                nearest = min(
                    rest,
                    key=lambda n: (
                        min(topo.distance(n.node_id, c.node_id) for c in chosen),
                        n.node_id,
                    ),
                )
                chosen.append(nearest)
                rest.remove(nearest)
            cost = topo.placement_cost([n.node_id for n in chosen])
            if best_sel is None or cost < best_cost:
                best_sel, best_cost = chosen, cost
        assert best_sel is not None
        return best_sel
