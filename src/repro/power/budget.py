"""Hierarchical power budgets.

The survey's framing is hierarchical by nature: a *site* power budget
(Q2a) is divided among *systems* (Tokyo Tech's TSUBAME2/3 sharing;
CEA shifting budget between systems), a system budget among node
*groups* (JCAHPC's "power caps for groups of nodes via the resource
manager"), and group budgets among *nodes* (KAUST's 270 W caps).

:class:`PowerBudget` is a tree of named budgets with the invariant
that the children of a node never reserve more than the parent's
allocation.  Policies acquire and release wattage through it.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..errors import BudgetError
from ..units import check_positive


class PowerBudget:
    """One node of a power-budget tree.

    Parameters
    ----------
    name:
        Unique name within the tree.
    limit_watts:
        Wattage allocated to this budget.
    parent:
        Parent budget; the root has none.  Creating a child reserves
        its limit from the parent's headroom.
    """

    def __init__(
        self,
        name: str,
        limit_watts: float,
        parent: Optional["PowerBudget"] = None,
    ) -> None:
        self.name = str(name)
        self.limit_watts = check_positive("limit_watts", limit_watts)
        self.parent = parent
        self.children: Dict[str, PowerBudget] = {}
        self._reserved = 0.0  # direct reservations, excl. children limits
        if parent is not None:
            parent._attach(self)

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def _attach(self, child: "PowerBudget") -> None:
        if child.name in self.children:
            raise BudgetError(f"budget {self.name!r} already has child {child.name!r}")
        if child.limit_watts > self.headroom + 1e-9:
            raise BudgetError(
                f"child {child.name!r} wants {child.limit_watts:.0f} W but "
                f"parent {self.name!r} has only {self.headroom:.0f} W headroom"
            )
        self.children[child.name] = child

    def subdivide(self, name: str, limit_watts: float) -> "PowerBudget":
        """Create and return a child budget of *limit_watts*."""
        return PowerBudget(name, limit_watts, parent=self)

    def resize(self, new_limit: float) -> None:
        """Change this budget's limit.

        Shrinking below current commitments, or growing beyond the
        parent's headroom, raises :class:`BudgetError`.  This is the
        primitive behind CEA's "shift power budget between systems".
        """
        new_limit = check_positive("new_limit", new_limit)
        if new_limit < self.committed - 1e-9:
            raise BudgetError(
                f"budget {self.name!r}: cannot shrink to {new_limit:.0f} W "
                f"below committed {self.committed:.0f} W"
            )
        if self.parent is not None:
            delta = new_limit - self.limit_watts
            if delta > self.parent.headroom + 1e-9:
                raise BudgetError(
                    f"budget {self.name!r}: parent {self.parent.name!r} lacks "
                    f"{delta:.0f} W headroom"
                )
        self.limit_watts = new_limit

    # ------------------------------------------------------------------
    # Reservations
    # ------------------------------------------------------------------
    @property
    def committed(self) -> float:
        """Watts committed: direct reservations + children's limits."""
        return self._reserved + sum(c.limit_watts for c in self.children.values())

    @property
    def headroom(self) -> float:
        """Uncommitted watts available in this budget."""
        return self.limit_watts - self.committed

    @property
    def reserved(self) -> float:
        """Directly reserved watts (excluding children)."""
        return self._reserved

    def reserve(self, watts: float) -> None:
        """Reserve *watts* from this budget's headroom."""
        if watts < 0:
            raise BudgetError(f"cannot reserve negative watts ({watts})")
        if watts > self.headroom + 1e-9:
            raise BudgetError(
                f"budget {self.name!r}: reserving {watts:.0f} W exceeds "
                f"headroom {self.headroom:.0f} W"
            )
        self._reserved += watts

    def release(self, watts: float) -> None:
        """Return previously reserved watts."""
        if watts < 0:
            raise BudgetError(f"cannot release negative watts ({watts})")
        if watts > self._reserved + 1e-9:
            raise BudgetError(
                f"budget {self.name!r}: releasing {watts:.0f} W but only "
                f"{self._reserved:.0f} W reserved"
            )
        self._reserved = max(0.0, self._reserved - watts)

    def can_reserve(self, watts: float) -> bool:
        """True if :meth:`reserve` would succeed."""
        return 0 <= watts <= self.headroom + 1e-9

    # ------------------------------------------------------------------
    def walk(self) -> Iterator["PowerBudget"]:
        """Yield this budget and all descendants, depth-first."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def find(self, name: str) -> "PowerBudget":
        """Find a budget by name in this subtree."""
        for b in self.walk():
            if b.name == name:
                return b
        raise BudgetError(f"no budget named {name!r} under {self.name!r}")

    def validate(self) -> None:
        """Assert the tree invariant everywhere (used by tests)."""
        for b in self.walk():
            if b.committed > b.limit_watts + 1e-6:
                raise BudgetError(
                    f"budget {b.name!r} over-committed: "
                    f"{b.committed:.1f} W > {b.limit_watts:.1f} W"
                )
