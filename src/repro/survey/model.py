"""Typed data model of the survey.

The paper categorizes each center's activities "into capabilities that
each site is considering in the context of research, technology
development with the intent to eventually deploy into production, and
those that are actively deployed" (Section V).  These are the three
:class:`MaturityStage` values; an :class:`Activity` is one cell entry
of Tables I/II; a :class:`SurveyResponse` bundles a center's profile
with all its activities.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from ..errors import SurveyError
from .taxonomy import Technique


class MaturityStage(enum.Enum):
    """The three activity-maturity columns of Tables I and II."""

    RESEARCH = "Research Activities"
    TECH_DEV = "Technology Development with Intent to Deploy"
    PRODUCTION = "Production Development"


@dataclass(frozen=True)
class CenterProfile:
    """Who a surveyed center is (Section III + Figure 2).

    Latitude/longitude are approximate city coordinates, sufficient
    for the Figure-2 regional map.
    """

    slug: str
    name: str
    country: str
    region: str  # "Asia" | "Europe" | "North America" | "Middle East"
    latitude: float
    longitude: float
    institution_type: str  # "national lab" | "academic" | "joint"
    flagship_system: str
    top500_listed: bool = True
    participated: bool = True

    def __post_init__(self) -> None:
        if not (-90.0 <= self.latitude <= 90.0):
            raise SurveyError(f"{self.slug}: bad latitude {self.latitude}")
        if not (-180.0 <= self.longitude <= 180.0):
            raise SurveyError(f"{self.slug}: bad longitude {self.longitude}")


@dataclass(frozen=True)
class Activity:
    """One activity cell from Tables I/II.

    Attributes
    ----------
    center:
        Center slug.
    stage:
        Which maturity column the activity sits in.
    description:
        The table text (lightly normalized).
    techniques:
        Taxonomy tags extracted from the description.
    partners:
        Named collaboration partners (vendors, universities) — the
        survey's Q5/Q6 vendor-engagement signal.
    """

    center: str
    stage: MaturityStage
    description: str
    techniques: FrozenSet[Technique] = frozenset()
    partners: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.description:
            raise SurveyError("activity needs a description")


@dataclass(frozen=True)
class SurveyResponse:
    """One center's complete survey response."""

    profile: CenterProfile
    activities: Tuple[Activity, ...]
    response_pages: int = 10  # the paper: responses ran 8-17 pages

    def by_stage(self, stage: MaturityStage) -> List[Activity]:
        """Activities of one maturity stage."""
        return [a for a in self.activities if a.stage is stage]

    def techniques(self) -> FrozenSet[Technique]:
        """Union of all technique tags across stages."""
        out: set = set()
        for activity in self.activities:
            out |= activity.techniques
        return frozenset(out)

    def production_techniques(self) -> FrozenSet[Technique]:
        """Techniques deployed in production."""
        out: set = set()
        for activity in self.by_stage(MaturityStage.PRODUCTION):
            out |= activity.techniques
        return frozenset(out)

    def partners(self) -> Tuple[str, ...]:
        """All named partners, deduplicated, order-stable."""
        seen: List[str] = []
        for activity in self.activities:
            for partner in activity.partners:
                if partner not in seen:
                    seen.append(partner)
        return tuple(seen)
