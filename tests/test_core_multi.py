"""Tests for multi-machine site simulation and budget coordination."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.core import (
    ClusterSimulation,
    EasyBackfillScheduler,
    SiteSimulation,
)
from repro.errors import ConfigurationError
from repro.policies import PowerAwareAdmissionPolicy
from repro.simulator import Simulator, TraceRecorder
from repro.workload.phases import COMPUTE_BOUND
from tests.conftest import make_job


def two_machine_site(budget_factor=0.7, coordinate=600.0, jobs_a=None,
                     jobs_b=None):
    sim = Simulator()
    trace = TraceRecorder()
    sims = []
    machines = []
    for name, jobs in (("alpha", jobs_a or []), ("beta", jobs_b or [])):
        machine = Machine(MachineSpec(name=name, nodes=8,
                                      idle_power=100.0, max_power=400.0))
        machines.append(machine)
        per_machine_budget = machine.peak_power  # steered later
        sims.append(
            ClusterSimulation(
                machine, EasyBackfillScheduler(), jobs,
                policies=[PowerAwareAdmissionPolicy(
                    budget_watts=per_machine_budget)],
                sim=sim, trace=trace,
            )
        )
    total_peak = sum(m.peak_power for m in machines)
    site = SiteSimulation(sims, site_budget_watts=total_peak * budget_factor,
                          coordinator_interval=coordinate)
    return site, sims, machines


class TestConstruction:
    def test_requires_shared_engine(self):
        a = ClusterSimulation(
            Machine(MachineSpec(name="a", nodes=4)),
            EasyBackfillScheduler(), [],
        )
        b = ClusterSimulation(
            Machine(MachineSpec(name="b", nodes=4)),
            EasyBackfillScheduler(), [],
        )
        with pytest.raises(ConfigurationError):
            SiteSimulation([a, b], site_budget_watts=10_000.0)

    def test_rejects_duplicate_names(self):
        sim = Simulator()
        a = ClusterSimulation(Machine(MachineSpec(name="x", nodes=4)),
                              EasyBackfillScheduler(), [], sim=sim)
        b = ClusterSimulation(Machine(MachineSpec(name="x", nodes=4)),
                              EasyBackfillScheduler(), [], sim=sim)
        with pytest.raises(ConfigurationError):
            SiteSimulation([a, b], site_budget_watts=10_000.0)

    def test_rejects_budget_below_floor(self):
        sim = Simulator()
        a = ClusterSimulation(Machine(MachineSpec(name="x", nodes=4)),
                              EasyBackfillScheduler(), [], sim=sim)
        with pytest.raises(ConfigurationError):
            SiteSimulation([a], site_budget_watts=100.0)

    def test_budget_tree_built(self):
        site, sims, machines = two_machine_site()
        assert set(site.site_budget.children) == {"alpha", "beta"}
        site.site_budget.validate()


class TestExecution:
    def _jobs(self, prefix, count, submit_offset=0.0):
        return [
            make_job(job_id=f"{prefix}{i}", nodes=2, work=600.0,
                     walltime=3000.0, submit=submit_offset + i * 60.0,
                     profile=COMPUTE_BOUND)
            for i in range(count)
        ]

    def test_both_machines_complete_work(self):
        site, sims, _ = two_machine_site(
            jobs_a=self._jobs("a", 6), jobs_b=self._jobs("b", 6),
        )
        results = site.run()
        assert len(results) == 2
        for result in results:
            assert result.metrics.jobs_completed == 6

    def test_shared_clock(self):
        site, sims, _ = two_machine_site(
            jobs_a=self._jobs("a", 3), jobs_b=self._jobs("b", 3),
        )
        site.run()
        assert sims[0].sim is sims[1].sim

    def test_coordinator_shifts_budget_to_loaded_machine(self):
        # alpha gets a heavy queue, beta idles: alpha's slice must grow.
        site, sims, _ = two_machine_site(
            budget_factor=0.6,
            jobs_a=self._jobs("a", 16),
            jobs_b=[],
        )
        site.run()
        alpha = site.site_budget.find("alpha").limit_watts
        beta = site.site_budget.find("beta").limit_watts
        assert alpha > beta
        # beta keeps at least its floor.
        assert beta >= site.slices[1].floor_watts - 1e-6
        assert site.coordinator.reallocations >= 2

    def test_policies_steered(self):
        site, sims, _ = two_machine_site(
            budget_factor=0.6, jobs_a=self._jobs("a", 16), jobs_b=[],
        )
        site.run()
        for sl in site.slices:
            policy = sl.simulation.policies[0]
            assert policy.budget_watts == pytest.approx(sl.budget.limit_watts)

    def test_coordinated_beats_static_split_makespan(self):
        # With demand-following budgets, the loaded machine finishes
        # sooner than under a frozen equal split.
        def run(coordinate):
            site, sims, _ = two_machine_site(
                budget_factor=0.55,
                coordinate=coordinate,
                jobs_a=self._jobs("a", 16),
                jobs_b=[],
            )
            results = site.run()
            return results[0].metrics.makespan

        coordinated = run(600.0)
        static = run(None)
        assert coordinated < static

    def test_site_power_sums_machines(self):
        site, sims, _ = two_machine_site()
        expected = sum(s.machine_power() for s in sims)
        assert site.site_power() == pytest.approx(expected)

    def test_run_until(self):
        site, sims, _ = two_machine_site(
            jobs_a=self._jobs("a", 4, submit_offset=10_000.0),
        )
        site.run(until=5000.0)
        assert sims[0].sim.now == 5000.0
