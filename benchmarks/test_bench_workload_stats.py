"""Experiment ``exp-q3-stats``: the Q3(e) percentile tables.

Q3(e) asks each center for "the minimum, median, maximum, and 10th,
25th, 75th, and 90th percentile job size and wallclock time".  The
bench generates each center's preset workload and prints exactly that
table, then asserts the cross-center shape facts encoded in the
presets (Trinity capability-heavy, Tokyo Tech capacity-heavy).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import percentile_table
from repro.analysis.report import render_columns
from repro.simulator import RngStreams
from repro.units import DAY
from repro.workload import WorkloadGenerator, center_workload_spec
from repro.workload.presets import CENTER_WORKLOADS

from .conftest import write_artifact

JOBS_PER_CENTER = 3000


def _center_tables():
    tables = {}
    for slug in CENTER_WORKLOADS:
        spec = center_workload_spec(slug, duration=14 * DAY)
        rng = RngStreams(31).stream(f"q3e:{slug}")
        jobs = WorkloadGenerator(spec, rng).generate(count=JOBS_PER_CENTER)
        tables[slug] = (percentile_table(jobs), jobs)
    return tables


def test_bench_q3e_tables(benchmark, artifact_dir):
    tables = benchmark.pedantic(_center_tables, rounds=1, iterations=1)

    headers = ["center", "quantity", "min", "p10", "p25", "median",
               "p75", "p90", "max"]
    rows = []
    for slug, (table, _jobs) in tables.items():
        for key, label in (("job_size_nodes", "size [nodes]"),
                           ("wallclock_seconds", "wallclock [s]")):
            t = table[key]
            rows.append([
                slug, label,
                f"{t.minimum:.0f}", f"{t.p10:.0f}", f"{t.p25:.0f}",
                f"{t.median:.0f}", f"{t.p75:.0f}", f"{t.p90:.0f}",
                f"{t.maximum:.0f}",
            ])
    write_artifact(
        "exp-q3-stats",
        "Q3(e) — job size and wallclock percentiles per center preset\n\n"
        + render_columns(headers, rows),
    )

    # Shape facts.
    trinity = tables["trinity"][0]["job_size_nodes"]
    tokyotech = tables["tokyotech"][0]["job_size_nodes"]
    # Trinity (capability) has a far larger p90 size than Tokyo Tech.
    assert trinity.p90 >= 4 * tokyotech.p90
    # Every table is internally monotone.
    for slug, (table, _) in tables.items():
        for t in table.values():
            assert (t.minimum <= t.p10 <= t.p25 <= t.median
                    <= t.p75 <= t.p90 <= t.maximum), slug

    # Mean work ordering encoded in the presets survives generation.
    trinity_work = np.mean([j.work_seconds for j in tables["trinity"][1]])
    tokyotech_work = np.mean([j.work_seconds for j in tables["tokyotech"][1]])
    assert trinity_work > 2 * tokyotech_work
