"""Deterministic checkpoint/restore/replay for cluster simulations.

The public surface:

* :func:`snapshot` / :func:`restore` — capture a live
  :class:`~repro.core.simulation.ClusterSimulation` as plain data and
  rebuild it (via a user-supplied factory) with bit-identical future
  behavior;
* :class:`SimState`, :func:`save_state` / :func:`load_state`,
  :func:`to_bytes` / :func:`from_bytes` — the versioned, content-hashed
  on-disk form (``RPST`` container: JSON envelope + raw numpy arrays);
* :func:`run_checkpointed` / :func:`resume_run` /
  :func:`checkpoint_to` — drive a run with periodic checkpoints and
  resume a killed one;
* :func:`state_fingerprint` / :func:`sim_fingerprint` /
  :func:`result_fingerprint` / :func:`light_fingerprint` /
  :func:`diff_states` — exact and cheap digests;
* :class:`RunRecorder`, :func:`replay_from`, :func:`compare_streams`,
  :func:`lockstep_divergence` — the replay/divergence harness.

See DESIGN.md §8 for the snapshot contract and schema versioning.
"""

from ..errors import StateError
from .capture import restore, snapshot
from .checkpoint import checkpoint_to, resume_run, run_checkpointed
from .fingerprint import (
    component_digests,
    diff_states,
    light_fingerprint,
    result_fingerprint,
    sim_fingerprint,
    state_fingerprint,
)
from .replay import (
    DivergenceReport,
    FingerprintEntry,
    RunRecorder,
    compare_streams,
    lockstep_divergence,
    replay_from,
)
from .serialize import (
    STATE_SCHEMA_VERSION,
    SimState,
    from_bytes,
    load_state,
    save_state,
    state_digest,
    to_bytes,
)

__all__ = [
    "STATE_SCHEMA_VERSION",
    "DivergenceReport",
    "FingerprintEntry",
    "RunRecorder",
    "SimState",
    "StateError",
    "checkpoint_to",
    "compare_streams",
    "component_digests",
    "diff_states",
    "from_bytes",
    "light_fingerprint",
    "load_state",
    "lockstep_divergence",
    "replay_from",
    "restore",
    "result_fingerprint",
    "resume_run",
    "run_checkpointed",
    "save_state",
    "sim_fingerprint",
    "snapshot",
    "state_digest",
    "state_fingerprint",
    "to_bytes",
]
