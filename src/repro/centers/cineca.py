"""CINECA (Eurora / Marconi) scenario — Table II row 3.

Production: EPA job scheduling on Eurora with PBSPro (Altair
collaboration).  Research: scalable power monitoring feeding per-job
power prediction and node power/temperature models (University of
Bologna — the [9], [10] line).  The scenario runs prediction-gated
power-aware admission: a tag-history predictor learns each
application's draw and the admission policy holds the machine under a
budget using those predictions.
"""

from __future__ import annotations

from ..core.backfill import EasyBackfillScheduler
from ..core.simulation import ClusterSimulation
from ..policies.power_aware_admission import PowerAwareAdmissionPolicy
from ..policies.reporting import EnergyReportingPolicy
from ..prediction.power_predictor import TagHistoryPredictor
from ..units import DAY
from .base import CenterBuild, center_workload, standard_machine, standard_site


def build_simulation(
    seed: int = 0,
    duration: float = 2.0 * DAY,
    nodes: int = 128,
    budget_fraction: float = 0.8,
    with_thermal_research: bool = False,
) -> CenterBuild:
    """Assemble the CINECA scenario with learned-prediction admission.

    ``with_thermal_research`` additionally enables the University-of-
    Bologna research line from Table II: per-node temperature-evolution
    models driving predictive throttling
    (:class:`~repro.policies.thermal_aware.ThermalAwarePolicy`).
    """
    # Eurora: hybrid low-power prototype; modest node power.
    machine = standard_machine(
        "eurora", nodes=nodes, idle_power=70.0, max_power=260.0, seed=seed,
    )
    site = standard_site("cineca", machine, region="Europe")
    budget = machine.peak_power * budget_fraction
    node = machine.nodes[0]
    predictor = TagHistoryPredictor(
        default_per_node_watts=node.max_power, ewma=0.3
    )
    admission = PowerAwareAdmissionPolicy(
        budget_watts=budget,
        estimator=predictor.predict,
        safety_margin=1.05,
    )
    # The estimator above is a bound method, invisible to repro.state's
    # attribute walk; exposing the predictor as a plain attribute lets
    # checkpoints capture its learned per-tag history and patch it back
    # in place on restore (the reporter closure below shares the same
    # object, so both sides see the restored state).
    admission.predictor = predictor

    class _LearningReporter(EnergyReportingPolicy):
        """Feed finished jobs' measured power back into the predictor."""

        name = "energy-reporting+learning"

        def on_job_end(self, job, now):  # noqa: D102 - see base
            super().on_job_end(job, now)
            run = job.run_time
            if run and run > 0:
                predictor.observe(job, job.energy_joules / run)

    policies = [admission, _LearningReporter()]
    notes = [
        f"prediction-gated admission under {budget / 1e3:.0f} kW "
        f"({budget_fraction:.0%} of peak), tag-history predictor",
    ]
    if with_thermal_research:
        from ..policies.thermal_aware import ThermalAwarePolicy

        policies.append(ThermalAwarePolicy(
            r_thermal=0.15, tau=300.0, t_max=85.0,
            throttle_frequency=machine.nodes[0].min_frequency,
        ))
        notes.append("UniBo research line: per-node thermal models "
                     "with predictive throttling")
    workload = center_workload("cineca", machine, duration=duration, seed=seed)
    simulation = ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        workload,
        policies=policies,
        site=site,
        seed=seed,
        cap_watts_for_metrics=budget,
    )
    build = CenterBuild("cineca", simulation, notes=notes)
    build.simulation.extra_predictor = predictor  # for tests/examples
    return build
