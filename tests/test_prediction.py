"""Tests for the prediction substrate."""

import numpy as np
import pytest

from repro.errors import PredictionError
from repro.prediction import (
    FEATURE_NAMES,
    LinearPowerPredictor,
    NodeThermalModel,
    TagHistoryPredictor,
    UserRuntimePredictor,
    evaluate_predictor,
    job_features,
)
from tests.conftest import make_job


class TestFeatures:
    def test_vector_shape_and_names(self):
        job = make_job(nodes=8, walltime=3600.0)
        vec = job_features(job)
        assert vec.shape == (len(FEATURE_NAMES),)
        assert vec[0] == 1.0  # intercept
        assert vec[1] == pytest.approx(3.0)  # log2(8)

    def test_hashes_stable_and_bounded(self):
        a = job_features(make_job(user="alice", tag="t1"))
        b = job_features(make_job(user="alice", tag="t1"))
        assert np.array_equal(a, b)
        assert all(0.0 <= v < 1.0 for v in a[3:])

    def test_different_users_differ(self):
        a = job_features(make_job(user="alice"))
        b = job_features(make_job(user="bob"))
        assert a[3] != b[3]


class TestTagHistoryPredictor:
    def test_cold_start_default(self):
        predictor = TagHistoryPredictor(default_per_node_watts=300.0)
        job = make_job(nodes=4)
        assert predictor.predict(job) == pytest.approx(1200.0)

    def test_learns_tag_average(self):
        predictor = TagHistoryPredictor(default_per_node_watts=300.0, ewma=1.0)
        job = make_job(nodes=4, tag="app:4")
        predictor.observe(job, measured_total_watts=800.0)  # 200 W/node
        assert predictor.predict(make_job(nodes=2, tag="app:4")) == pytest.approx(400.0)

    def test_fallback_chain_tag_app_global(self):
        predictor = TagHistoryPredictor(default_per_node_watts=300.0, ewma=1.0)
        predictor.observe(make_job(nodes=1, tag="x:1", app_name="x"), 150.0)
        # Unknown tag, known app.
        assert predictor.predict_per_node(
            make_job(tag="x:99", app_name="x")
        ) == pytest.approx(150.0)
        # Unknown tag and app: global mean.
        assert predictor.predict_per_node(
            make_job(tag="z:1", app_name="z")
        ) == pytest.approx(150.0)

    def test_ewma_blends(self):
        predictor = TagHistoryPredictor(default_per_node_watts=300.0, ewma=0.5)
        job = make_job(nodes=1, tag="t")
        predictor.observe(job, 100.0)
        predictor.observe(job, 200.0)
        assert predictor.predict_per_node(job) == pytest.approx(150.0)

    def test_ewma_validation(self):
        with pytest.raises(PredictionError):
            TagHistoryPredictor(100.0, ewma=0.0)


class TestLinearPowerPredictor:
    def test_cold_start_default(self):
        predictor = LinearPowerPredictor(default_per_node_watts=250.0)
        assert predictor.predict(make_job(nodes=2)) == pytest.approx(500.0)

    def test_learns_linear_relationship(self, rng):
        predictor = LinearPowerPredictor(default_per_node_watts=250.0,
                                         refit_every=10, ridge=1e-6)
        stream = rng.stream("pred")
        # True model: per-node watts = 100 + 40*log2(nodes).
        for i in range(100):
            nodes = int(2 ** stream.integers(0, 6))
            job = make_job(job_id=f"j{i}", nodes=nodes)
            true = nodes * (100.0 + 40.0 * np.log2(max(nodes, 1)))
            predictor.observe(job, true)
        test_job = make_job(nodes=16)
        predicted = predictor.predict(test_job)
        expected = 16 * (100.0 + 40.0 * 4.0)
        assert predicted == pytest.approx(expected, rel=0.15)

    def test_prediction_clipped_positive(self):
        predictor = LinearPowerPredictor(default_per_node_watts=100.0,
                                         refit_every=1)
        job = make_job(nodes=1)
        predictor.observe(job, 0.5)
        assert predictor.predict(job) >= 1.0

    def test_history_bounded(self):
        predictor = LinearPowerPredictor(default_per_node_watts=100.0,
                                         max_history=10, refit_every=100)
        for i in range(50):
            predictor.observe(make_job(job_id=f"j{i}"), 100.0)
        assert len(predictor._y) == 10

    def test_validation(self):
        with pytest.raises(PredictionError):
            LinearPowerPredictor(100.0, ridge=-1.0)
        with pytest.raises(PredictionError):
            LinearPowerPredictor(100.0, refit_every=0)


class TestEvaluate:
    def test_metrics_computed(self):
        predictor = TagHistoryPredictor(default_per_node_watts=100.0)
        labelled = [(make_job(nodes=1), 120.0), (make_job(nodes=2), 180.0)]
        metrics = evaluate_predictor(predictor, labelled)
        assert metrics.count == 2
        assert metrics.mape > 0.0
        assert metrics.rmse_watts > 0.0

    def test_perfect_predictor(self):
        predictor = TagHistoryPredictor(default_per_node_watts=100.0)
        labelled = [(make_job(nodes=2), 200.0)]
        metrics = evaluate_predictor(predictor, labelled)
        assert metrics.mape == 0.0
        assert metrics.mean_bias_watts == 0.0

    def test_empty(self):
        metrics = evaluate_predictor(
            TagHistoryPredictor(default_per_node_watts=100.0), []
        )
        assert metrics.count == 0


class TestUserRuntimePredictor:
    def test_default_is_request(self):
        predictor = UserRuntimePredictor()
        job = make_job(walltime=1000.0)
        assert predictor.predict(job) == 1000.0

    def test_learns_user_ratio(self):
        predictor = UserRuntimePredictor(ewma=1.0)
        done = make_job(walltime=1000.0, user="alice")
        done.start(0.0, [0])
        done.complete(250.0)  # used a quarter of the request
        predictor.observe(done)
        new = make_job(job_id="n", walltime=2000.0, user="alice")
        assert predictor.predict(new) == pytest.approx(500.0)
        assert predictor.ratio_for("alice") == pytest.approx(0.25)

    def test_never_exceeds_request(self):
        predictor = UserRuntimePredictor()
        job = make_job(walltime=100.0)
        assert predictor.predict(job) <= 100.0

    def test_unknown_user_none_ratio(self):
        assert UserRuntimePredictor().ratio_for("ghost") is None


class TestNodeThermalModel:
    def test_steady_state(self):
        model = NodeThermalModel(r_thermal=0.1, tau=100.0)
        assert model.steady_state(300.0, 20.0) == pytest.approx(50.0)

    def test_converges_to_steady_state(self):
        model = NodeThermalModel(r_thermal=0.1, tau=100.0,
                                 initial_temperature=20.0)
        for _ in range(100):
            model.step(50.0, 300.0, 20.0)
        assert model.temperature == pytest.approx(50.0, abs=0.1)

    def test_exponential_approach(self):
        model = NodeThermalModel(r_thermal=0.1, tau=100.0,
                                 initial_temperature=20.0)
        t1 = model.step(100.0, 300.0, 20.0)
        # After one time constant: ~63% of the gap closed.
        assert t1 == pytest.approx(20.0 + 30.0 * (1 - np.exp(-1)), rel=1e-6)

    def test_predict_does_not_mutate(self):
        model = NodeThermalModel(initial_temperature=30.0)
        before = model.temperature
        model.predict(1000.0, 300.0, 20.0)
        assert model.temperature == before

    def test_time_to_threshold(self):
        model = NodeThermalModel(r_thermal=0.2, tau=100.0,
                                 initial_temperature=30.0, t_max=85.0)
        # Steady state at 20 + 0.2*400 = 100 > 85: finite time.
        t = model.time_to_threshold(400.0, 20.0)
        assert 0.0 < t < float("inf")
        model.step(t, 400.0, 20.0)
        assert model.temperature == pytest.approx(85.0, abs=0.5)

    def test_time_to_threshold_infinite_when_safe(self):
        model = NodeThermalModel(r_thermal=0.1, tau=100.0, t_max=85.0)
        assert model.time_to_threshold(100.0, 20.0) == float("inf")
        assert not model.would_throttle(100.0, 20.0)

    def test_already_over(self):
        model = NodeThermalModel(initial_temperature=90.0, t_max=85.0)
        assert model.time_to_threshold(100.0, 20.0) == 0.0

    def test_validation(self):
        model = NodeThermalModel()
        with pytest.raises(PredictionError):
            model.step(-1.0, 100.0, 20.0)
        with pytest.raises(PredictionError):
            model.predict(-1.0, 100.0, 20.0)
