"""Machine (one HPC system) model.

A :class:`Machine` is one system in the sense of survey question 2(c):
a set of cabinets of nodes with a peak performance, an interconnect
topology and aggregate power characteristics.  Sites can operate
several machines sharing one facility envelope (Tokyo Tech's TSUBAME2 +
TSUBAME3 inter-system capping; CEA shifting budget between systems).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import ClusterError, NodeStateError
from ..units import check_positive
from .cabinet import Cabinet
from .node import TRANSITIONS, Node, NodeState
from .topology import Topology


@dataclass
class MachineSpec:
    """Declarative description of a machine, survey-Q2 style.

    All power figures are per node, in watts; a machine is homogeneous
    unless a variability model perturbs individual nodes afterwards.
    """

    name: str
    nodes: int
    cores_per_node: int = 32
    memory_gb_per_node: float = 128.0
    nodes_per_cabinet: int = 64
    idle_power: float = 100.0
    max_power: float = 350.0
    boot_time: float = 300.0
    shutdown_time: float = 120.0
    max_frequency: float = 2.4e9
    min_frequency: float = 1.2e9
    peak_tflops: float = 1000.0
    interconnect: str = "fat-tree"

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ClusterError(f"machine {self.name!r} needs >= 1 node")
        if self.nodes_per_cabinet <= 0:
            raise ClusterError("nodes_per_cabinet must be >= 1")
        check_positive("idle_power", self.idle_power)
        check_positive("max_power", self.max_power)


class Machine:
    """One HPC system: nodes grouped into cabinets, plus a topology.

    Construction from a :class:`MachineSpec` builds homogeneous nodes;
    pass a prebuilt node list for heterogeneous systems (e.g. the
    CPU+GPU+MIC Eurora machine at CINECA).
    """

    def __init__(
        self,
        spec: MachineSpec,
        nodes: Optional[Iterable[Node]] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        self.spec = spec
        self.name = spec.name
        if nodes is None:
            nodes = [
                Node(
                    node_id=i,
                    cores=spec.cores_per_node,
                    memory_gb=spec.memory_gb_per_node,
                    idle_power=spec.idle_power,
                    max_power=spec.max_power,
                    boot_time=spec.boot_time,
                    shutdown_time=spec.shutdown_time,
                    max_frequency=spec.max_frequency,
                    min_frequency=spec.min_frequency,
                )
                for i in range(spec.nodes)
            ]
        self.nodes: List[Node] = list(nodes)
        if len(self.nodes) != spec.nodes:
            raise ClusterError(
                f"machine {spec.name!r}: spec says {spec.nodes} nodes, "
                f"got {len(self.nodes)}"
            )
        self._by_id: Dict[int, Node] = {n.node_id: n for n in self.nodes}
        if len(self._by_id) != len(self.nodes):
            raise ClusterError(f"machine {spec.name!r}: duplicate node ids")

        self.cabinets: List[Cabinet] = []
        per = spec.nodes_per_cabinet
        for c, start in enumerate(range(0, len(self.nodes), per)):
            self.cabinets.append(Cabinet(c, self.nodes[start : start + per]))

        self.topology = topology

        #: Bulk power-accounting hook, the cohort twin of
        #: ``Node.power_listener``: called once with
        #: ``(node_ids, target, time)`` after :meth:`transition_bulk`
        #: moved a whole cohort, instead of one per-node callback per
        #: member.  Installed by the owning simulation; None outside
        #: one (transition_bulk then falls back to the per-node
        #: listeners, so the two channels are never both fired).
        self.bulk_listener: Optional[callable] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def transition_bulk(
        self,
        node_ids: Sequence[int],
        target: NodeState,
        time: float,
        nodes: Optional[List[Node]] = None,
    ) -> List[Node]:
        """Move a cohort of nodes to *target* in one pass.

        Semantically equivalent to calling ``node.transition(target,
        time)`` on every member, with two differences that callers rely
        on:

        * **atomicity** — legality is validated for the whole cohort
          *before* any node mutates, so a mixed-state cohort fails
          cleanly instead of half-transitioning;
        * **one listener firing** — when a :attr:`bulk_listener` is
          installed it is called once with the whole cohort after all
          nodes moved; per-node ``power_listener`` hooks are *not*
          fired.  Without a bulk listener each node's ``power_listener``
          fires in cohort order, exactly like the scalar loop.

        *node_ids* must not contain duplicates (each node may make the
        transition once).  Returns the transitioned nodes in cohort
        order.  Callers that already hold the node objects may pass
        them as *nodes* (same order as *node_ids*) to skip the id
        lookup.
        """
        if nodes is None:
            by_id = self._by_id
            try:
                nodes = [by_id[nid] for nid in node_ids]
            except KeyError as exc:
                raise ClusterError(
                    f"machine {self.name!r}: no node {exc.args[0]}"
                ) from None
        # Validate with an identity-deduped legality check: cohorts are
        # almost always homogeneous (all IDLE -> BUSY, all BUSY ->
        # IDLE), so the enum hash for the TRANSITIONS lookup is paid
        # once per distinct source state, not once per node.
        checked = None
        for node in nodes:
            state = node.state
            if state is checked:
                continue
            if target not in TRANSITIONS[state]:
                raise NodeStateError(
                    f"node {node.node_id}: illegal transition "
                    f"{state.value} -> {target.value}"
                )
            checked = state
        idle_since = time if target is NodeState.IDLE else None
        for node in nodes:
            node.state = target
            node.last_state_change = time
            node.idle_since = idle_since
        if self.bulk_listener is not None:
            self.bulk_listener(node_ids, target, time)
        else:
            for node in nodes:
                if node.power_listener is not None:
                    node.power_listener(node.node_id)
        return nodes

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        try:
            return self._by_id[node_id]
        except KeyError:
            raise ClusterError(f"machine {self.name!r}: no node {node_id}") from None

    def nodes_in_state(self, state: NodeState) -> List[Node]:
        """All nodes currently in *state*."""
        return [n for n in self.nodes if n.state is state]

    @property
    def available_nodes(self) -> List[Node]:
        """Nodes that can accept a job right now (IDLE)."""
        return [n for n in self.nodes if n.is_available]

    @property
    def total_cores(self) -> int:
        """Total core count across all nodes."""
        return sum(n.cores for n in self.nodes)

    @property
    def peak_power(self) -> float:
        """Variability-adjusted peak draw of all nodes, watts."""
        return sum(n.effective_max_power for n in self.nodes)

    @property
    def idle_floor_power(self) -> float:
        """Draw with every node on but idle, watts."""
        return sum(n.idle_power for n in self.nodes)

    def utilization(self) -> float:
        """Fraction of nodes currently BUSY (0 when machine is empty)."""
        if not self.nodes:
            return 0.0
        busy = sum(1 for n in self.nodes if n.state is NodeState.BUSY)
        return busy / len(self.nodes)

    def powered_fraction(self) -> float:
        """Fraction of nodes consuming operational power."""
        if not self.nodes:
            return 0.0
        return sum(1 for n in self.nodes if n.is_on) / len(self.nodes)
