"""Backfilling schedulers: EASY and conservative.

Backfilling (Mu'alem & Feitelson [35]) is the workhorse of every
surveyed production scheduler (SLURM, PBS Pro, LSF, LoadLeveler,
MOAB): move small jobs forward through the queue as long as they do
not delay the reservation(s) of the job(s) at the head.

* **EASY**: only the head job holds a reservation; anything that fits
  now and does not push that one reservation starts immediately.
* **Conservative**: every queued job holds a reservation; a job may
  jump ahead only if it delays none of them.

Both use the user's walltime request as the runtime estimate — a hard
upper bound in this framework because jobs are killed at their
walltime, which keeps reservations sound even under power capping
slowdowns.

Both schedulers plan on a :class:`~repro.core.profile.FreeNodeProfile`
— an incrementally maintained step function of free nodes over time —
instead of re-deriving the profile from a raw delta dict per candidate
start.  That turns conservative backfill from ~O(P·T³) into O(P·T) at
queue depth P with T profile breakpoints, while producing decisions
identical to the seed implementations preserved in
:mod:`repro.core.reference_backfill` (enforced by property tests).
"""

from __future__ import annotations

from typing import List, Tuple

from .profile import FreeNodeProfile
from .scheduler import Scheduler, SchedulingContext, StartDecision

# Re-exported for prediction-assisted schedulers (fairshare module)
# that run the EASY arithmetic over predicted runtimes.
from .reference_backfill import _earliest_fit, _release_profile  # noqa: F401


class EasyBackfillScheduler(Scheduler):
    """EASY (aggressive) backfilling: one reservation for the head job."""

    name = "easy"

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        self.allocator.begin_pass(ctx.now)
        decisions: List[StartDecision] = []
        pool = self._make_pool(ctx)
        pending = list(ctx.pending)

        # Phase 1: start jobs in order while they fit and are admitted.
        blocked_idx = None
        for i, job in enumerate(pending):
            if job.nodes <= len(pool) and ctx.admit(job):
                decisions.append(
                    StartDecision(job, self._grant(ctx, job, pool))
                )
            else:
                blocked_idx = i
                break
        if blocked_idx is None:
            return decisions

        head = pending[blocked_idx]

        # Phase 2: the head's shadow time and spare nodes, off the
        # release profile.  Origin -inf keeps stale (sub-now) release
        # estimates as explicit breakpoints, matching the seed's raw
        # release walk; equal-time releases merge into one breakpoint
        # (the seed's duplicate-entry list was only cumulative by
        # accident of the walk order).
        profile = FreeNodeProfile.from_releases(
            float("-inf"),
            len(pool),
            self._release_events(ctx, decisions),
        )
        shadow = profile.earliest_at_least(head.nodes, ctx.now)
        if shadow is None:
            shadow = float("inf")
            # Head can never fit (larger than capacity horizon or only
            # blocked by admission) — backfill without a shadow guard is
            # unsafe for the former; guard with capacity check:
            if head.nodes <= ctx.usable_node_count:
                # Blocked by admission (e.g. power): be conservative,
                # allow only jobs that fit in currently spare nodes.
                shadow = ctx.now

        # Spare nodes at shadow time: free nodes at shadow minus head's.
        spare = max(0, profile.free_at(shadow) - head.nodes)

        # Phase 3: backfill later jobs.
        for job in pending[blocked_idx + 1 :]:
            if job.nodes > len(pool) or not ctx.admit(job):
                continue
            ends_before_shadow = ctx.now + job.walltime_request <= shadow
            fits_spare = job.nodes <= spare
            if ends_before_shadow or fits_spare:
                nodes = self._grant(ctx, job, pool)
                if not ends_before_shadow:
                    spare -= job.nodes
                decisions.append(StartDecision(job, nodes))
        return decisions

    @staticmethod
    def _release_events(
        ctx: SchedulingContext, decisions: List[StartDecision]
    ) -> List[Tuple[float, int]]:
        """Release events from running jobs plus this round's grants
        (granted nodes count as busy until their walltime)."""
        events = [
            (info.expected_end, len(info.node_ids)) for info in ctx.running
        ]
        events.extend(
            (ctx.now + d.job.walltime_request, len(d.nodes)) for d in decisions
        )
        return events


class ConservativeBackfillScheduler(Scheduler):
    """Conservative backfilling: every queued job holds a reservation.

    Implemented by forward-simulating the free-node profile: each job
    in priority order is planned at its earliest feasible slot; only
    jobs planned to start *now* are actually started.  Planning uses
    walltime estimates, so no earlier-reserved job is ever delayed.

    The profile lives in a :class:`FreeNodeProfile` built once per
    pass; each reservation is an incremental subtraction over its
    ``[start, end)`` window and each earliest-slot search is a single
    sliding-window-minimum walk.
    """

    name = "conservative"

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        self.allocator.begin_pass(ctx.now)
        decisions: List[StartDecision] = []
        pool = self._make_pool(ctx)
        now = ctx.now

        # Release events at or before now fold into the base count —
        # identical to the seed's free_at() summing every delta with
        # time <= t (the start-now guard below still checks the real
        # pool, so folded stale estimates cannot over-start jobs).
        profile = FreeNodeProfile.from_releases(
            now,
            len(pool),
            ((info.expected_end, len(info.node_ids)) for info in ctx.running),
        )
        capacity = ctx.usable_node_count

        for job in ctx.pending:
            if job.nodes > capacity:
                continue  # can never run; do not reserve
            admitted = ctx.admit(job)
            # Earliest profile breakpoint where the job fits for its
            # whole duration.
            start = profile.earliest_fit(job.nodes, job.walltime_request)
            if start is None:
                # No breakpoint fits the job (e.g. part of the machine
                # is booting, so free nodes never reach its size).  The
                # profile is constant after its last point, so check the
                # tail: if the job fits there it can be soundly
                # reserved, otherwise no sound reservation exists —
                # leave the job unreserved (it is retried on later
                # passes as nodes come up) instead of forcing one that
                # drives the free-node profile negative and delays
                # every reservation after it.
                tail = profile.tail_time
                if profile.free_at(tail) >= job.nodes:
                    start = tail
                else:
                    continue

            if start <= now and admitted and job.nodes <= len(pool):
                nodes = self._grant(ctx, job, pool)
                profile.reserve(now, now + job.walltime_request, job.nodes)
                decisions.append(StartDecision(job, nodes))
            else:
                start = max(start, now)
                profile.reserve(start, start + job.walltime_request, job.nodes)
        return decisions
