"""Exception hierarchy for the EPA JSRM framework.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries.  Subclasses are grouped by subsystem: simulation, cluster,
power, scheduling and survey data.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Errors raised by the discrete-event simulation engine."""


class EventOrderError(SimulationError):
    """An event was scheduled in the past of the simulation clock."""


class ClusterError(ReproError):
    """Errors in the machine / facility model."""


class NodeStateError(ClusterError):
    """An illegal node power-state transition was requested."""


class AllocationError(ClusterError):
    """A resource allocation request could not be honoured.

    Carries the shortfall in structured attributes so fallback logic
    (requeue capacity checks, moldable reshaping) can reason about
    *how* the request failed instead of parsing the message:

    Attributes
    ----------
    requested:
        Number of nodes the failed request asked for (None when the
        raiser had no count in hand).
    available:
        Size of the pool the request was checked against (None when
        unknown).
    """

    def __init__(
        self,
        message: str,
        *,
        requested: "int | None" = None,
        available: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.requested = requested
        self.available = available

    @property
    def shortfall(self) -> "int | None":
        """Nodes missing (``requested - available``), when both known."""
        if self.requested is None or self.available is None:
            return None
        return self.requested - self.available


class TopologyError(ClusterError):
    """A network topology was malformed or a request did not fit it."""


class PowerError(ReproError):
    """Errors in the power/energy substrate."""


class PowerCapError(PowerError):
    """A power cap request was out of the supported control range."""


class BudgetError(PowerError):
    """A hierarchical power-budget constraint was violated or malformed."""


class SchedulingError(ReproError):
    """Errors raised by schedulers, queues and resource managers."""


class JobStateError(SchedulingError):
    """An illegal job life-cycle transition was requested."""


class QueueError(SchedulingError):
    """A queue operation was invalid (unknown queue, duplicate job, ...)."""


class PolicyError(ReproError):
    """An EPA policy was misconfigured or violated its contract."""


class WorkloadError(ReproError):
    """Errors in workload generation or trace parsing."""


class TraceFormatError(WorkloadError):
    """A workload trace file (e.g. SWF) was malformed."""


class SurveyError(ReproError):
    """Errors in the survey data model or its analysis."""


class PredictionError(ReproError):
    """Errors raised by the prediction substrate."""


class ConfigurationError(ReproError):
    """A component was constructed with inconsistent parameters."""


class StateError(ReproError):
    """A simulation state snapshot could not be captured, serialized,
    or restored (unsupported live object, schema mismatch, corrupt or
    incompatible checkpoint)."""
