"""Tests for interconnect topologies."""

import pytest

from repro.cluster.topology import (
    build_dragonfly,
    build_fat_tree,
    build_for,
    build_torus3d,
)
from repro.errors import TopologyError


class TestFatTree:
    def test_node_count(self):
        topo = build_fat_tree(20, arity=8)
        assert topo.num_compute_nodes == 20

    def test_intra_switch_distance(self):
        topo = build_fat_tree(16, arity=8)
        # Nodes 0 and 1 share a leaf switch: 2 hops.
        assert topo.distance(0, 1) == 2

    def test_inter_switch_distance(self):
        topo = build_fat_tree(16, arity=8)
        # Nodes 0 and 8 are on different leaves: up to core and down.
        assert topo.distance(0, 8) == 4

    def test_self_distance_zero(self):
        topo = build_fat_tree(8)
        assert topo.distance(3, 3) == 0

    def test_placement_cost_prefers_compact(self):
        topo = build_fat_tree(32, arity=8)
        compact = topo.placement_cost([0, 1, 2, 3])
        spread = topo.placement_cost([0, 8, 16, 24])
        assert compact < spread

    def test_rejects_bad_args(self):
        with pytest.raises(TopologyError):
            build_fat_tree(0)
        with pytest.raises(TopologyError):
            build_fat_tree(4, arity=0)


class TestTorus:
    def test_node_count(self):
        topo = build_torus3d((3, 3, 3))
        assert topo.num_compute_nodes == 27

    def test_wraparound_distance(self):
        topo = build_torus3d((4, 1, 1))
        # In a ring of 4, opposite nodes are 2 apart, neighbours 1.
        ids = topo.compute_ids()
        dists = sorted(topo.distance(ids[0], other) for other in ids[1:])
        assert dists == [1, 1, 2]

    def test_rejects_zero_dim(self):
        with pytest.raises(TopologyError):
            build_torus3d((0, 2, 2))


class TestDragonfly:
    def test_node_count(self):
        topo = build_dragonfly(groups=3, routers_per_group=4, nodes_per_router=2)
        assert topo.num_compute_nodes == 24

    def test_intra_group_shorter_than_inter(self):
        topo = build_dragonfly(groups=3, routers_per_group=4, nodes_per_router=2)
        # Nodes 0..7 are group 0.
        intra = topo.distance(0, 7)
        inter = topo.distance(0, 8)
        assert intra <= inter

    def test_rejects_bad_args(self):
        with pytest.raises(TopologyError):
            build_dragonfly(0)


class TestBuildFor:
    @pytest.mark.parametrize("family", ["fat-tree", "torus3d", "dragonfly"])
    def test_builds_at_least_requested(self, family):
        topo = build_for(family, 30)
        assert topo.num_compute_nodes >= 30

    def test_unknown_family(self):
        with pytest.raises(TopologyError):
            build_for("hypercube", 8)

    def test_distance_cache_consistency(self):
        topo = build_fat_tree(16)
        assert topo.distance(0, 9) == topo.distance(9, 0)
