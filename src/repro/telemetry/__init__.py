"""Telemetry substrate: sampling, aggregation and archival.

STFC's production capability is "continuously collecting power and
energy system monitoring info, data center, machine, and job levels",
and its research item is a "programmable interface (PowerAPI-based)
for application power measurements of code segments".  Tokyo Tech's
research analyzes "collected power and energy info archived long
term".  This package provides those three capabilities: multi-channel
samplers, hierarchical aggregation, a downsampling long-term archive,
and a PowerAPI-like segment-measurement interface.
"""

from .sampler import TelemetrySampler, Channel
from .aggregate import HierarchicalAggregator, LevelSummary
from .archive import LongTermArchive
from .powerapi import PowerApi, SegmentMeasurement

__all__ = [
    "Channel",
    "HierarchicalAggregator",
    "LevelSummary",
    "LongTermArchive",
    "PowerApi",
    "SegmentMeasurement",
    "TelemetrySampler",
]
