"""Electrical and cooling plant model.

Survey question 2 asks for the "total site power budget or capacity in
watts" and "total site cooling capacity"; CEA's technology-development
item is a 'layout logic' in SLURM that knows "what PDUs/Chillers a node
or rack depends on and avoid scheduling jobs on them when maintenance"
is planned.  This module models exactly that dependency structure:

* :class:`PowerDistributionUnit` — feeds a set of nodes, has a rated
  capacity;
* :class:`Chiller` — removes heat for a set of PDUs, has a rated
  thermal capacity;
* :class:`Facility` — the site envelope: total power budget, cooling
  capacity, the node -> PDU -> chiller map, and maintenance windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from ..errors import ClusterError
from ..units import check_positive


@dataclass(frozen=True)
class MaintenanceWindow:
    """A scheduled outage of one facility component.

    ``component`` names a PDU or chiller id; during [start, end) any
    node depending on it should not receive new work (CEA layout
    logic).
    """

    component: str
    start: float
    end: float

    def active_at(self, time: float) -> bool:
        """True while the window is in force."""
        return self.start <= time < self.end


class PowerDistributionUnit:
    """A PDU feeding a group of nodes."""

    def __init__(self, pdu_id: str, capacity_watts: float, node_ids: Iterable[int]) -> None:
        self.pdu_id = str(pdu_id)
        self.capacity_watts = check_positive("capacity_watts", capacity_watts)
        self.node_ids: Set[int] = set(int(n) for n in node_ids)


class Chiller:
    """A chiller cooling the heat load of a set of PDUs."""

    def __init__(self, chiller_id: str, capacity_watts: float, pdu_ids: Iterable[str]) -> None:
        self.chiller_id = str(chiller_id)
        self.capacity_watts = check_positive("capacity_watts", capacity_watts)
        self.pdu_ids: Set[str] = set(str(p) for p in pdu_ids)


class Facility:
    """Site-level electrical/cooling envelope and dependency map.

    Parameters
    ----------
    power_budget_watts:
        Total site power budget (survey Q2a).
    cooling_capacity_watts:
        Total heat-removal capacity (survey Q2b).
    pdus / chillers:
        The distribution plant.  Every node of every machine should be
        covered by exactly one PDU; each PDU by exactly one chiller.
        An uncovered node is tolerated (it simply has no maintenance
        dependency) so that small test fixtures stay terse.
    """

    def __init__(
        self,
        power_budget_watts: float,
        cooling_capacity_watts: Optional[float] = None,
        pdus: Optional[Iterable[PowerDistributionUnit]] = None,
        chillers: Optional[Iterable[Chiller]] = None,
    ) -> None:
        self.power_budget_watts = check_positive("power_budget_watts", power_budget_watts)
        self.cooling_capacity_watts = (
            check_positive("cooling_capacity_watts", cooling_capacity_watts)
            if cooling_capacity_watts is not None
            else self.power_budget_watts
        )
        self.pdus: Dict[str, PowerDistributionUnit] = {}
        for pdu in pdus or []:
            if pdu.pdu_id in self.pdus:
                raise ClusterError(f"duplicate PDU id {pdu.pdu_id!r}")
            self.pdus[pdu.pdu_id] = pdu
        self.chillers: Dict[str, Chiller] = {}
        for ch in chillers or []:
            if ch.chiller_id in self.chillers:
                raise ClusterError(f"duplicate chiller id {ch.chiller_id!r}")
            for pdu_id in ch.pdu_ids:
                if pdu_id not in self.pdus:
                    raise ClusterError(
                        f"chiller {ch.chiller_id!r} references unknown PDU {pdu_id!r}"
                    )
            self.chillers[ch.chiller_id] = ch

        self._node_to_pdu: Dict[int, str] = {}
        for pdu in self.pdus.values():
            for nid in pdu.node_ids:
                if nid in self._node_to_pdu:
                    raise ClusterError(
                        f"node {nid} fed by two PDUs "
                        f"({self._node_to_pdu[nid]!r} and {pdu.pdu_id!r})"
                    )
                self._node_to_pdu[nid] = pdu.pdu_id
        self._pdu_to_chiller: Dict[str, str] = {}
        for ch in self.chillers.values():
            for pdu_id in ch.pdu_ids:
                if pdu_id in self._pdu_to_chiller:
                    raise ClusterError(f"PDU {pdu_id!r} cooled by two chillers")
                self._pdu_to_chiller[pdu_id] = ch.chiller_id

        self.maintenance: List[MaintenanceWindow] = []

    # ------------------------------------------------------------------
    # Dependency queries (the CEA "layout logic")
    # ------------------------------------------------------------------
    def pdu_of(self, node_id: int) -> Optional[str]:
        """PDU feeding *node_id*, or None if unmapped."""
        return self._node_to_pdu.get(node_id)

    def chiller_of(self, node_id: int) -> Optional[str]:
        """Chiller ultimately cooling *node_id*, or None if unmapped."""
        pdu = self._node_to_pdu.get(node_id)
        return self._pdu_to_chiller.get(pdu) if pdu is not None else None

    def dependencies_of(self, node_id: int) -> Set[str]:
        """All facility component ids *node_id* depends on."""
        deps: Set[str] = set()
        pdu = self.pdu_of(node_id)
        if pdu is not None:
            deps.add(pdu)
            chiller = self._pdu_to_chiller.get(pdu)
            if chiller is not None:
                deps.add(chiller)
        return deps

    def nodes_of_component(self, component: str) -> Set[int]:
        """All node ids depending on PDU or chiller *component*."""
        if component in self.pdus:
            return set(self.pdus[component].node_ids)
        if component in self.chillers:
            nodes: Set[int] = set()
            for pdu_id in self.chillers[component].pdu_ids:
                nodes |= self.pdus[pdu_id].node_ids
            return nodes
        raise ClusterError(f"unknown facility component {component!r}")

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add_maintenance(self, window: MaintenanceWindow) -> None:
        """Register a maintenance window; component must exist."""
        if window.component not in self.pdus and window.component not in self.chillers:
            raise ClusterError(
                f"maintenance on unknown component {window.component!r}"
            )
        if window.end <= window.start:
            raise ClusterError("maintenance window must have end > start")
        self.maintenance.append(window)

    def nodes_under_maintenance(self, time: float, horizon: float = 0.0) -> Set[int]:
        """Node ids whose dependencies have maintenance in [time, time+horizon].

        A *horizon* greater than zero lets schedulers avoid starting a
        job that would still be running when the window opens.
        """
        affected: Set[int] = set()
        end_of_interest = time + max(0.0, horizon)
        for window in self.maintenance:
            if window.start <= end_of_interest and window.end > time:
                affected |= self.nodes_of_component(window.component)
        return affected
