"""Experiment ``table1``: regenerate Table I of the paper.

Table I summarizes RIKEN, Tokyo Tech, CEA, KAUST and LRZ across the
three maturity stages.  The bench renders the table from the typed
survey data, asserts the signature cell contents the paper prints, and
additionally *executes* each Table-I center's production policy stack
(the capability matrix is executable in this framework).
"""

from __future__ import annotations

import pytest

from repro.centers import build_center_simulation
from repro.survey import MaturityStage, build_capability_matrix
from repro.survey.matrix import TABLE1_CENTERS, render_table1
from repro.units import HOUR

from .conftest import write_artifact


def test_bench_render_table1(benchmark, artifact_dir):
    text = benchmark(render_table1)
    write_artifact("table1", text)
    assert "RIKEN" in text and "TABLE I" in text
    # Signature cell contents from the paper's Table I, checked on the
    # underlying matrix (the renderer wraps and interleaves columns).
    matrix = build_capability_matrix(TABLE1_CENTERS)
    cells = " ".join(
        entry
        for center in TABLE1_CENTERS
        for stage in MaturityStage
        for entry in matrix.cell(center, stage)
    )
    assert "Automated emergency job killing" in cells       # RIKEN
    assert "30 min" in cells                                 # Tokyo Tech
    assert "layout logic" in cells                           # CEA
    assert "270 W" in cells and "70%" in cells               # KAUST
    assert "energy to solution or best performance" in cells  # LRZ


def test_bench_table1_structure(benchmark):
    matrix = benchmark(build_capability_matrix, TABLE1_CENTERS)
    # All five centers present, all have production entries.
    assert len(matrix.centers) == 5
    for center in TABLE1_CENTERS:
        assert matrix.cell(center, MaturityStage.PRODUCTION)


@pytest.mark.parametrize("slug", TABLE1_CENTERS)
def test_bench_table1_center_executes(benchmark, slug):
    """Each Table-I row runs as a live simulation (scaled down)."""

    def run():
        build = build_center_simulation(slug, seed=2, duration=2 * HOUR,
                                        nodes=32)
        return build.simulation.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.metrics.jobs_completed > 0
