"""Experiment ``exp-prediction``: per-job power prediction accuracy.

The CINECA/Bologna line ([9], [40], [41]): prediction quality is what
bounds how tight a power budget can be run.  The bench trains both
predictor families online over a simulated job stream and reports
MAPE/RMSE per family and per training volume.  Shape claims: both
beat the nominal worst-case estimate; accuracy improves with history;
tag-history converges fast on a tag-heavy workload.
"""

from __future__ import annotations

from repro.analysis.report import render_columns
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.prediction import (
    LinearPowerPredictor,
    TagHistoryPredictor,
    evaluate_predictor,
)
from repro.workload import Job

from .conftest import bench_machine, bench_workload, write_artifact


class NominalPredictor:
    """The no-learning baseline: nominal worst case per node."""

    def __init__(self, per_node_watts: float) -> None:
        self.per_node = per_node_watts

    def predict(self, job: Job) -> float:
        return job.nodes * self.per_node

    def observe(self, job: Job, measured: float) -> None:
        pass


def _labelled_stream():
    """(job, measured average watts) pairs from a real simulation.

    Labels carry 5 % multiplicative sensor noise — without it the
    simulator's deterministic power model lets the tag predictor
    memorize to machine precision, which no real telemetry permits.
    """
    from repro.simulator import RngStreams

    machine = bench_machine(48)
    jobs = bench_workload(seed=83, count=300, nodes=48, rate_per_hour=80.0)
    sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs, seed=4)
    result = sim.run()
    noise = RngStreams(83).stream("sensor-noise")
    stream = []
    for job in result.completed_jobs():
        run = job.run_time
        if run and run > 0:
            measured = (job.energy_joules / run) * float(
                noise.normal(1.0, 0.05)
            )
            stream.append((job, measured))
    return stream, machine.nodes[0]


def test_bench_prediction_accuracy(benchmark, artifact_dir):
    def evaluate():
        stream, node = _labelled_stream()
        train, test = stream[:200], stream[200:]
        predictors = {
            "nominal": NominalPredictor(node.max_power),
            "tag-history": TagHistoryPredictor(
                default_per_node_watts=node.max_power),
            "linear": LinearPowerPredictor(
                default_per_node_watts=node.max_power, refit_every=20),
        }
        out = {}
        for label, predictor in predictors.items():
            for job, measured in train:
                predictor.observe(job, measured)
            out[label] = evaluate_predictor(predictor, test)
        # Learning-curve point: tag-history with only 25 observations.
        small = TagHistoryPredictor(default_per_node_watts=node.max_power)
        for job, measured in train[:25]:
            small.observe(job, measured)
        out["tag-history@25"] = evaluate_predictor(small, test)
        return out

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    rows = [
        [label, f"{m.count}", f"{m.mape:.1%}", f"{m.rmse_watts:.0f}",
         f"{m.mean_bias_watts:+.0f}"]
        for label, m in results.items()
    ]
    write_artifact(
        "exp-prediction",
        "EXP-PREDICTION — per-job power predictors on a held-out "
        "stream (200 train / 100 test)\n\n"
        + render_columns(
            ["predictor", "n", "MAPE", "RMSE[W]", "bias[W]"], rows,
        ),
    )

    nominal = results["nominal"]
    tag = results["tag-history"]
    linear = results["linear"]
    # Both learners beat the nominal worst case.
    assert tag.mape < 0.5 * nominal.mape
    assert linear.mape < 0.8 * nominal.mape
    # Tag history approaches the 5 % sensor-noise floor.
    assert tag.mape < 0.10
    # More history never hurts the tag predictor (within noise).
    assert tag.mape <= results["tag-history@25"].mape * 1.2
    # The nominal estimate is (by construction) a large over-estimate.
    assert nominal.mean_bias_watts > 0
