"""Parallel, cached experiment execution.

Every benchmark and sweep in this repo ultimately runs a list of
independent simulation *variants* (scenario builders x seeds).  The
:class:`ExperimentExecutor` fans that list out over a process pool,
derives deterministic per-replica seeds through
:func:`repro.simulator.rng.derive_seed`, memoizes finished runs in an
on-disk JSON cache, retries crashed workers a bounded number of times,
and records wall-clock progress in a :class:`TraceRecorder` so sweeps
are observable after the fact.

Design constraints
------------------
* **Determinism** — a parallel run must produce metrics byte-identical
  to a sequential run of the same specs: workers receive the complete
  task description (builder, kwargs, derived seed) and build the
  simulation from scratch, so nothing depends on execution order.
* **Picklability** — :attr:`VariantSpec.build` must be a module-level
  callable (or :func:`functools.partial` of one) for ``workers > 1``;
  closures cannot cross a process boundary.  ``workers=1`` accepts
  any callable and never touches the pool.
* **Cache soundness** — cache entries are keyed by
  ``(variant name, seed, config fingerprint)`` where the fingerprint
  hashes the builder identity and its arguments; a changed argument or
  builder invalidates the entry automatically.  Only the flat metrics
  dict (plus run counters) is persisted — never live simulation
  objects.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import pathlib
import re
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from .._version import __version__
from ..core.metrics import MetricsReport
from ..errors import ReproError
from ..simulator.rng import derive_seed
from ..simulator.trace import TraceRecorder
from ..state.serialize import STATE_SCHEMA_VERSION

#: Canonical cache location for benches and examples (relative to the
#: repo root / current working directory).
DEFAULT_CACHE_DIR = pathlib.Path("benchmarks") / "out" / "cache"

#: Bumped whenever the persisted record layout changes; old entries
#: are then treated as misses, never mis-read.
CACHE_SCHEMA_VERSION = 1


class ExecutorError(ReproError):
    """A variant failed in the executor after all retry attempts."""


@dataclass(frozen=True)
class VariantSpec:
    """Picklable description of one experimental arm.

    Parameters
    ----------
    name:
        Unique variant name (also the cache key component).
    build:
        Module-level callable returning either a
        :class:`~repro.core.simulation.ClusterSimulation`, an object
        with a ``.simulation`` attribute (e.g.
        :class:`~repro.centers.base.CenterBuild`), or — for analysis
        tasks with no simulation — a plain metrics mapping.
    kwargs:
        Keyword arguments passed to ``build``.
    seed_kwarg:
        Name of the keyword through which the derived per-replica seed
        is injected; ``None`` when the builder manages its own seed
        (the derived seed then only keys the cache).
    notes:
        Free-form annotation carried into results.
    """

    name: str
    build: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed_kwarg: Optional[str] = None
    notes: str = ""


@dataclass
class RunRecord:
    """Outcome of one (variant, replica) execution."""

    variant: str
    replica: int
    seed: int
    fingerprint: str
    metrics: Dict[str, float]
    final_time: float = 0.0
    events_fired: int = 0
    wall_seconds: float = 0.0
    attempts: int = 1
    from_cache: bool = False
    notes: str = ""

    def metrics_report(self) -> MetricsReport:
        """The metrics as a structured :class:`MetricsReport`."""
        return MetricsReport.from_dict(self.metrics)


@dataclass(frozen=True)
class _Task:
    """Fully resolved unit of work shipped to a worker."""

    spec: VariantSpec
    replica: int
    seed: int
    until: Optional[float]
    fingerprint: str
    index: int
    max_attempts: int
    checkpoint_interval: Optional[float] = None
    checkpoint_path: Optional[str] = None


def _callable_identity(build: Callable[..., Any]) -> Dict[str, str]:
    """Stable description of a builder for fingerprinting."""
    if isinstance(build, functools.partial):
        inner = _callable_identity(build.func)
        return {
            "partial_of": f"{inner.get('module', '?')}:{inner.get('qualname', '?')}",
            "args": repr(build.args),
            "keywords": repr(sorted(build.keywords.items())),
        }
    return {
        "module": getattr(build, "__module__", "?") or "?",
        "qualname": getattr(build, "__qualname__", repr(build)),
    }


def config_fingerprint(
    spec: VariantSpec, seed: int, until: Optional[float]
) -> str:
    """Hex digest identifying one task's full configuration.

    Two tasks share a fingerprint exactly when they would execute the
    same builder with the same arguments, seed and horizon — the
    condition under which a cached result may be reused.
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        # Package and state-schema versions participate so stale cache
        # entries (and checkpoints) from an older build are never
        # reused: a version bump changes every fingerprint, hence every
        # cache file name.
        "repro_version": __version__,
        "state_schema": STATE_SCHEMA_VERSION,
        "variant": spec.name,
        "seed": int(seed),
        "until": until,
        "seed_kwarg": spec.seed_kwarg,
        "build": _callable_identity(spec.build),
        "kwargs": repr(sorted(spec.kwargs.items())),
    }
    blob = json.dumps(payload, sort_keys=True, default=repr).encode()
    return hashlib.sha256(blob).hexdigest()


def _run_simulation(task: _Task, simulation):
    """Run one simulation, resuming from / writing periodic checkpoints
    when the task carries a checkpoint path.

    Resume-from-checkpoint grafts the saved state onto the freshly
    built *simulation* (same builder, same seed, so the config digest
    matches); a missing, corrupt or config-mismatched checkpoint falls
    back to a fresh run.  The checkpoint file is removed once the run
    completes — from then on the result cache answers.
    """
    if task.checkpoint_path is None or task.checkpoint_interval is None:
        return simulation.run(until=task.until)
    from ..state import (
        StateError, checkpoint_to, load_state, restore, run_checkpointed,
    )
    try:
        state = load_state(task.checkpoint_path)
    except (OSError, StateError):
        state = None
    if state is not None:
        try:
            simulation = restore(state, lambda: simulation)
        except StateError:
            pass  # stale or foreign checkpoint: start fresh
    result = run_checkpointed(
        simulation,
        interval=task.checkpoint_interval,
        sink=checkpoint_to(task.checkpoint_path),
        until=task.until,
    )
    try:
        os.unlink(task.checkpoint_path)
    except OSError:
        pass
    return result


def _run_task(task: _Task) -> RunRecord:
    """Execute one task (worker side); retries crashes up to the bound.

    Module-level so it pickles into pool workers.  Raises
    :class:`ExecutorError` once every attempt failed.
    """
    last_error: Optional[BaseException] = None
    for attempt in range(1, task.max_attempts + 1):
        start = time.perf_counter()
        try:
            kwargs = dict(task.spec.kwargs)
            if task.spec.seed_kwarg is not None:
                kwargs[task.spec.seed_kwarg] = task.seed
            target = task.spec.build(**kwargs)
            simulation = getattr(target, "simulation", target)
            if hasattr(simulation, "run"):
                result = _run_simulation(task, simulation)
                metrics = {
                    k: float(v) for k, v in result.metrics.as_dict().items()
                }
                final_time = float(result.final_time)
                events = int(getattr(simulation, "sim", simulation).events_fired)
            elif isinstance(target, Mapping):
                metrics = {k: float(v) for k, v in target.items()}
                final_time = 0.0
                events = 0
            else:
                raise ExecutorError(
                    f"variant {task.spec.name!r} built {type(target).__name__}; "
                    "expected a simulation, an object with .simulation, or a "
                    "metrics mapping"
                )
            return RunRecord(
                variant=task.spec.name,
                replica=task.replica,
                seed=task.seed,
                fingerprint=task.fingerprint,
                metrics=metrics,
                final_time=final_time,
                events_fired=events,
                wall_seconds=time.perf_counter() - start,
                attempts=attempt,
                notes=task.spec.notes,
            )
        except ExecutorError:
            raise
        except Exception as exc:  # noqa: BLE001 - retry boundary
            last_error = exc
    raise ExecutorError(
        f"variant {task.spec.name!r} (replica {task.replica}, seed "
        f"{task.seed}) failed after {task.max_attempts} attempts: "
        f"{last_error!r}"
    )


class ResultCache:
    """On-disk JSON store of finished :class:`RunRecord` objects.

    Layout: one file per task under *root*, named
    ``<variant>--s<seed>--<fingerprint[:16]>.json``; unreadable,
    stale-schema or fingerprint-mismatched files are silently treated
    as misses.
    """

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)

    def _path(self, task: _Task) -> pathlib.Path:
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", task.spec.name)
        return self.root / f"{slug}--s{task.seed}--{task.fingerprint[:16]}.json"

    def load(self, task: _Task) -> Optional[RunRecord]:
        """The cached record for *task*, or ``None`` on any miss."""
        path = self._path(task)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("fingerprint") != task.fingerprint
        ):
            return None
        record_data = payload.get("record")
        if not isinstance(record_data, dict):
            return None
        try:
            record = RunRecord(**record_data)
        except TypeError:
            return None
        record.from_cache = True
        record.replica = task.replica
        return record

    def store(self, record: RunRecord) -> pathlib.Path:
        """Persist *record*; returns the file written."""
        self.root.mkdir(parents=True, exist_ok=True)
        data = asdict(record)
        data["from_cache"] = False
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": record.fingerprint,
            "record": data,
        }
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_", record.variant)
        path = self.root / (
            f"{slug}--s{record.seed}--{record.fingerprint[:16]}.json"
        )
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        tmp.replace(path)
        return path


class ExperimentExecutor:
    """Fan a list of :class:`VariantSpec` out over processes, with cache.

    Parameters
    ----------
    workers:
        Process-pool size; ``1`` executes inline (no pool, any
        callable allowed).
    replicas:
        Seed replicas per variant; replica ``i`` of variant ``v`` runs
        with ``derive_seed(base_seed, f"{v}/replica:{i}")``.
    base_seed:
        Root of the per-replica seed derivation.
    until:
        Simulation horizon forwarded to every run.
    cache_dir:
        Directory for the JSON result cache; ``None`` disables
        caching.  Benches use ``DEFAULT_CACHE_DIR``
        (``benchmarks/out/cache/``).
    max_attempts:
        Per-task retry bound for crashed or raising workers.
    checkpoint_interval:
        Simulated seconds between on-disk checkpoints of each running
        simulation (``None`` disables checkpointing).  Requires a
        ``cache_dir``; checkpoints live under
        ``<cache_dir>/checkpoints/<fingerprint>.ckpt``.  A task that
        crashes (or a whole sweep that is killed and re-run) resumes
        from its last checkpoint and — the determinism contract —
        finishes with metrics identical to an uninterrupted run.
    trace:
        Recorder for wall-clock progress records (``executor.*``
        categories, timestamped with seconds since the sweep started).
    progress:
        Optional ``(done, total, record)`` callback fired as results
        arrive (completion order, not submission order).
    """

    def __init__(
        self,
        workers: int = 1,
        replicas: int = 1,
        base_seed: int = 0,
        until: Optional[float] = None,
        cache_dir: Optional[pathlib.Path] = None,
        max_attempts: int = 3,
        checkpoint_interval: Optional[float] = None,
        trace: Optional[TraceRecorder] = None,
        progress: Optional[Callable[[int, int, RunRecord], None]] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if checkpoint_interval is not None:
            if checkpoint_interval <= 0:
                raise ValueError(
                    f"checkpoint_interval must be > 0, got {checkpoint_interval}"
                )
            if cache_dir is None:
                raise ValueError(
                    "checkpoint_interval requires a cache_dir (checkpoints "
                    "live under <cache_dir>/checkpoints/)"
                )
        self.checkpoint_interval = checkpoint_interval
        self.workers = int(workers)
        self.replicas = int(replicas)
        self.base_seed = int(base_seed)
        self.until = until
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.max_attempts = int(max_attempts)
        self.trace = trace if trace is not None else TraceRecorder()
        self.progress = progress
        #: Counters and records of the last :meth:`run`.
        self.last_cache_hits = 0
        self.last_executed = 0
        self.last_wall_seconds = 0.0
        self.last_records: List[RunRecord] = []

    # ------------------------------------------------------------------
    def _expand(self, specs: Sequence[VariantSpec]) -> List[_Task]:
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate variant names: {names}")
        tasks: List[_Task] = []
        for spec in specs:
            for replica in range(self.replicas):
                seed = derive_seed(
                    self.base_seed, f"{spec.name}/replica:{replica}"
                )
                fingerprint = config_fingerprint(spec, seed, self.until)
                ckpt_path = None
                if self.checkpoint_interval is not None:
                    ckpt_path = str(
                        self.cache.root / "checkpoints" / f"{fingerprint}.ckpt"
                    )
                tasks.append(
                    _Task(
                        spec=spec,
                        replica=replica,
                        seed=seed,
                        until=self.until,
                        fingerprint=fingerprint,
                        index=len(tasks),
                        max_attempts=self.max_attempts,
                        checkpoint_interval=self.checkpoint_interval,
                        checkpoint_path=ckpt_path,
                    )
                )
        return tasks

    def _emit(self, started: float, category: str, **data: Any) -> None:
        self.trace.emit(time.perf_counter() - started, category, **data)

    def _report(self, done: int, total: int, record: RunRecord) -> None:
        if self.progress is not None:
            self.progress(done, total, record)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[VariantSpec]) -> List[RunRecord]:
        """Execute every (variant, replica) task; ordered like *specs*.

        Results are returned in deterministic submission order
        (variant order x replica index) regardless of completion
        order, so downstream tabulation matches a sequential run.
        """
        started = time.perf_counter()
        tasks = self._expand(specs)
        records: List[Optional[RunRecord]] = [None] * len(tasks)
        self._emit(
            started, "executor.sweep_start",
            tasks=len(tasks), workers=self.workers, replicas=self.replicas,
        )

        pending: List[_Task] = []
        for task in tasks:
            cached = self.cache.load(task) if self.cache is not None else None
            if cached is not None:
                records[task.index] = cached
                self._emit(
                    started, "executor.cache_hit",
                    variant=task.spec.name, seed=task.seed,
                    fingerprint=task.fingerprint[:16],
                )
            else:
                pending.append(task)

        done = len(tasks) - len(pending)
        for idx in range(len(tasks)):
            if records[idx] is not None:
                self._report(done, len(tasks), records[idx])

        if pending:
            if self.workers == 1 or len(pending) == 1:
                fresh = self._run_inline(pending, started, done, len(tasks))
            else:
                fresh = self._run_pool(pending, started, done, len(tasks))
            for record in fresh:
                records[self._task_index(tasks, record)] = record

        self.last_cache_hits = len(tasks) - len(pending)
        self.last_executed = len(pending)
        self.last_wall_seconds = time.perf_counter() - started
        self._emit(
            started, "executor.sweep_done",
            tasks=len(tasks), cache_hits=self.last_cache_hits,
            executed=self.last_executed,
            wall_seconds=self.last_wall_seconds,
        )
        self.last_records = [r for r in records if r is not None]
        return self.last_records

    @staticmethod
    def _task_index(tasks: List[_Task], record: RunRecord) -> int:
        for task in tasks:
            if (
                task.spec.name == record.variant
                and task.replica == record.replica
            ):
                return task.index
        raise ExecutorError(f"no task matches record {record.variant!r}")

    def _finish(
        self, task: _Task, record: RunRecord, started: float,
        done: int, total: int,
    ) -> None:
        if self.cache is not None:
            self.cache.store(record)
        self._emit(
            started, "executor.task_done",
            variant=task.spec.name, replica=task.replica, seed=task.seed,
            wall_seconds=record.wall_seconds, attempts=record.attempts,
        )
        self._report(done, total, record)

    def _run_inline(
        self, pending: List[_Task], started: float, done: int, total: int
    ) -> List[RunRecord]:
        out: List[RunRecord] = []
        for task in pending:
            self._emit(
                started, "executor.task_start",
                variant=task.spec.name, replica=task.replica, seed=task.seed,
            )
            record = _run_task(task)
            out.append(record)
            done += 1
            self._finish(task, record, started, done, total)
        return out

    def _run_pool(
        self, pending: List[_Task], started: float, done: int, total: int
    ) -> List[RunRecord]:
        out: List[RunRecord] = []
        remaining = list(pending)
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = {
                    pool.submit(_run_task, task): task for task in remaining
                }
                for task in list(futures.values()):
                    self._emit(
                        started, "executor.task_start",
                        variant=task.spec.name, replica=task.replica,
                        seed=task.seed,
                    )
                for future, task in futures.items():
                    record = future.result()
                    out.append(record)
                    remaining.remove(task)
                    done += 1
                    self._finish(task, record, started, done, total)
        except BrokenExecutor:
            # A worker died hard (OOM kill, segfault).  Fall back to
            # inline execution for whatever is left; _run_task's own
            # bounded retry then governs repeated crashes.
            self._emit(
                started, "executor.pool_broken", remaining=len(remaining)
            )
            out.extend(self._run_inline(remaining, started, done, total))
        return out


def _fanout_call(fn: Callable[[Any], Any], task: Any, max_attempts: int) -> Any:
    """Worker-side wrapper: bounded retries around one task call."""
    last_error: Optional[BaseException] = None
    for attempt in range(1, max_attempts + 1):
        try:
            return fn(task)
        except ExecutorError:
            raise
        except Exception as exc:  # noqa: BLE001 - retry boundary
            last_error = exc
    raise ExecutorError(
        f"fanout task failed after {max_attempts} attempts: {last_error!r}"
    )


class FanoutPool:
    """Order-preserving process fan-out for arbitrary picklable tasks.

    The :class:`ExperimentExecutor` above owns the variant/replica/cache
    machinery; this is the raw substrate under it for callers — the
    federation campaign foremost — that ship their own task objects
    (e.g. an epoch's worth of site snapshots) and need the pool to
    *persist across calls* so workers warm up once, not once per epoch.

    Contract: ``map(fn, tasks)`` returns results in task order, with
    ``fn`` a module-level picklable callable for ``workers > 1``
    (``workers == 1`` executes inline and accepts any callable).
    Worker crashes retry up to ``max_attempts``; a broken pool (hard
    worker death) falls back to inline execution for the unfinished
    tasks and is rebuilt on the next call.
    """

    _UNSET = object()

    def __init__(self, workers: int = 1, max_attempts: int = 3) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.workers = int(workers)
        self.max_attempts = int(max_attempts)
        self._pool: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def map(self, fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[Any]:
        """Apply *fn* to every task; results in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            return [_fanout_call(fn, task, self.max_attempts) for task in tasks]
        results: List[Any] = [self._UNSET] * len(tasks)
        try:
            pool = self._ensure_pool()
            futures = [
                pool.submit(_fanout_call, fn, task, self.max_attempts)
                for task in tasks
            ]
            for i, future in enumerate(futures):
                results[i] = future.result()
        except BrokenExecutor:
            self._discard_pool()
            for i, task in enumerate(tasks):
                if results[i] is self._UNSET:
                    results[i] = _fanout_call(fn, task, self.max_attempts)
        return results

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "FanoutPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ExecutorError",
    "ExperimentExecutor",
    "FanoutPool",
    "ResultCache",
    "RunRecord",
    "VariantSpec",
    "config_fingerprint",
]
