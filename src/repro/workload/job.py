"""Batch job model and life-cycle.

A job carries what the user declares (requested nodes, requested
walltime, tag), what is actually true (the hidden work amount and
phase structure the simulator executes), and the bookkeeping every
surveyed reporting capability needs (start/end, consumed energy —
Tokyo Tech and JCAHPC both deliver post-job energy reports to users).

Moldable jobs — "jobs which can run with different configurations
(number of nodes, cores or threads)" — are first-class: a job may list
:class:`MoldableConfig` alternatives, and a policy (Patki-style) picks
one before start.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import JobStateError, WorkloadError
from .phases import BALANCED, PhaseProfile


class JobState(enum.Enum):
    """Life-cycle states of a batch job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    #: Killed by the system (e.g. RIKEN emergency power kill).
    KILLED = "killed"
    #: Exceeded its requested walltime and was terminated.
    TIMEOUT = "timeout"
    #: Removed from the queue before starting.
    CANCELLED = "cancelled"


_TRANSITIONS = {
    JobState.PENDING: {JobState.RUNNING, JobState.CANCELLED},
    JobState.RUNNING: {JobState.COMPLETED, JobState.KILLED, JobState.TIMEOUT},
    JobState.COMPLETED: set(),
    JobState.KILLED: set(),
    JobState.TIMEOUT: set(),
    JobState.CANCELLED: set(),
}

TERMINAL_STATES = frozenset(
    {JobState.COMPLETED, JobState.KILLED, JobState.TIMEOUT, JobState.CANCELLED}
)


@dataclass(frozen=True)
class MoldableConfig:
    """One admissible (nodes, work) configuration of a moldable job.

    ``work_seconds`` is the full-speed runtime in that configuration;
    a config with more nodes normally has less work per the job's
    parallel efficiency.
    """

    nodes: int
    work_seconds: float

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise WorkloadError(f"moldable config needs >= 1 node, got {self.nodes}")
        if self.work_seconds <= 0:
            raise WorkloadError("moldable config needs positive work")


@dataclass
class Job:
    """A batch job.

    Parameters
    ----------
    job_id:
        Unique string id.
    nodes:
        Number of whole nodes requested (allocation granularity in all
        surveyed systems).
    work_seconds:
        True runtime at full frequency ("work"); hidden from the
        scheduler, which only sees ``walltime_request``.
    walltime_request:
        The user's (over-)estimate; schedulers plan with this.
    submit_time:
        Simulated submission time, seconds.
    profile:
        Phase structure; defaults to a balanced mix.
    app_name / tag:
        Application identity and the user-supplied similarity tag used
        by history-based prediction ([4], [40]).
    moldable:
        Optional alternative configurations.
    """

    job_id: str
    nodes: int
    work_seconds: float
    walltime_request: float
    submit_time: float = 0.0
    user: str = "user0"
    profile: PhaseProfile = field(default_factory=lambda: BALANCED)
    app_name: str = "generic"
    tag: str = ""
    memory_gb_per_node: float = 1.0
    priority: int = 0
    queue: str = "default"
    moldable: Tuple[MoldableConfig, ...] = ()

    # --- life-cycle bookkeeping (filled in by the simulation) ---------
    state: JobState = JobState.PENDING
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    assigned_nodes: List[int] = field(default_factory=list)
    assigned_frequency: Optional[float] = None
    energy_joules: float = 0.0
    kill_reason: str = ""
    power_estimate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise WorkloadError(f"job {self.job_id}: nodes must be >= 1")
        if self.work_seconds <= 0:
            raise WorkloadError(f"job {self.job_id}: work must be positive")
        if self.walltime_request <= 0:
            raise WorkloadError(f"job {self.job_id}: walltime must be positive")

    # ------------------------------------------------------------------
    # Life-cycle
    # ------------------------------------------------------------------
    def _move(self, target: JobState) -> None:
        if target not in _TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        self.state = target

    def start(self, time: float, node_ids: List[int]) -> None:
        """Mark the job running on *node_ids* at *time*."""
        if len(node_ids) != self.nodes:
            raise JobStateError(
                f"job {self.job_id}: assigned {len(node_ids)} nodes, needs {self.nodes}"
            )
        self._move(JobState.RUNNING)
        self.start_time = time
        self.assigned_nodes = list(node_ids)

    def complete(self, time: float) -> None:
        """Mark normal completion at *time*."""
        self._move(JobState.COMPLETED)
        self.end_time = time

    def kill(self, time: float, reason: str = "") -> None:
        """Mark a system kill (power emergency etc.) at *time*."""
        self._move(JobState.KILLED)
        self.end_time = time
        self.kill_reason = reason

    def timeout(self, time: float) -> None:
        """Mark walltime-limit termination at *time*."""
        self._move(JobState.TIMEOUT)
        self.end_time = time

    def cancel(self) -> None:
        """Remove from queue before start."""
        self._move(JobState.CANCELLED)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_terminal(self) -> bool:
        """True once the job can never run again."""
        return self.state in TERMINAL_STATES

    @property
    def wait_time(self) -> Optional[float]:
        """Queue wait (start - submit), None if never started."""
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def run_time(self) -> Optional[float]:
        """Wall time actually spent running, None if not finished."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    @property
    def turnaround(self) -> Optional[float]:
        """End-to-end time (end - submit), None if not finished."""
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time

    def bounded_slowdown(self, threshold: float = 10.0) -> Optional[float]:
        """Bounded slowdown (Feitelson): (wait+run)/max(run, threshold).

        The standard responsiveness metric of the backfilling
        literature ([35]).
        """
        if self.start_time is None or self.end_time is None:
            return None
        run = max(self.end_time - self.start_time, threshold)
        return max(1.0, (self.wait_time + (self.end_time - self.start_time)) / run)

    @property
    def node_seconds(self) -> Optional[float]:
        """Nodes × runtime, the utilization contribution."""
        run = self.run_time
        return None if run is None else run * self.nodes

    @property
    def mean_power_intensity(self) -> float:
        """Work-weighted dynamic-power intensity of the job's phases."""
        return self.profile.mean_intensity

    @property
    def mean_sensitivity(self) -> float:
        """Work-weighted frequency sensitivity of the job's phases."""
        return self.profile.mean_sensitivity

    def config_for(self, nodes: int) -> Optional[MoldableConfig]:
        """The moldable configuration with exactly *nodes*, if any."""
        for cfg in self.moldable:
            if cfg.nodes == nodes:
                return cfg
        return None
