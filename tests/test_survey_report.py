"""Tests for the survey report generator."""

import pytest

from repro.survey import render_survey_report


@pytest.fixture(scope="module")
def report():
    return render_survey_report()


class TestSurveyReport:
    def test_is_markdown_with_title(self, report):
        assert report.startswith("# Energy and Power Aware")

    def test_methodology_facts(self, report):
        assert "Centers identified: 11; participating: 9" in report
        assert "September 2016 to August 2017" in report
        assert "8-17 per center" in report

    def test_all_eight_questions_present(self, report):
        for number in range(1, 9):
            assert f"\n{number}. " in report

    def test_every_center_has_section(self, report):
        for name in ("RIKEN", "Tokyo Institute of Technology", "CEA",
                     "KAUST", "LRZ", "STFC", "Trinity", "CINECA", "JCAHPC"):
            assert name in report

    def test_capability_rows_rendered(self, report):
        assert "Automated emergency job killing" in report
        assert "270 W power cap" in report
        assert "(none reported)" in report  # JCAHPC's empty tech-dev cell

    def test_analysis_sections(self, report):
        assert "Common themes" in report
        assert "research-to-production gap" in report
        assert "Vendor engagement" in report
        assert "Cluster " in report

    def test_markdown_tables_well_formed(self, report):
        for line in report.splitlines():
            if line.startswith("|") and not line.startswith("|--"):
                assert line.endswith("|"), line

    def test_center_metrics_appended(self):
        report = render_survey_report(
            center_metrics={"riken": {"jobs_completed": 42.0,
                                      "utilization": 0.5}}
        )
        assert "Executed scenario (this framework)" in report
        assert "jobs_completed: 42" in report

    def test_deterministic(self, report):
        assert render_survey_report() == report
