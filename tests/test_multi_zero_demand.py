"""Regression tests: budget redivision on idle sites and infeasible
floors (BudgetCoordinator.reallocate must never raise BudgetError)."""

from __future__ import annotations


from repro.cluster import Machine, MachineSpec
from repro.core import ClusterSimulation, FcfsScheduler, SiteSimulation
from repro.core.multi import BudgetCoordinator, MachineSlice
from repro.power.budget import PowerBudget
from repro.simulator import Simulator, TraceRecorder


def idle_site(n_machines=3, budget_factor=0.6, interval=300.0):
    """A site with no workload at all: zero demand everywhere."""
    sim = Simulator()
    trace = TraceRecorder()
    sims = []
    for i in range(n_machines):
        machine = Machine(MachineSpec(name=f"m{i}", nodes=4,
                                      idle_power=100.0, max_power=400.0))
        sims.append(ClusterSimulation(machine, FcfsScheduler(), [],
                                      sim=sim, trace=trace))
    total_peak = sum(s.machine.peak_power for s in sims)
    return SiteSimulation(sims, site_budget_watts=total_peak * budget_factor,
                          coordinator_interval=interval)


class TestZeroDemand:
    def test_all_idle_site_splits_surplus_evenly(self):
        site = idle_site(n_machines=3)
        for simulation in site.simulations:
            simulation.prepare()
        out = site.coordinator.reallocate(site.sim.now)
        watts = list(out.values())
        assert len(watts) == 3
        # Identical machines, zero demand: identical slices.
        assert max(watts) - min(watts) < 1e-6
        assert sum(watts) <= site.site_budget.limit_watts + 1e-6
        site.site_budget.validate()

    def test_idle_site_runs_to_horizon(self):
        site = idle_site(n_machines=2, interval=120.0)
        results = site.run(until=3600.0)
        assert len(results) == 2
        assert site.coordinator.reallocations >= 1 + int(3600.0 / 120.0)

    def test_repeated_reallocation_is_stable(self):
        site = idle_site(n_machines=3)
        for simulation in site.simulations:
            simulation.prepare()
        first = site.coordinator.reallocate(site.sim.now)
        for _ in range(10):
            again = site.coordinator.reallocate(site.sim.now)
        assert again == first


class TestInfeasibleFloors:
    def make_coordinator(self, limit, floors):
        sim = Simulator()
        trace = TraceRecorder()
        site_budget = PowerBudget("site", limit)
        slices = []
        for i, floor in enumerate(floors):
            machine = Machine(MachineSpec(name=f"m{i}", nodes=2,
                                          idle_power=50.0, max_power=200.0))
            simulation = ClusterSimulation(machine, FcfsScheduler(), [],
                                           sim=sim, trace=trace)
            simulation.prepare()
            child = site_budget.subdivide(f"m{i}", limit / len(floors))
            slices.append(MachineSlice(simulation, child, floor_watts=floor))
        return BudgetCoordinator(site_budget, slices)

    def test_floors_exceeding_budget_are_scaled_not_raised(self):
        # Combined floors (160 W each) far exceed the 100 W envelope.
        coord = self.make_coordinator(limit=100.0, floors=[160.0, 160.0])
        out = coord.reallocate(0.0)
        watts = list(out.values())
        assert sum(watts) <= 100.0 + 1e-6
        assert max(watts) - min(watts) < 1e-6  # proportional scaling
        coord.site_budget.validate()

    def test_unequal_infeasible_floors_scale_proportionally(self):
        coord = self.make_coordinator(limit=120.0, floors=[300.0, 100.0])
        out = coord.reallocate(0.0)
        watts = list(out.values())
        assert sum(watts) <= 120.0 + 1e-6
        assert watts[0] != watts[1]
        coord.site_budget.validate()

    def test_feasible_floors_are_untouched(self):
        coord = self.make_coordinator(limit=1000.0, floors=[100.0, 100.0])
        out = coord.reallocate(0.0)
        for watts in out.values():
            assert watts >= 100.0 - 1e-9
        assert sum(out.values()) <= 1000.0 + 1e-6
