"""Tests for idle shutdown and dynamic provisioning policies."""


from repro.cluster import Machine, MachineSpec, NodeState
from repro.cluster.site import Site
from repro.cluster.thermal import AmbientModel
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import DynamicProvisioningPolicy, IdleShutdownPolicy
from repro.units import DAY, HOUR
from repro.workload import JobState
from tests.conftest import make_job


def machine16(**kw):
    defaults = dict(name="m", nodes=16, idle_power=100.0, max_power=400.0,
                    boot_time=120.0, shutdown_time=60.0)
    defaults.update(kw)
    return Machine(MachineSpec(**defaults))


class TestIdleShutdown:
    def test_idle_nodes_shut_down(self):
        machine = machine16()
        policy = IdleShutdownPolicy(idle_threshold=600.0, min_spare=2,
                                    check_interval=300.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [],
                                policies=[policy])
        sim.run(until=2 * HOUR)
        off = machine.nodes_in_state(NodeState.OFF)
        idle = machine.nodes_in_state(NodeState.IDLE)
        assert len(off) == 14
        assert len(idle) == 2  # min_spare preserved

    def test_boots_on_demand(self):
        machine = machine16()
        policy = IdleShutdownPolicy(idle_threshold=600.0, min_spare=0,
                                    check_interval=300.0)
        late_job = make_job(job_id="late", nodes=8, work=100.0,
                            walltime=1000.0, submit=3 * HOUR)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [late_job],
                                policies=[policy])
        sim.run()
        assert late_job.state is JobState.COMPLETED
        # It had to wait for boots.
        assert late_job.wait_time > 0.0
        assert sim.rm.boots_initiated >= 8

    def test_saves_energy_at_low_utilization(self):
        def run(policies):
            machine = machine16()
            jobs = [
                make_job(job_id=f"j{i}", nodes=1, work=600.0,
                         walltime=2000.0, submit=i * 6 * HOUR)
                for i in range(4)
            ]
            sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                    policies=policies)
            result = sim.run()
            return result.metrics.total_energy_joules

        base = run([])
        saving = run([IdleShutdownPolicy(idle_threshold=600.0, min_spare=1,
                                         check_interval=300.0)])
        assert saving < base * 0.6  # most idle power eliminated

    def test_neutral_when_queue_busy(self):
        machine = machine16()
        jobs = [
            make_job(job_id=f"j{i}", nodes=16, work=500.0, walltime=1000.0)
            for i in range(6)
        ]
        policy = IdleShutdownPolicy(idle_threshold=600.0, check_interval=120.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[policy])
        result = sim.run()
        # Saturated machine: nothing idles long enough to shut down.
        assert sim.rm.shutdowns_initiated == 0
        assert result.metrics.jobs_completed == 6

    def test_t0_idle_nodes_shut_down_before_recently_idle(self):
        # Regression for the `idle_since or 0.0` conflation: a node
        # idle since t=0 carries a real timestamp and must rank first
        # (longest idle) among shutdown candidates — it is not the
        # same as "no idle timestamp", which ranks last.
        machine = machine16()
        policy = IdleShutdownPolicy(idle_threshold=100.0, min_spare=4,
                                    check_interval=300.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [],
                                policies=[policy])
        sim.prepare()
        # Nodes 0-3 go idle at t=50; the other 12 are idle since t=0.
        for node in machine.nodes[:4]:
            node.assign("warm", 0.0)
            node.release(50.0)
        sim.run_batched(until=400.0)
        # Surplus = 12 (16 idle - min_spare 4): the twelve t=0 nodes
        # are the oldest candidates and shut down first, keeping the
        # t=50 nodes as the spare margin.
        for node in machine.nodes[:4]:
            assert node.state is NodeState.IDLE
        for node in machine.nodes[4:]:
            assert node.state is not NodeState.IDLE

    def test_idle_rank_orders_none_last_and_t0_first(self):
        from repro.policies.base import _idle_rank

        machine = machine16()
        a, b, c = machine.nodes[:3]
        a.idle_since = 0.0
        b.idle_since = None
        c.idle_since = 25.0
        ranked = sorted([b, c, a], key=_idle_rank)
        assert ranked == [a, c, b]


class TestDynamicProvisioning:
    def _site(self, machine, mean=16.0):
        return Site("s", [machine],
                    ambient=AmbientModel(mean=mean, seasonal_amplitude=11.0))

    def test_summer_gate(self):
        machine = machine16()
        policy = DynamicProvisioningPolicy(cap_watts=1000.0, summer_only=True)
        ClusterSimulation(machine, EasyBackfillScheduler(), [],
                          policies=[policy],
                          site=self._site(machine))
        # January: inactive.
        assert not policy._active(15 * DAY)
        # July: active.
        assert policy._active(196 * DAY)

    def test_admission_vetoes_then_sheds_to_make_room(self):
        machine = machine16()
        # Cap barely above the idle floor: the job cannot start until
        # the policy sheds idle nodes to create power headroom (the
        # Tokyo Tech lever: node count buys job power).
        cap = machine.idle_floor_power + 50.0
        policy = DynamicProvisioningPolicy(cap_watts=cap, summer_only=False,
                                           check_interval=120.0)
        job = make_job(nodes=4, work=100.0, walltime=1000.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        result = sim.run(until=4 * HOUR)
        assert policy.veto_count > 0        # initially power-blocked
        assert sim.rm.shutdowns_initiated > 0  # room was made
        assert job.state is JobState.COMPLETED
        assert result.metrics.jobs_killed == 0

    def test_impossible_cap_keeps_vetoing(self):
        machine = machine16()
        # Cap below even the shed-to-minimum configuration: the job's
        # own draw exceeds the cap, so it must stay pending forever.
        job = make_job(nodes=4, work=100.0, walltime=1000.0)
        delta = 4 * (machine.nodes[0].max_power - machine.nodes[0].idle_power)
        cap = 4 * machine.nodes[0].idle_power + delta * 0.1
        policy = DynamicProvisioningPolicy(cap_watts=cap, summer_only=False,
                                           check_interval=120.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run(until=2 * HOUR)
        assert job.state is JobState.PENDING
        assert policy.veto_count > 0

    def test_sheds_idle_nodes_over_cap(self):
        machine = machine16()
        # Idle floor is 1600 W; cap of 1000 W forces shedding.
        policy = DynamicProvisioningPolicy(cap_watts=1000.0,
                                           summer_only=False,
                                           window=600.0,
                                           check_interval=120.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [],
                                policies=[policy])
        sim.run(until=2 * HOUR)
        off = machine.nodes_in_state(NodeState.OFF)
        assert len(off) >= 6  # enough shed to approach the cap

    def test_never_kills_jobs(self):
        machine = machine16()
        jobs = [make_job(job_id=f"j{i}", nodes=2, work=3000.0, walltime=6000.0)
                for i in range(8)]
        cap = machine.peak_power * 0.5
        policy = DynamicProvisioningPolicy(cap_watts=cap, summer_only=False,
                                           check_interval=120.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[policy])
        result = sim.run()
        assert result.metrics.jobs_killed == 0

    def test_window_average_compliance(self):
        machine = machine16()
        jobs = [make_job(job_id=f"j{i}", nodes=2, work=1800.0,
                         walltime=4000.0, submit=i * 600.0)
                for i in range(12)]
        cap = machine.peak_power * 0.6
        policy = DynamicProvisioningPolicy(cap_watts=cap, summer_only=False,
                                           window=1800.0, check_interval=120.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[policy], cap_watts_for_metrics=cap)
        result = sim.run()
        # The 30-min window average respects the cap even if instants peak.
        final_window = sim.meter.window_average(1800.0)
        assert final_window <= cap * 1.05
        assert result.metrics.jobs_killed == 0
