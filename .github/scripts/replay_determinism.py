"""CI replay-determinism check.

For each power backend: run a seeded workload to completion
(reference), then start the same workload in a child process that
checkpoints periodically and hard-kills itself (``os._exit``) right
after the first checkpoint lands mid-run.  The parent resumes from the
orphaned checkpoint file and requires a ``SimulationResult``
fingerprint identical to the uninterrupted reference.

Run from the repo root with ``PYTHONPATH=src:.`` (imports the shared
scenario builders from the test package).
"""

from __future__ import annotations

import functools
import os
import subprocess
import sys
import tempfile

from repro.state import (
    checkpoint_to,
    load_state,
    result_fingerprint,
    resume_run,
    run_checkpointed,
)
from tests.state_scenarios import build_rich

KILLED_EXIT_CODE = 17


def child(path: str, backend: str) -> None:
    """Run checkpointed and die immediately after the first checkpoint."""
    sink = checkpoint_to(path)

    def checkpoint_then_die(sim_obj) -> None:
        sink(sim_obj)
        os._exit(KILLED_EXIT_CODE)  # no cleanup, no finalize — a real kill

    run_checkpointed(build_rich(backend=backend), interval=600.0,
                     sink=checkpoint_then_die)
    raise SystemExit("run finished before the first checkpoint fired")


def main() -> int:
    for backend in ("vector", "scalar"):
        reference = result_fingerprint(build_rich(backend=backend).run())
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "campaign.ckpt")
            proc = subprocess.run(
                [sys.executable, os.path.abspath(__file__),
                 "--child", path, backend],
                env=os.environ,
            )
            if proc.returncode != KILLED_EXIT_CODE:
                print(f"FAIL [{backend}]: child exited "
                      f"{proc.returncode}, expected {KILLED_EXIT_CODE}")
                return 1
            if not os.path.exists(path):
                print(f"FAIL [{backend}]: killed run left no checkpoint")
                return 1
            resumed = resume_run(
                load_state(path),
                functools.partial(build_rich, backend=backend),
            )
            if result_fingerprint(resumed) != reference:
                print(f"FAIL [{backend}]: resumed result diverged "
                      "from the uninterrupted run")
                return 1
            print(f"OK [{backend}]: killed at first checkpoint, resumed, "
                  "result identical")
    return 0


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--child":
        child(sys.argv[2], sys.argv[3])
    sys.exit(main())
