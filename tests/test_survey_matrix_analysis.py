"""Tests for the capability matrix, geography, components, selection
and the cross-center analysis."""

import networkx as nx
import pytest

from repro.core.epa import FunctionalCategory
from repro.survey import (
    MaturityStage,
    SurveyAnalysis,
    Technique,
    build_capability_matrix,
    build_component_graph,
    map_points,
    regional_distribution,
    selection_funnel,
    verify_component_graph,
)
from repro.survey.geography import ascii_map, countries
from repro.survey.matrix import (
    TABLE1_CENTERS,
    TABLE2_CENTERS,
    render_table1,
    render_table2,
)
from repro.survey.selection import SelectionCriteria, interview_timeline


class TestCapabilityMatrix:
    def test_all_centers_in_matrix(self):
        matrix = build_capability_matrix()
        assert len(matrix.centers) == 9

    def test_table_split_matches_paper(self):
        assert TABLE1_CENTERS == ("riken", "tokyotech", "cea", "kaust", "lrz")
        assert TABLE2_CENTERS == ("stfc", "trinity", "cineca", "jcahpc")

    def test_cells_populated(self):
        matrix = build_capability_matrix()
        assert matrix.cell("kaust", MaturityStage.PRODUCTION)
        assert matrix.cell("jcahpc", MaturityStage.TECH_DEV) == []  # "-" in paper

    def test_production_counts(self):
        counts = build_capability_matrix().production_counts()
        assert all(v >= 1 for v in counts.values())
        assert counts["tokyotech"] == 4  # four production rows in Table I

    def test_technique_matrix_shape(self):
        matrix, centers, techniques = build_capability_matrix().technique_matrix()
        assert matrix.shape == (9, len(list(Technique)))
        assert matrix.any(axis=1).all()  # every center has something

    def test_render_table1_contains_rows(self):
        text = render_table1()
        assert "TABLE I" in text
        assert "RIKEN" in text
        assert "270 W" in text
        assert "LRZ" in text

    def test_render_table2_contains_rows(self):
        text = render_table2()
        assert "TABLE II" in text
        assert "JCAHPC" in text
        assert "CAPMC" in text


class TestGeography:
    def test_nine_points(self):
        points = map_points()
        assert len(points) == 9
        assert all(-90 <= p.latitude <= 90 for p in points)

    def test_regional_distribution(self):
        dist = regional_distribution()
        assert dist == {
            "Asia": 3, "Europe": 4, "Middle East": 1, "North America": 1
        }

    def test_countries(self):
        assert countries()["Japan"] == 3

    def test_ascii_map_renders(self):
        art = ascii_map()
        assert "RIKEN" in art
        # All nine markers placed (possibly with collisions).
        digits = sum(ch.isdigit() for row in art.splitlines() for ch in row
                     if row.startswith("|"))
        assert digits >= 6


class TestComponents:
    def test_graph_verifies_clean(self):
        graph = build_component_graph()
        assert verify_component_graph(graph) == []

    def test_four_categories_covered(self):
        from repro.survey.components import category_coverage

        coverage = category_coverage(build_component_graph())
        for category in FunctionalCategory:
            assert coverage[category], category

    def test_scheduler_acts_through_rm(self):
        graph = build_component_graph()
        assert graph.has_edge("job scheduler", "resource manager")
        # The scheduler does NOT touch nodes directly.
        assert not graph.has_edge("job scheduler", "compute nodes")

    def test_monitoring_loop_exists(self):
        graph = build_component_graph()
        path = nx.shortest_path(graph, "telemetry sensors", "job scheduler")
        assert "monitoring archive" in path

    def test_verification_catches_damage(self):
        graph = build_component_graph()
        graph.remove_edge("job scheduler", "resource manager")
        problems = verify_component_graph(graph)
        assert any("job scheduler -> resource manager" in p for p in problems)

    def test_verification_catches_category_gap(self):
        graph = build_component_graph()
        for node in graph.nodes:
            graph.nodes[node]["categories"] = frozenset(
                c for c in graph.nodes[node]["categories"]
                if c is not FunctionalCategory.POWER_CONTROL
            )
        problems = verify_component_graph(graph)
        assert any("energy/power control" in p for p in problems)


class TestSelection:
    def test_funnel_matches_paper(self):
        funnel = selection_funnel()
        assert funnel.identified == 11
        assert funnel.participating == 9
        assert funnel.declined == 2
        assert funnel.participation_rate == pytest.approx(9 / 11)

    def test_all_participants_pass_three_part_test(self):
        funnel = selection_funnel()
        assert all(funnel.passes_three_part_test.values())

    def test_criteria_relaxation(self):
        criteria = SelectionCriteria(require_top500=False)
        funnel = selection_funnel(criteria)
        assert funnel.participating == 9

    def test_timeline_facts(self):
        timeline = interview_timeline()
        assert timeline["start"] == "September 2016"
        assert timeline["end"] == "August 2017"


class TestAnalysis:
    def test_adoption_sorted_and_complete(self):
        analysis = SurveyAnalysis()
        records = analysis.adoption()
        counts = [r.total_centers for r in records]
        assert counts == sorted(counts, reverse=True)
        assert len(records) == len(list(Technique))

    def test_common_themes_include_vendor_coproduct(self):
        analysis = SurveyAnalysis()
        themes = {r.technique for r in analysis.common_themes(min_centers=3)}
        # Vendor co-development appears across most centers (Q5's point).
        assert Technique.VENDOR_COPRODUCT in themes
        assert Technique.POWER_AWARE_SCHEDULING in themes

    def test_unique_approaches_exist(self):
        analysis = SurveyAnalysis()
        unique = analysis.unique_approaches()
        techniques = {r.technique for r in unique}
        # Virtualized node splitting is Tokyo Tech only.
        assert Technique.VIRTUALIZATION in techniques

    def test_similarity_matrix_properties(self):
        analysis = SurveyAnalysis()
        sim, centers = analysis.similarity_matrix()
        assert sim.shape == (9, 9)
        assert (sim == sim.T).all()
        assert all(sim[i, i] == 1.0 for i in range(9))
        assert ((0.0 <= sim) & (sim <= 1.0)).all()

    def test_clustering_returns_labels(self):
        analysis = SurveyAnalysis()
        clusters = analysis.cluster_centers(num_clusters=3)
        assert set(clusters) == set(analysis.centers)
        assert len(set(clusters.values())) <= 3

    def test_most_similar_pair(self):
        a, b, score = SurveyAnalysis().most_similar_pair()
        assert a != b
        assert 0.0 < score <= 1.0

    def test_research_production_gap(self):
        gap = SurveyAnalysis().research_production_gap()
        assert gap["reached_production"]
        # Temperature modeling is research-only in the tables.
        assert Technique.TEMPERATURE_MODELING in gap["research_only"]

    def test_vendor_engagement_ranked(self):
        engagement = SurveyAnalysis().vendor_engagement()
        counts = [len(v) for v in engagement.values()]
        assert counts == sorted(counts, reverse=True)
        # SLURM/SchedMD shows up at several centers.
        assert "SchedMD (SLURM)" in engagement
        assert len(engagement["SchedMD (SLURM)"]) >= 3

    def test_stage_counts(self):
        counts = SurveyAnalysis().stage_counts()
        assert counts[MaturityStage.PRODUCTION] >= 9
        assert sum(counts.values()) >= 30

    def test_all_have_production(self):
        assert SurveyAnalysis().all_have_production()
