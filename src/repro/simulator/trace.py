"""Structured trace recording.

A :class:`TraceRecorder` is an append-only log of typed records emitted
by any component.  It is the simulation-side analogue of the long-term
monitoring archives the surveyed centers maintain (STFC: "continuously
collecting power and energy system monitoring info, data center,
machine, and job levels") — analyses are run over the trace after the
simulation, never by reaching into live objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time of the record, seconds.
    category:
        Dotted topic string, e.g. ``"job.start"``, ``"power.cap"``.
    data:
        Arbitrary payload; by convention a flat ``dict`` of primitives.
    """

    time: float
    category: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only, queryable trace log.

    Categories are dotted paths; queries match by exact category or by
    prefix (``"job"`` matches ``"job.start"`` and ``"job.end"``).
    Optional live subscribers receive records as they are emitted —
    used by telemetry aggregators and by tests.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: List[TraceRecord] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    def __len__(self) -> int:
        return len(self._records)

    def emit(self, time: float, category: str, **data: Any) -> None:
        """Record an event at *time* under *category* with payload *data*."""
        if not self.enabled:
            return
        record = TraceRecord(time, category, data)
        self._records.append(record)
        for sub in self._subscribers:
            sub(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live subscriber invoked for every new record."""
        self._subscribers.append(callback)

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Return records, optionally filtered by category prefix."""
        if category is None:
            return list(self._records)
        prefix = category + "."
        return [
            r
            for r in self._records
            if r.category == category or r.category.startswith(prefix)
        ]

    def iter_between(
        self, start: float, end: float, category: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        """Yield records with ``start <= time < end`` (prefix-filtered)."""
        prefix = None if category is None else category + "."
        for r in self._records:
            if not (start <= r.time < end):
                continue
            if category is None or r.category == category or r.category.startswith(prefix):  # type: ignore[arg-type]
                yield r

    def count(self, category: Optional[str] = None) -> int:
        """Number of records under *category* (prefix match)."""
        return len(self.records(category))

    def clear(self) -> None:
        """Drop all records (subscribers stay registered)."""
        self._records.clear()
