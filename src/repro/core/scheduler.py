"""Scheduler interface and the FCFS baseline.

"The job scheduler examines the overall set of pending work waiting to
run on the computer and makes decisions about which jobs to place next
onto the computational nodes" (Section II-A).  A scheduler here is a
pure decision function: given a :class:`SchedulingContext` snapshot it
returns the list of jobs to start *now* and on which nodes.  All
actuation (node binding, event scheduling, power control) happens in
:class:`~repro.core.simulation.ClusterSimulation`, so schedulers stay
deterministic and unit-testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Callable, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..cluster.machine import Machine
from ..cluster.node import Node
from ..workload.job import Job
from .allocator import Allocator, FirstFitAllocator, check_pool

#: C-speed node-id extraction for hot pool/sort paths.
_node_id = attrgetter("node_id")


class NodePool:
    """Insertion-ordered pool of free nodes with O(k) removal.

    Schedulers repeatedly grant a few nodes out of a large pool; the
    seed implementations rebuilt the whole pool list per started job
    (``[n for n in pool if n.node_id not in ids]`` — O(N) each).  A
    dict keyed by ``node_id`` keeps the same iteration order (Python
    dicts preserve insertion order across deletions) while removing a
    granted set in O(k).
    """

    __slots__ = ("_nodes",)

    def __init__(self, nodes: Iterable[Node]) -> None:
        nodes = list(nodes)
        self._nodes = dict(zip(map(_node_id, nodes), nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def remove_ids(self, node_ids: Iterable[int]) -> None:
        """Drop the granted nodes from the pool."""
        nodes = self._nodes
        for node_id in node_ids:
            del nodes[node_id]


@dataclass(frozen=True)
class NodeSelection:
    """Vectorized node-selection arrays handed to batch-aware
    allocators through :attr:`SchedulingContext.selection`.

    The arrays are the simulation's *live* masks and the power mirror's
    SoA columns (no copies); rows are ``machine.nodes`` positions, and
    the owning simulation only builds a selection when row order equals
    node-id order, so id-ordered allocator semantics reduce to row
    slicing.  Schedulers never mutate these — :class:`RowPool` copies
    the mask before drawing it down within a pass.
    """

    avail_mask: np.ndarray
    nodes_arr: np.ndarray
    max_power: np.ndarray
    variability: np.ndarray

    def eff_max_power(self, rows: np.ndarray) -> np.ndarray:
        """Variability-adjusted max power per row — the vector twin of
        ``Node.effective_max_power`` (same float64 product, so sort
        keys are bit-identical to the scalar path)."""
        return self.max_power[rows] * self.variability[rows]


class RowPool:
    """Row-mask twin of :class:`NodePool` for batch-aware allocators.

    Holds a private copy of the availability mask; grants clear bits.
    ``rows`` (the sorted indices of set bits) is materialized lazily
    and cached until the next removal, so phases that only test
    ``len(pool)`` never pay for it.  Because rows are id-ordered,
    iteration order is identical to the insertion-ordered
    :class:`NodePool` built from the same available list.
    """

    __slots__ = ("selection", "_mask", "_count", "_rows")

    def __init__(self, selection: NodeSelection, count: Optional[int] = None) -> None:
        self.selection = selection
        self._mask = selection.avail_mask.copy()
        self._count = (
            int(np.count_nonzero(self._mask)) if count is None else int(count)
        )
        self._rows: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self._count

    @property
    def rows(self) -> np.ndarray:
        """Row indices currently in the pool, ascending (== id order)."""
        if self._rows is None:
            self._rows = np.flatnonzero(self._mask)
        return self._rows

    def remove_rows(self, rows: np.ndarray) -> None:
        """Drop the granted rows from the pool."""
        self._mask[rows] = False
        self._count -= int(rows.size)
        self._rows = None

    def materialize(self, rows: np.ndarray) -> List[Node]:
        """Node objects for *rows* (the start-decision payload)."""
        return self.selection.nodes_arr[rows].tolist()

    def __iter__(self) -> Iterator[Node]:
        return iter(self.selection.nodes_arr[self.rows].tolist())


@dataclass(frozen=True)
class RunningJobInfo:
    """Scheduler-visible view of one running job.

    ``expected_end`` is based on the user's walltime request — a hard
    upper bound, since jobs are terminated at their walltime.  This is
    what makes backfill reservations sound even when power management
    slows jobs down.
    """

    job: Job
    node_ids: Tuple[int, ...]
    expected_end: float


class SchedulingContext:
    """Snapshot handed to :meth:`Scheduler.schedule`.

    ``available`` and ``running`` are *lazy*: a caller may pass the
    materialized lists (tests, reference paths) or zero-argument
    factories that build them on first access (the owning simulation's
    hot path).  Batch-aware schedulers that work on ``selection`` rows
    and :meth:`free_count` then never pay the object-list build — the
    dominant per-pass cost on a congested large machine.  Factories
    must be pure reads of live simulation state; they are only valid
    until the scheduling pass applies its decisions (the simulation
    never mutates node state while a scheduler is deciding).

    Attributes
    ----------
    now:
        Current simulated time.
    machine:
        The machine (read-only use).
    pending:
        Queued jobs in merged priority order.
    available:
        Idle nodes usable right now (already filtered by policies,
        e.g. maintenance-affected nodes removed).  Materialized on
        first access when backed by a factory.
    running:
        Running-job views with conservative end estimates.
        Materialized on first access when backed by a factory.
    admit:
        EPA admission predicate: policies veto job starts (power
        budget exceeded, prediction says too hungry, ...).  Schedulers
        must consult it before deciding to start a job.
    usable_node_count:
        Number of nodes that can eventually become available (powered
        or bootable, not down/maintenance) — the capacity horizon for
        reservations.
    selection:
        Optional :class:`NodeSelection` with vectorized availability /
        power arrays.  Present only when the owning simulation can
        guarantee it matches ``available`` exactly (vector power
        backend, id-ordered rows, no node-filter policies); schedulers
        build a :class:`RowPool` from it instead of a
        :class:`NodePool` when the allocator supports row selection.
    trivial_admit:
        True when the owning simulation has **zero** policies, so the
        ``admit`` predicate is the vacuous ``all(() )`` and calling it
        is unobservable.  Batched scheduler paths may then skip the
        per-job admission call entirely; any policy (even one that
        always admits) forces the hook-visiting reference path.
    pending_arrays:
        Optional ``(nodes_required, walltime)`` SoA columns aligned
        with ``pending`` (the :class:`~repro.core.jobtable.JobTable`
        gather).  Present only when no shaping policy may rewrite jobs
        during the pass; read-only.
    """

    __slots__ = (
        "now",
        "machine",
        "pending",
        "admit",
        "usable_node_count",
        "selection",
        "trivial_admit",
        "pending_arrays",
        "_available",
        "_running",
        "_available_factory",
        "_running_factory",
        "_avail_count",
    )

    def __init__(
        self,
        now: float,
        machine: Machine,
        pending: List[Job],
        available: Optional[List[Node]] = None,
        running: Optional[List[RunningJobInfo]] = None,
        admit: Callable[[Job], bool] = lambda job: True,
        usable_node_count: int = 0,
        selection: Optional[NodeSelection] = None,
        available_factory: Optional[Callable[[], List[Node]]] = None,
        running_factory: Optional[Callable[[], List[RunningJobInfo]]] = None,
        avail_count: Optional[int] = None,
        trivial_admit: bool = False,
        pending_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        if available is None and available_factory is None:
            raise TypeError(
                "SchedulingContext needs available or available_factory"
            )
        self.now = now
        self.machine = machine
        self.pending = pending
        self.admit = admit
        self.usable_node_count = usable_node_count
        self.selection = selection
        self.trivial_admit = trivial_admit
        self.pending_arrays = pending_arrays
        self._available = available
        self._available_factory = available_factory
        self._running = running if running is not None else (
            [] if running_factory is None else None
        )
        self._running_factory = running_factory
        self._avail_count = (
            len(available) if avail_count is None else int(avail_count)
        )

    @property
    def available(self) -> List[Node]:
        """Idle usable nodes (id order); materialized on first access."""
        nodes = self._available
        if nodes is None:
            nodes = self._available_factory()
            self._available = nodes
        return nodes

    @property
    def running(self) -> List[RunningJobInfo]:
        """Running-job views; materialized on first access."""
        jobs = self._running
        if jobs is None:
            jobs = self._running_factory()
            self._running = jobs
        return jobs

    def free_count(self) -> int:
        """Number of immediately usable nodes — O(1), never
        materializes the ``available`` list."""
        return self._avail_count


@dataclass(frozen=True)
class StartDecision:
    """One job start: which job, on which nodes."""

    job: Job
    nodes: Tuple[Node, ...]


class Scheduler:
    """Base class for schedulers.

    Parameters
    ----------
    allocator:
        Node-selection strategy used once a job is cleared to start.
    """

    name = "base"

    def __init__(self, allocator: Optional[Allocator] = None) -> None:
        self.allocator = allocator or FirstFitAllocator()

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        """Return the job starts to perform at ``ctx.now``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _allocate(
        self, ctx: SchedulingContext, job: Job, pool: Iterable[Node]
    ) -> Tuple[Node, ...]:
        """Pick nodes for *job* from *pool* via the allocator."""
        chosen = self.allocator.select(ctx.machine, list(pool), job.nodes)
        return tuple(chosen)

    def _make_pool(
        self, ctx: SchedulingContext
    ) -> Union[NodePool, RowPool]:
        """Pool of grantable nodes for one pass: a :class:`RowPool`
        over the context's selection arrays when both the context and
        the allocator support it, else the object :class:`NodePool`.
        Both iterate in the same (id) order, and grants through
        :meth:`_grant` are pinned decision-identical."""
        selection = ctx.selection
        if selection is not None and self.allocator.supports_rows:
            return RowPool(selection, count=ctx.free_count())
        return NodePool(ctx.available)

    def _grant(
        self,
        ctx: SchedulingContext,
        job: Job,
        pool: Union[NodePool, RowPool],
    ) -> Tuple[Node, ...]:
        """Pick nodes for *job* and remove them from *pool*."""
        if type(pool) is RowPool:
            check_pool(len(pool), job.nodes)
            rows = self.allocator.select_rows(pool, job.nodes)
            nodes = tuple(pool.materialize(rows))
            pool.remove_rows(rows)
            return nodes
        nodes = self._allocate(ctx, job, pool)
        pool.remove_ids(n.node_id for n in nodes)
        return nodes


class FcfsScheduler(Scheduler):
    """Strict first-come-first-served.

    Starts jobs in queue order; the first job that cannot start (not
    enough nodes, or vetoed by admission) blocks everything behind it.
    The canonical lower-bound baseline of the backfilling literature.
    """

    name = "fcfs"

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        self.allocator.begin_pass(ctx.now)
        decisions: List[StartDecision] = []
        # Lazy pool: on a congested machine most passes block on the
        # head job, and keying every available node into a pool that is
        # never drawn from is the dominant per-pass cost.  The fit
        # check only needs the count; the pool is built when the first
        # job actually clears both gates (preserving the exact
        # admit-call sequence — admission hooks count vetoes).
        pool: Optional[Union[NodePool, RowPool]] = None
        free = ctx.free_count()
        for job in ctx.pending:
            if job.nodes > (free if pool is None else len(pool)):
                break
            if not ctx.admit(job):
                break
            if pool is None:
                pool = self._make_pool(ctx)
            decisions.append(StartDecision(job, self._grant(ctx, job, pool)))
        return decisions
