"""Experiment ``fig1``: the EPA JSRM component-interaction diagram.

Figure 1 shows the components of a typical EPA JSRM solution and their
interactions, organized around four functional categories.  The bench
rebuilds the graph, verifies every structural claim, and renders the
edge list + category coverage as the artifact.
"""

from __future__ import annotations

from repro.core.epa import FunctionalCategory
from repro.survey.components import (
    build_component_graph,
    category_coverage,
    verify_component_graph,
)

from .conftest import write_artifact


def _render() -> str:
    graph = build_component_graph()
    lines = ["FIGURE 1 — EPA JSRM component interactions", ""]
    lines.append("Functional category coverage:")
    for category, members in category_coverage(graph).items():
        lines.append(f"  {category.value:28s}: {', '.join(sorted(members))}")
    lines.append("")
    lines.append("Interactions:")
    for source, target, attrs in graph.edges(data=True):
        lines.append(f"  {source:28s} -> {target:28s} [{attrs['label']}]")
    return "\n".join(lines)


def test_bench_fig1_verification(benchmark, artifact_dir):
    def build_and_verify():
        graph = build_component_graph()
        return graph, verify_component_graph(graph)

    graph, problems = benchmark(build_and_verify)
    write_artifact("fig1", _render())
    assert problems == []
    # The paper's headline counts: four categories, one integrated system.
    coverage = category_coverage(graph)
    assert len(coverage) == 4
    assert all(coverage[c] for c in FunctionalCategory)
    # The scheduler and resource manager both monitor-and-control.
    assert graph.has_edge("job scheduler", "resource manager")
    assert graph.has_edge("telemetry sensors", "monitoring archive")
