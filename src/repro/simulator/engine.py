"""The discrete-event simulator core.

A thin, fast event loop: a binary heap of :class:`Event` objects, a
monotonically non-decreasing clock, and helpers for one-shot, delayed
and periodic callbacks.  Determinism guarantees:

* events at the same ``(time, priority)`` fire in scheduling order
  (FIFO via a monotone sequence counter);
* cancellation is O(1) (tombstoning) and never perturbs ordering;
* the clock never moves backwards — scheduling strictly in the past
  raises :class:`~repro.errors.EventOrderError`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import EventOrderError, SimulationError
from .events import Event, EventPriority


class EventHandle:
    """Opaque, cancellable reference to a scheduled event."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Optional[Simulator]" = None) -> None:
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        """Simulated time at which the event will fire."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled/fired)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        A first effective cancel turns the heap entry into a tombstone:
        the owning simulator's live count drops and its tombstone count
        grows (possibly triggering heap compaction).  Cancelling an
        already-fired or already-cancelled event changes no counters.
        """
        event = self._event
        if event.cancelled or event.done:
            event.cancelled = True
            return
        event.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._live -= 1
            sim._tombstones += 1
            sim._maybe_compact()


class PeriodicChain:
    """State of one ``every()`` chain.

    Each firing schedules the next via the bound ``_tick`` method, so
    the pending heap entry of a periodic chain is introspectable (the
    state subsystem recognizes ``event.action.__self__`` as a
    :class:`PeriodicChain` and serializes the chain parameters instead
    of an opaque closure).
    """

    __slots__ = ("sim", "interval", "action", "args", "priority", "name",
                 "until", "cancelled", "handle")

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        action: Callable[..., Any],
        args: tuple,
        priority: int,
        name: str,
        until: Optional[float],
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.action = action
        self.args = args
        self.priority = priority
        self.name = name
        self.until = until
        self.cancelled = False
        self.handle: Optional[EventHandle] = None

    def _tick(self) -> None:
        if self.cancelled:
            return
        self.action(*self.args)
        next_time = self.sim._now + self.interval
        if self.until is not None and next_time > self.until:
            return
        self.handle = self.sim.at(
            next_time, self._tick, priority=self.priority, name=self.name
        )


class _ChainHandle(EventHandle):
    """Handle over a whole periodic chain (cancels all future firings)."""

    __slots__ = ("_chain",)

    def __init__(self, chain: PeriodicChain) -> None:
        self._chain = chain

    @property
    def time(self) -> float:
        return self._chain.handle.time

    @property
    def active(self) -> bool:
        return not self._chain.cancelled and self._chain.handle.active

    def cancel(self) -> None:
        self._chain.cancelled = True
        self._chain.handle.cancel()


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.  Defaults to
        zero; center scenarios that model calendar effects (seasonal
        capping, diurnal load) pick an epoch offset instead.
    """

    #: Tombstone compaction threshold: compact once more than half the
    #: heap is cancelled events (and the absolute count is non-trivial).
    _COMPACT_MIN_TOMBSTONES = 16

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._events_fired = 0
        # Live (scheduled, not yet fired or cancelled) and tombstoned
        # (cancelled but still in the heap) event counts.  `pending`
        # used to scan the whole heap per call — O(H) with H inflated
        # by tombstones; cap-heavy runs cancel and reschedule a
        # completion event per speed change, so both the scan and the
        # heap itself grew without bound.
        self._live = 0
        self._tombstones = 0
        #: Optional hook invoked as ``observer(event)`` after each event
        #: fires (post-state).  Used by repro.state.replay to record
        #: per-event fingerprint streams without perturbing ordering.
        self.observer: Optional[Callable[[Event], None]] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (for throughput benches)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live events awaiting execution.  O(1).

        Cancelled events (tombstones) still sitting in the heap are
        not counted — they will be skipped, never fired.
        """
        return self._live

    @property
    def heap_size(self) -> int:
        """Heap entries including tombstones (observability for the
        compaction invariant: bounded by ~2x the live count)."""
        return len(self._heap)

    def _maybe_compact(self) -> None:
        """Drop tombstones once they outnumber live heap entries.

        Rebuilding via ``heapify`` is O(H) and safe for determinism:
        events have a strict total order (time, priority, seq), so the
        pop sequence of a heap depends only on its multiset of events,
        not on their internal arrangement.
        """
        if (
            self._tombstones > self._COMPACT_MIN_TOMBSTONES
            and 2 * self._tombstones > len(self._heap)
        ):
            self._heap = [e for e in self._heap if not e.cancelled]
            heapq.heapify(self._heap)
            self._tombstones = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
        name: str = "",
    ) -> EventHandle:
        """Schedule *action(*args)* at absolute simulated *time*."""
        if time < self._now:
            raise EventOrderError(
                f"cannot schedule {name or action!r} at t={time} "
                f"(clock is at t={self._now})"
            )
        event = Event(float(time), int(priority), self._seq, action, args, name)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self)

    def after(
        self,
        delay: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
        name: str = "",
    ) -> EventHandle:
        """Schedule *action(*args)* after *delay* seconds from now."""
        if delay < 0:
            raise EventOrderError(f"negative delay {delay} for {name or action!r}")
        return self.at(self._now + delay, action, *args, priority=priority, name=name)

    def every(
        self,
        interval: float,
        action: Callable[..., Any],
        *args: Any,
        priority: int = EventPriority.DEFAULT,
        name: str = "",
        start_offset: Optional[float] = None,
        until: Optional[float] = None,
    ) -> EventHandle:
        """Schedule *action* periodically every *interval* seconds.

        The returned handle cancels the whole periodic chain.  The first
        firing is at ``now + (start_offset if given else interval)``;
        firings stop once the next slot would exceed *until* (if given).
        """
        if interval <= 0:
            raise SimulationError(f"periodic interval must be > 0, got {interval}")

        first = self._now + (interval if start_offset is None else start_offset)
        if until is not None and first > until:
            # Nothing to do; return an already-cancelled handle.
            dummy = Event(self._now, int(priority), self._seq, lambda: None)
            self._seq += 1
            dummy.cancelled = True  # never entered the heap: no counters
            return EventHandle(dummy, self)
        chain = PeriodicChain(
            self, float(interval), action, args, int(priority),
            name or "periodic", until,
        )
        chain.handle = self.at(first, chain._tick, priority=priority, name=chain.name)
        return _ChainHandle(chain)

    # ------------------------------------------------------------------
    # State capture/restore support (used by repro.state)
    # ------------------------------------------------------------------
    def iter_live_events(self) -> List[Event]:
        """Live (pending, not cancelled) events in firing order.

        Sorted by the event total order ``(time, priority, seq)`` —
        exactly the order :meth:`step` would pop them.
        """
        return sorted(e for e in self._heap if not e.cancelled)

    def clear_events(self) -> None:
        """Drop every pending event (restore support: the state
        subsystem wipes a freshly-built simulation's heap before
        grafting the captured one).

        Cleared events are marked cancelled+done so any handle still
        pointing at one becomes a no-op instead of corrupting the
        live/tombstone counters.
        """
        for event in self._heap:
            event.cancelled = True
            event.done = True
        self._heap.clear()
        self._live = 0
        self._tombstones = 0

    def restore_clock(self, now: float, seq: int, events_fired: int) -> None:
        """Overwrite clock/sequence counters with captured values.

        The sequence counter must be restored exactly: future events
        scheduled after a restore must receive the same seq numbers
        (and hence the same FIFO tie-breaks) as in the original run.
        """
        self._now = float(now)
        self._seq = int(seq)
        self._events_fired = int(events_fired)

    def restore_event(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[..., Any],
        args: tuple = (),
        name: str = "",
    ) -> EventHandle:
        """Re-plant a captured event with its original sequence number.

        Unlike :meth:`at` this does not consume the seq counter — the
        caller replays recorded seqs and restores the counter itself
        via :meth:`restore_clock`.
        """
        event = Event(float(time), int(priority), int(seq), action, tuple(args), name)
        heapq.heappush(self._heap, event)
        self._live += 1
        return EventHandle(event, self)

    def restore_periodic(
        self,
        interval: float,
        action: Callable[..., Any],
        args: tuple,
        priority: int,
        name: str,
        until: Optional[float],
        next_time: float,
        seq: int,
    ) -> EventHandle:
        """Re-plant a periodic chain with its pending tick at *next_time*
        carrying the captured *seq*.  Returns the chain handle."""
        chain = PeriodicChain(
            self, float(interval), action, tuple(args), int(priority),
            name or "periodic", until,
        )
        chain.handle = self.restore_event(
            next_time, priority, seq, chain._tick, (), chain.name
        )
        return _ChainHandle(chain)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            event.done = True
            self._live -= 1
            self._now = event.time
            self._events_fired += 1
            event.fire()
            if self.observer is not None:
                self.observer(event)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time; the clock is then
            advanced exactly to *until*.  ``None`` runs to exhaustion.
        max_events:
            Safety valve for runaway simulations; raises
            :class:`SimulationError` when exceeded.

        Returns the final clock value.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._heap:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    self._tombstones -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                event.done = True
                self._live -= 1
                self._now = event.time
                self._events_fired += 1
                event.fire()
                if self.observer is not None:
                    self.observer(event)
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until is not None and until > self._now:
                self._now = float(until)
        finally:
            self._running = False
        return self._now
