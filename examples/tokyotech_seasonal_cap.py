#!/usr/bin/env python
"""Tokyo Tech's production deployment: windowed cap tracking by
dynamic node provisioning.

Table I: "Resource manager dynamically boots or shuts down nodes to
stay under power cap (summer only, enforced over ~30 min window).
Interacts with job scheduler to avoid killing jobs."

The example runs a summer day on the TSUBAME-like scenario, then
prints the 30-minute window-averaged power against the cap and the
boot/shutdown actuation the resource manager performed, demonstrating
the cooperative guarantee: the cap holds with zero jobs killed.

Run:  python examples/tokyotech_seasonal_cap.py
"""

import numpy as np

from repro.centers import build_center_simulation
from repro.compat import trapezoid
from repro.units import HOUR


def main() -> None:
    build = build_center_simulation("tokyotech", seed=11,
                                    duration=12 * HOUR, nodes=96)
    sim = build.simulation
    policy = sim.policies[0]
    print("Tokyo Tech scenario:")
    for note in build.notes:
        print(f"  - {note}")
    print(f"  ambient now: "
          f"{sim.site.ambient.temperature(sim.sim.now):.1f} C "
          f"(summer: {sim.site.ambient.is_summer(sim.sim.now)})")

    result = sim.run()
    m = result.metrics

    times, watts = result.meter.series()
    # 30-minute rolling window average of machine power.
    window = 1800.0
    window_avgs = []
    for i, t in enumerate(times):
        mask = (times >= t - window) & (times <= t)
        if mask.sum() >= 2:
            window_avgs.append(trapezoid(watts[mask], times[mask])
                               / (times[mask][-1] - times[mask][0]))
    window_avgs = np.array(window_avgs) if window_avgs else np.array([0.0])

    print()
    print(f"cap                      : {policy.cap_watts / 1e3:.1f} kW")
    print(f"max 30-min window average: {window_avgs.max() / 1e3:.1f} kW")
    print(f"instantaneous peak       : {m.peak_power_watts / 1e3:.1f} kW")
    print(f"window compliance        : "
          f"{(window_avgs <= policy.cap_watts * 1.02).mean():.1%} of samples")
    print(f"boots / shutdowns        : {sim.rm.boots_initiated} / "
          f"{sim.rm.shutdowns_initiated}")
    print(f"jobs killed              : {m.jobs_killed}  "
          f"(the cooperative guarantee)")
    print(f"completed                : {m.jobs_completed}/{m.jobs_submitted}")

    from repro.analysis import render_sparkline

    print("\nmachine power over the run (sparkline):")
    print(f"  {render_sparkline(watts, width=70)}")

    # The energy reports Tokyo Tech delivers to users at job end.
    reporting = sim.policies[-1]
    sample = reporting.reports[:3]
    print("\nfirst three post-job energy reports:")
    for report in sample:
        print(f"  {report.job_id}: {report.energy_joules / 3.6e6:.2f} kWh, "
              f"avg {report.average_watts / 1e3:.2f} kW, "
              f"grade {report.grade}")


if __name__ == "__main__":
    main()
