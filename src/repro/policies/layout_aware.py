"""Layout-aware scheduling — CEA's SLURM 'layout logic'.

Table I, CEA technology development: "Developing 'layout logic' in
SLURM, be able to tell what PDUs/Chillers a node or rack depends on
and avoid scheduling jobs on them when maintenance".  The policy
filters the allocatable pool: nodes whose facility dependencies have a
maintenance window opening within the lookahead horizon are withheld,
so no job is started that would have to be killed (or would lose
cooling) when the window opens.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cluster.node import Node
from ..core.epa import FunctionalCategory
from ..errors import PolicyError
from ..units import check_non_negative
from .base import Policy


class LayoutAwarePolicy(Policy):
    """Withhold nodes with upcoming facility maintenance.

    Parameters
    ----------
    horizon:
        Lookahead, seconds.  A job started now is assumed to possibly
        still run *horizon* seconds from now, so any node whose PDU or
        chiller has maintenance starting within the horizon is
        withheld.  Typically set to the queue's max walltime.
    """

    name = "layout-aware"

    def __init__(self, horizon: float = 24 * 3600.0) -> None:
        super().__init__()
        self.horizon = check_non_negative("horizon", horizon)
        self.withheld_node_passes = 0

    def on_attach(self) -> None:
        if self.simulation.site is None:
            raise PolicyError("layout-aware policy needs a site (facility map)")

    def filter_nodes(self, nodes: List[Node], now: float) -> List[Node]:
        facility = self.simulation.site.facility
        affected = facility.nodes_under_maintenance(now, self.horizon)
        if not affected:
            return nodes
        kept = [n for n in nodes if n.node_id not in affected]
        self.withheld_node_passes += len(nodes) - len(kept)
        return kept

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "layout-logic",
                FunctionalCategory.RESOURCE_MONITORING,
                "node -> PDU/chiller dependency map with maintenance windows",
            ),
            (
                "maintenance-filter",
                FunctionalCategory.RESOURCE_CONTROL,
                f"withhold dependent nodes {self.horizon / 3600:.0f}h ahead",
            ),
        ]
