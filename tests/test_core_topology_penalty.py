"""Tests for the Q6 placement-to-performance coupling."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.cluster.topology import build_fat_tree
from repro.core import ClusterSimulation, EasyBackfillScheduler, FcfsScheduler
from repro.core.allocator import TopologyAwareAllocator
from repro.workload.phases import COMM_BOUND, COMPUTE_BOUND
from tests.conftest import make_job


def topo_machine(nodes=32):
    spec = MachineSpec(name="m", nodes=nodes, nodes_per_cabinet=8)
    return Machine(spec, topology=build_fat_tree(nodes, arity=8))


class TestPlacementPenalty:
    def test_disabled_by_default(self):
        machine = topo_machine()
        job = make_job(nodes=8, work=100.0, walltime=500.0,
                       profile=COMM_BOUND)
        sim = ClusterSimulation(machine, FcfsScheduler(), [job])
        sim.run()
        assert job.run_time == pytest.approx(100.0)

    def test_compact_placement_no_penalty(self):
        machine = topo_machine()
        # First-fit on an empty machine gives nodes 0..7: one switch
        # away at most (cost ~2-4 on the two-level tree).
        job = make_job(nodes=4, work=100.0, walltime=500.0,
                       profile=COMM_BOUND)
        sim = ClusterSimulation(machine, FcfsScheduler(), [job],
                                comm_penalty=0.5)
        sim.run()
        # Intra-switch placement: cost 2, zero excess, zero penalty.
        assert job.run_time == pytest.approx(100.0)

    def test_spread_placement_slows_comm_job(self):
        machine = topo_machine()

        class ScatterAllocator(TopologyAwareAllocator):
            """Worst-case: pick nodes one per switch."""

            def select(self, machine, available, count):
                ordered = sorted(available, key=lambda n: n.node_id)
                return ordered[::8][:count] if len(ordered[::8]) >= count \
                    else ordered[:count]

        job = make_job(nodes=4, work=100.0, walltime=500.0,
                       profile=COMM_BOUND)
        sim = ClusterSimulation(
            machine, FcfsScheduler(allocator=ScatterAllocator()), [job],
            comm_penalty=0.5,
        )
        sim.run()
        # All pairs 4 hops: excess = 1, comm fraction 1.0 -> 1.5x.
        assert job.run_time == pytest.approx(150.0)

    def test_compute_bound_immune_to_placement(self):
        machine = topo_machine()

        class ScatterAllocator(TopologyAwareAllocator):
            def select(self, machine, available, count):
                ordered = sorted(available, key=lambda n: n.node_id)
                return ordered[::8][:count]

        job = make_job(nodes=4, work=100.0, walltime=500.0,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(
            machine, FcfsScheduler(allocator=ScatterAllocator()), [job],
            comm_penalty=0.5,
        )
        sim.run()
        assert job.run_time == pytest.approx(100.0)

    def test_single_node_job_immune(self):
        machine = topo_machine()
        job = make_job(nodes=1, work=100.0, walltime=500.0,
                       profile=COMM_BOUND)
        sim = ClusterSimulation(machine, FcfsScheduler(), [job],
                                comm_penalty=0.5)
        sim.run()
        assert job.run_time == pytest.approx(100.0)

    def test_topology_aware_allocator_beats_scatter_end_to_end(self):
        # The Q6 claim quantified: same workload, same machine, only
        # the allocator differs.
        import copy

        jobs = [
            make_job(job_id=f"j{i}", nodes=4, work=300.0, walltime=2000.0,
                     profile=COMM_BOUND, submit=float(i))
            for i in range(12)
        ]

        def run(allocator):
            machine = topo_machine()
            sim = ClusterSimulation(
                machine, EasyBackfillScheduler(allocator=allocator),
                copy.deepcopy(jobs), comm_penalty=0.5,
            )
            return sim.run().metrics

        class ScatterAllocator(TopologyAwareAllocator):
            def select(self, machine, available, count):
                ordered = sorted(available, key=lambda n: n.node_id)
                step = max(1, len(ordered) // count)
                picked = ordered[::step][:count]
                return picked if len(picked) == count else ordered[:count]

        aware = run(TopologyAwareAllocator())
        scattered = run(ScatterAllocator())
        assert aware.makespan < scattered.makespan
        # Energy-to-solution also improves (shorter runtimes).
        assert aware.total_energy_joules < scattered.total_energy_joules
