"""Scalar-vs-vectorized power equivalence.

``NodePowerModel.operating_point`` is the executable spec;
``VectorPowerMirror`` re-implements it as array kernels.  The sweeps
here randomize node state (all six states), caps — including caps
below idle power, which the scalar model flags as violations —
DVFS settings, manufacturing variability and job intensities, and
assert the kernel matches the spec field for field to 1e-9.  The
end-to-end test runs the same seeded workload under both
``power_backend`` settings and compares the physics outputs.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, MachineSpec, Node, NodeState
from repro.core import ClusterSimulation, EasyBackfillScheduler, FcfsScheduler
from repro.errors import ConfigurationError
from repro.policies.dvfs_budget import DvfsBudgetPolicy
from repro.power import NodePowerModel, VectorPowerMirror
from repro.simulator import RngStreams
from repro.units import HOUR
from repro.workload import WorkloadGenerator, WorkloadSpec
from tests.conftest import make_job

ALL_STATES = list(NodeState)


def random_machine(rnd: random.Random, n: int = 48) -> Machine:
    machine = Machine(MachineSpec(name="rand", nodes=n, nodes_per_cabinet=16))
    for node in machine.nodes:
        node.idle_power = rnd.uniform(40.0, 180.0)
        node.max_power = node.idle_power + rnd.uniform(0.0, 400.0)
        node.off_power = rnd.uniform(0.0, 10.0)
        node.variability = rnd.uniform(0.75, 1.25)
        node.min_frequency = rnd.uniform(0.8e9, 1.6e9)
        node.max_frequency = node.min_frequency + rnd.uniform(0.1e9, 1.4e9)
        node.frequency = rnd.uniform(node.min_frequency, node.max_frequency)
        node.state = rnd.choice(ALL_STATES)
        # Caps below idle power are legal model inputs (hardware can be
        # handed an unenforceable cap) even though set_power_cap rejects
        # them — write the field directly to exercise the violation path.
        roll = rnd.random()
        if roll < 0.25:
            node.power_cap = None
        elif roll < 0.50:
            node.power_cap = rnd.uniform(0.3 * node.idle_power, node.idle_power)
        else:
            node.power_cap = rnd.uniform(
                node.idle_power, node.effective_max_power * 1.1
            )
    return machine


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_operating_points_match_scalar_model(self, seed):
        rnd = random.Random(seed)
        machine = random_machine(rnd)
        model = NodePowerModel(
            alpha=rnd.choice([1.5, 2.0, 2.7]),
            boot_power_fraction=rnd.uniform(0.2, 0.9),
            shutdown_power_fraction=rnd.uniform(0.5, 1.5),
        )
        mirror = VectorPowerMirror(machine, model)
        utils = [rnd.random() for _ in machine.nodes]
        senss = [rnd.random() for _ in machine.nodes]
        mirror.utilization[:] = utils
        mirror.sensitivity[:] = senss

        op = mirror.operating_points()
        for row, node in enumerate(machine.nodes):
            sample = model.operating_point(node, utils[row], senss[row])
            assert op.watts[row] == pytest.approx(sample.watts, abs=1e-9)
            assert op.frequency_ratio[row] == pytest.approx(
                sample.frequency_ratio, abs=1e-9
            )
            assert op.speed[row] == pytest.approx(sample.speed, abs=1e-9)
            assert bool(op.cap_violated[row]) is sample.cap_violated

    @pytest.mark.parametrize("seed", range(4))
    def test_subset_rows_match_full_kernel(self, seed):
        rnd = random.Random(100 + seed)
        machine = random_machine(rnd)
        mirror = VectorPowerMirror(machine, NodePowerModel())
        rows = np.asarray(sorted(rnd.sample(range(len(machine.nodes)), 17)))
        full = mirror.operating_points()
        sub = mirror.operating_points(rows)
        np.testing.assert_array_equal(sub.watts, full.watts[rows])
        np.testing.assert_array_equal(sub.speed, full.speed[rows])
        np.testing.assert_array_equal(sub.cap_violated, full.cap_violated[rows])

    @given(
        idle=st.floats(min_value=10.0, max_value=500.0),
        dyn_span=st.floats(min_value=0.0, max_value=1000.0),
        cap_frac=st.floats(min_value=0.1, max_value=1.5),
        util=st.floats(min_value=0.0, max_value=1.0),
        sens=st.floats(min_value=0.0, max_value=1.0),
        freq_frac=st.floats(min_value=0.0, max_value=1.0),
        state=st.sampled_from(ALL_STATES),
    )
    @settings(max_examples=200, deadline=None)
    def test_single_node_property(
        self, idle, dyn_span, cap_frac, util, sens, freq_frac, state
    ):
        node = Node(0, idle_power=idle, max_power=idle + dyn_span)
        node.state = state
        node.frequency = node.min_frequency + freq_frac * (
            node.max_frequency - node.min_frequency
        )
        node.power_cap = cap_frac * idle  # spans below and above idle
        machine = Machine(
            MachineSpec(name="one", nodes=1, idle_power=idle,
                        max_power=idle + dyn_span),
            nodes=[node],
        )
        model = NodePowerModel()
        mirror = VectorPowerMirror(machine, model)
        mirror.utilization[0] = util
        mirror.sensitivity[0] = sens
        op = mirror.operating_points()
        sample = model.operating_point(node, util, sens)
        assert op.watts[0] == pytest.approx(sample.watts, abs=1e-9)
        assert op.frequency_ratio[0] == pytest.approx(
            sample.frequency_ratio, abs=1e-9
        )
        assert op.speed[0] == pytest.approx(sample.speed, abs=1e-9)
        assert bool(op.cap_violated[0]) is sample.cap_violated

    @pytest.mark.parametrize("seed", range(4))
    def test_frequencies_for_cap_match_scalar(self, seed):
        rnd = random.Random(200 + seed)
        machine = random_machine(rnd)
        model = NodePowerModel(alpha=rnd.choice([1.7, 2.0]))
        mirror = VectorPowerMirror(machine, model)
        rows = np.arange(len(machine.nodes))
        util = rnd.random()
        caps = np.asarray(
            [rnd.uniform(0.2 * n.idle_power, 1.2 * n.effective_max_power)
             for n in machine.nodes]
        )
        freqs = mirror.frequencies_for_cap(rows, caps, util)
        for row, node in enumerate(machine.nodes):
            expected = model.frequency_for_cap(node, caps[row], util)
            assert freqs[row] == pytest.approx(expected, abs=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_power_at_ratio_matches_scalar(self, seed):
        rnd = random.Random(300 + seed)
        machine = random_machine(rnd)
        model = NodePowerModel()
        mirror = VectorPowerMirror(machine, model)
        rows = np.arange(len(machine.nodes))
        ratios = np.asarray([rnd.uniform(0.0, 1.3) for _ in machine.nodes])
        util = rnd.random()
        watts = mirror.power_at_ratio(rows, ratios, util)
        for row, node in enumerate(machine.nodes):
            expected = model.power_at_ratio(node, ratios[row], util)
            assert watts[row] == pytest.approx(expected, abs=1e-9)

    def test_bind_clamps_out_of_range_intensities(self):
        machine = Machine(MachineSpec(name="m", nodes=4))
        mirror = VectorPowerMirror(machine, NodePowerModel())
        rows = np.asarray([0, 2])
        mirror.bind(rows, utilization=1.7, sensitivity=-0.3)
        assert mirror.utilization[0] == 1.0
        assert mirror.sensitivity[2] == 0.0
        mirror.unbind(rows)
        assert mirror.utilization[0] == 1.0
        assert mirror.sensitivity[2] == 1.0


def full_scalar_sum(csim: ClusterSimulation) -> float:
    return sum(
        csim._node_operating_point(n).watts for n in csim.machine.nodes
    )


class TestMirrorAccounting:
    def test_incremental_total_tracks_mutations(self):
        machine = Machine(MachineSpec(name="m", nodes=24, nodes_per_cabinet=8))
        csim = ClusterSimulation(machine, FcfsScheduler(), [])
        assert csim.power_vector is not None
        assert csim.machine_power() == pytest.approx(full_scalar_sum(csim))
        csim.rm.set_power_cap(machine.nodes[:5], 140.0)
        csim.rm.set_frequency(machine.nodes[3:9], machine.nodes[0].min_frequency)
        csim.rm.shutdown_nodes(machine.nodes[20:])
        assert csim.machine_power() == pytest.approx(full_scalar_sum(csim))

    def test_invalid_backend_rejected(self):
        machine = Machine(MachineSpec(name="m", nodes=2))
        with pytest.raises(ConfigurationError):
            ClusterSimulation(machine, FcfsScheduler(), [], power_backend="simd")

    def test_node_watts_matches_reference_loop(self):
        machine = Machine(MachineSpec(name="m", nodes=12, nodes_per_cabinet=4))
        job = make_job(job_id="a", nodes=5, work=500.0, walltime=900.0)
        csim = ClusterSimulation(machine, FcfsScheduler(), [job])
        csim.prepare()
        csim.sim.run(until=100.0)
        per_node = csim.node_watts()
        for row, node in enumerate(machine.nodes):
            assert per_node[row] == pytest.approx(
                csim._node_operating_point(node).watts, abs=1e-9
            )

    def test_force_resum_matches_incremental_total(self):
        machine = Machine(MachineSpec(name="m", nodes=16, nodes_per_cabinet=4))
        csim = ClusterSimulation(machine, FcfsScheduler(), [])
        csim.rm.set_power_cap(machine.nodes[:4], 150.0)
        incremental = csim.machine_power()
        csim.power_vector.force_resum()
        assert csim.machine_power() == pytest.approx(incremental)


def seeded_workload(count: int = 60):
    spec = WorkloadSpec(
        arrival_rate=30.0 / HOUR,
        duration=8.0 * HOUR,
        min_nodes=1,
        max_nodes=12,
        mean_work=HOUR / 3,
    )
    return WorkloadGenerator(spec, RngStreams(7).stream("wl")).generate(count=count)


class TestEndToEndEquivalence:
    """The simulation produces the same physics under either backend."""

    @pytest.mark.parametrize("scheduler_cls", [FcfsScheduler, EasyBackfillScheduler])
    def test_backends_agree_on_seeded_workload(self, scheduler_cls):
        results = {}
        for backend in ("scalar", "vector"):
            machine = Machine(
                MachineSpec(name="m", nodes=24, nodes_per_cabinet=8)
            )
            csim = ClusterSimulation(
                machine,
                scheduler_cls(),
                seeded_workload(),
                policies=[DvfsBudgetPolicy(budget_watts=24 * 320.0)],
                power_backend=backend,
                seed=3,
            )
            results[backend] = csim.run()
        scalar, vector = results["scalar"], results["vector"]
        for js, jv in zip(scalar.jobs, vector.jobs):
            assert js.job_id == jv.job_id
            assert js.state is jv.state
            assert js.start_time == pytest.approx(jv.start_time, rel=1e-9)
            assert js.end_time == pytest.approx(jv.end_time, rel=1e-9)
            assert js.energy_joules == pytest.approx(jv.energy_joules, rel=1e-9)
        assert scalar.meter.energy_joules == pytest.approx(
            vector.meter.energy_joules, rel=1e-9
        )
        assert scalar.meter.peak_watts() == pytest.approx(
            vector.meter.peak_watts(), rel=1e-9
        )
        assert scalar.metrics.makespan == pytest.approx(
            vector.metrics.makespan, rel=1e-9
        )


class TestLifecycleArrays:
    """The mirror's lifecycle arrays track the node lifecycle push-sync."""

    def _sim(self, n=16):
        machine = Machine(MachineSpec(name="m", nodes=n, nodes_per_cabinet=8))
        return ClusterSimulation(machine, FcfsScheduler(), []), machine

    def test_arrays_track_transitions_and_bindings(self):
        machine = Machine(MachineSpec(name="m", nodes=12, nodes_per_cabinet=4))
        job = make_job(job_id="a", nodes=5, work=500.0, walltime=900.0)
        csim = ClusterSimulation(machine, FcfsScheduler(), [job])
        csim.prepare()
        csim.sim.run(until=100.0)
        mirror = csim.power_vector
        from repro.power.vector import STATE_CODES
        for row, node in enumerate(machine.nodes):
            assert mirror.state_code[row] == STATE_CODES[node.state]
            if node.idle_since is None:
                assert np.isnan(mirror.idle_since[row])
            else:
                assert mirror.idle_since[row] == node.idle_since
            # Execution membership is SoA on this backend: bound_jobs
            # and exec_slot derive from the simulation's execution
            # table, not from per-node running_job stamps.
            execution = csim.execution_on(node.node_id)
            assert mirror.bound_jobs[row] == (execution is not None)
            if execution is not None:
                assert mirror.exec_slot[row] == execution.slot
                assert node.node_id in execution.node_ids
            else:
                assert mirror.exec_slot[row] == -1
            assert mirror.node_id[row] == node.node_id

    def test_idle_candidate_rows_match_scalar_selection(self):
        csim, machine = self._sim()
        csim.sim.run(until=50.0)
        # Stagger idle_since: re-idle some nodes at distinct times.
        for i, node in enumerate(machine.nodes[:6]):
            node.assign("tmp", csim.sim.now)
            node.release(csim.sim.now + 0.0)
        mirror = csim.power_vector
        now = csim.sim.now + 500.0
        rows = mirror.idle_candidate_rows(now, 100.0)
        scalar = sorted(
            (n for n in machine.nodes
             if n.state is NodeState.IDLE and n.idle_since is not None
             and now - n.idle_since >= 100.0),
            key=lambda n: (n.idle_since, n.node_id),
        )
        assert [machine.nodes[r].node_id for r in rows] == [
            n.node_id for n in scalar
        ]

    def test_idle_candidates_exclude_nan_rows(self):
        csim, machine = self._sim()
        rm = csim.rm
        rm.shutdown_nodes(machine.nodes[:4])
        mirror = csim.power_vector
        rows = mirror.idle_candidate_rows(1e9, 0.0)
        assert all(machine.nodes[r].state is NodeState.IDLE for r in rows)
        assert not np.isnan(mirror.idle_since[rows]).any()

    def test_t0_idle_node_is_a_candidate(self):
        # Regression companion to the `idle_since or 0.0` fix: a node
        # idle since t=0 has a real timestamp and must rank *first*
        # (longest idle), not be confused with "no timestamp".
        csim, machine = self._sim(n=4)
        mirror = csim.power_vector
        rows = mirror.idle_candidate_rows(10.0, 5.0)
        assert list(rows) == [0, 1, 2, 3]

    def test_off_rows_sorted_by_node_id(self):
        csim, machine = self._sim()
        csim.rm.shutdown_nodes([machine.nodes[9], machine.nodes[2],
                                machine.nodes[5]])
        # Complete the shutdowns.
        csim.sim.run(until=1e4)
        rows = csim.power_vector.off_rows()
        assert [machine.nodes[r].node_id for r in rows] == sorted(
            machine.nodes[r].node_id for r in rows
        )
        assert all(
            machine.nodes[r].state is NodeState.OFF for r in rows
        )
        assert len(rows) == 3

    def test_lifecycle_view_counts(self):
        from repro.cluster import NodeState as NS
        from repro.power.vector import STATE_CODES
        csim, machine = self._sim()
        csim.rm.shutdown_nodes(machine.nodes[:3])
        csim.sim.run(until=1e4)
        view = csim.lifecycle_view()
        assert view is not None
        assert view.now == csim.sim.now
        assert view.count_in_state(STATE_CODES[NS.OFF]) == 3
        assert view.count_in_state(STATE_CODES[NS.IDLE]) == 13

    def test_scalar_backend_has_no_view(self):
        machine = Machine(MachineSpec(name="m", nodes=4))
        csim = ClusterSimulation(machine, FcfsScheduler(), [],
                                 power_backend="scalar")
        assert csim.lifecycle_view() is None
