"""Registry of the nine executable center scenarios.

Maps survey slugs to scenario builders, so benches and examples can
iterate the capability matrix and *run* it — plus each center's
regional electricity market (tariff, carbon trace, UTC offset), the
boundary condition the federation broker arbitrages across.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import SurveyError
from ..grid import ElectricityPriceSchedule, RegionMarket
from ..units import DAY
from .base import CenterBuild
from . import cea, cineca, jcahpc, kaust, lrz, riken, stfc, tokyotech, trinity

#: slug -> builder.  Signature: (seed, duration, **kwargs) -> CenterBuild.
CENTER_BUILDERS: Dict[str, Callable[..., CenterBuild]] = {
    "riken": riken.build_simulation,
    "tokyotech": tokyotech.build_simulation,
    "cea": cea.build_simulation,
    "kaust": kaust.build_simulation,
    "lrz": lrz.build_simulation,
    "stfc": stfc.build_simulation,
    "trinity": trinity.build_simulation,
    "cineca": cineca.build_simulation,
    "jcahpc": jcahpc.build_simulation,
}


def center_slugs() -> List[str]:
    """All registered center slugs, survey-table order."""
    return list(CENTER_BUILDERS)


def _market(
    name: str,
    offset: float,
    day: float,
    night: float,
    carbon_day: float,
    carbon_night: float,
    day_start: float = 7.0,
    day_end: float = 21.0,
) -> RegionMarket:
    return RegionMarket(
        name=name,
        utc_offset_hours=offset,
        tariff=ElectricityPriceSchedule.day_night(
            day, night, day_start, day_end
        ),
        carbon=ElectricityPriceSchedule.day_night(
            carbon_day, carbon_night, day_start, day_end
        ),
    )


#: slug -> regional market.  Prices are stylized time-of-use tariffs
#: (currency/kWh) and carbon intensities (kg CO2/kWh) for each center's
#: grid region; UTC offsets stagger the peak windows so the federation
#: broker has real arbitrage to do (simulation t=0 is UTC midnight).
#: Solar-heavy grids (DE, IT) run *cleaner* during the expensive day
#: window; fossil-peaker grids (JP, SA) run dirtier at night.
CENTER_MARKETS: Dict[str, RegionMarket] = {
    "riken":     _market("jp-kobe", 9.0, 0.26, 0.17, 0.45, 0.55, 8.0, 22.0),
    "tokyotech": _market("jp-tokyo", 9.0, 0.27, 0.16, 0.46, 0.56, 8.0, 22.0),
    "cea":       _market("fr-idf", 1.0, 0.15, 0.11, 0.06, 0.05),
    "kaust":     _market("sa-west", 3.0, 0.08, 0.06, 0.65, 0.70, 9.0, 23.0),
    "lrz":       _market("de-bayern", 1.0, 0.32, 0.22, 0.30, 0.45),
    "stfc":      _market("uk-north", 0.0, 0.28, 0.18, 0.22, 0.30, 7.0, 20.0),
    "trinity":   _market("us-nm", -7.0, 0.11, 0.07, 0.40, 0.45),
    "cineca":    _market("it-nord", 1.0, 0.30, 0.20, 0.33, 0.42),
    "jcahpc":    _market("jp-kashiwa", 9.0, 0.25, 0.16, 0.46, 0.54, 8.0, 22.0),
}


def center_market(slug: str) -> RegionMarket:
    """The regional electricity market for one center."""
    try:
        return CENTER_MARKETS[slug]
    except KeyError:
        raise SurveyError(
            f"unknown center {slug!r}; known: {center_slugs()}"
        ) from None


def build_center_simulation(
    slug: str, seed: int = 0, duration: float = 2.0 * DAY, **kwargs
) -> CenterBuild:
    """Build one center's scenario by slug."""
    try:
        builder = CENTER_BUILDERS[slug]
    except KeyError:
        raise SurveyError(
            f"unknown center {slug!r}; known: {center_slugs()}"
        ) from None
    return builder(seed=seed, duration=duration, **kwargs)
