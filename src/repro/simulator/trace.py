"""Structured trace recording.

A :class:`TraceRecorder` is an append-only log of typed records emitted
by any component.  It is the simulation-side analogue of the long-term
monitoring archives the surveyed centers maintain (STFC: "continuously
collecting power and energy system monitoring info, data center,
machine, and job levels") — analyses are run over the trace after the
simulation, never by reaching into live objects.

Retention
---------
By default every record is kept.  Long checkpointed campaigns can bound
memory with ``max_records``: the recorder then keeps only the trailing
window, dropping the oldest records as new ones arrive.  Positions are
tracked as *absolute* emission indices so the per-category bucket index
stays consistent across drops (stale positions are pruned lazily on
query).
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: Pending-buffer auto-flush threshold: bounds deferred memory while
#: keeping the per-emit cost a plain tuple append for long stretches.
_FLUSH_THRESHOLD = 8192


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes
    ----------
    time:
        Simulated time of the record, seconds.
    category:
        Dotted topic string, e.g. ``"job.start"``, ``"power.cap"``.
    data:
        Arbitrary payload; by convention a flat ``dict`` of primitives.
    """

    time: float
    category: str
    data: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only, queryable trace log.

    Categories are dotted paths; queries match by exact category or by
    prefix (``"job"`` matches ``"job.start"`` and ``"job.end"``).
    Optional live subscribers receive records as they are emitted —
    used by telemetry aggregators and by tests.

    Parameters
    ----------
    enabled:
        When False, :meth:`emit` is a no-op.
    max_records:
        Optional retention bound: keep only the most recent
        *max_records* records (ring semantics).  ``None`` keeps all.
    """

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None) -> None:
        if max_records is not None and max_records <= 0:
            raise ValueError(f"max_records must be > 0 or None, got {max_records}")
        self.enabled = enabled
        self.max_records = max_records
        # ``_records`` may carry a dead prefix of ``_dead`` entries
        # already dropped from the retention window; they are physically
        # deleted in amortized-O(1) chunks (see ``_compact``) so ring
        # retention never degrades emit() to O(window).
        self._records: List[TraceRecord] = []
        self._dead = 0
        #: Total *flushed* records; the absolute index of
        #: ``_records[i]`` is ``_emitted - len(_records) + i``.
        self._emitted = 0
        #: Deferred-flush buffer: with no live subscribers, ``emit``
        #: is a plain tuple append here and record construction plus
        #: bucket indexing happen in one batch at the next read (or at
        #: the auto-flush threshold).  Every query path flushes first,
        #: so readers never observe the buffer.
        self._pending: List[Tuple[float, str, Dict[str, Any]]] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        # Per-category bucket index: category -> *absolute* emission
        # indices (each list ascending by construction).  Category
        # queries fold the matching buckets instead of scanning every
        # record; analyses over long simulations query specific
        # categories thousands of times.  With ring retention, indices
        # older than the window are pruned lazily at query time.
        self._buckets: Dict[str, List[int]] = {}

    def __len__(self) -> int:
        if self._pending and self.max_records is not None:
            self._flush()
        return len(self._records) - self._dead + len(self._pending)

    @property
    def total_emitted(self) -> int:
        """Records ever emitted, including any dropped by retention."""
        return self._emitted + len(self._pending)

    @property
    def _first_abs(self) -> int:
        """Absolute emission index of the oldest retained record."""
        return self._emitted - (len(self._records) - self._dead)

    def emit(self, time: float, category: str, **data: Any) -> None:
        """Record an event at *time* under *category* with payload *data*.

        With no live subscribers this defers record construction and
        bucket indexing to the next flush; a subscriber forces the
        eager path so delivery order stays emission order.
        """
        if not self.enabled:
            return
        if not self._subscribers:
            self._pending.append((time, category, data))
            if len(self._pending) >= _FLUSH_THRESHOLD:
                self._flush()
            return
        self._flush()
        record = TraceRecord(time, category, data)
        bucket = self._buckets.get(category)
        if bucket is None:
            self._buckets[category] = [self._emitted]
        else:
            bucket.append(self._emitted)
        self._records.append(record)
        self._emitted += 1
        if (
            self.max_records is not None
            and len(self._records) - self._dead > self.max_records
        ):
            self._dead += 1
            self._compact()
        for sub in self._subscribers:
            sub(record)

    def emit_batch(
        self, time: float, category: str, payloads: Iterable[Dict[str, Any]]
    ) -> None:
        """Record many same-timestamp events under one *category*.

        One list-extend for the whole batch when no subscribers are
        live — the cohort-batched emitters (bulk node transitions,
        batched lifecycle ticks) use this so a thousand-node boot
        costs one Python call, not a thousand.  Each payload dict is
        stored as passed (not copied); callers hand over ownership.
        Record order matches the iteration order of *payloads*,
        exactly as the equivalent :meth:`emit` loop would produce.
        """
        if not self.enabled:
            return
        if not self._subscribers:
            self._pending.extend((time, category, data) for data in payloads)
            if len(self._pending) >= _FLUSH_THRESHOLD:
                self._flush()
            return
        for data in payloads:
            self.emit(time, category, **data)

    def flush_cohort(self) -> None:
        """Materialize any deferred records now.

        Public hook for :attr:`Simulator.cohort_hook`: invoked once
        per drained cohort so batched runs index each cohort's records
        in one pass while they are still cache-warm, instead of paying
        one large deferred flush at an arbitrary later query.  Safe to
        call at any time (idempotent when nothing is pending).
        """
        self._flush()

    def _flush(self) -> None:
        """Materialize the pending buffer into storage and buckets."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        records = self._records
        buckets = self._buckets
        emitted = self._emitted
        for time, category, data in pending:
            records.append(TraceRecord(time, category, data))
            bucket = buckets.get(category)
            if bucket is None:
                buckets[category] = [emitted]
            else:
                bucket.append(emitted)
            emitted += 1
        self._emitted = emitted
        if self.max_records is not None:
            over = len(records) - self._dead - self.max_records
            if over > 0:
                self._dead += over
                self._compact()

    def _compact(self) -> None:
        """Physically delete the dead prefix once it dominates storage."""
        if self._dead > 256 and 2 * self._dead >= len(self._records):
            del self._records[: self._dead]
            self._dead = 0

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Register a live subscriber invoked for every new record.

        Records already emitted (including any still pending) predate
        the registration and are not delivered."""
        self._flush()
        self._subscribers.append(callback)

    def _record_at(self, abs_index: int) -> TraceRecord:
        return self._records[abs_index - self._emitted + len(self._records)]

    def _prune(self, positions: List[int]) -> List[int]:
        """Drop bucket positions that fell out of the retention window."""
        first = self._first_abs
        if positions and positions[0] < first:
            del positions[: bisect.bisect_left(positions, first)]
        return positions

    def _matching_buckets(self, category: str) -> List[List[int]]:
        """Position lists of every bucket matching *category* (exact or
        dotted-prefix), pruned to the retention window, unmerged."""
        prefix = category + "."
        return [
            self._prune(positions)
            for cat, positions in self._buckets.items()
            if cat == category or cat.startswith(prefix)
        ]

    def records(self, category: Optional[str] = None) -> List[TraceRecord]:
        """Return records, optionally filtered by category prefix.

        Emission order is preserved: matching buckets hold ascending
        record positions, so a k-way merge restores the global order
        without touching non-matching records.
        """
        self._flush()
        if category is None:
            return self._records[self._dead:]
        buckets = self._matching_buckets(category)
        if not buckets:
            return []
        if len(buckets) == 1:
            positions: Iterable[int] = buckets[0]
        else:
            positions = heapq.merge(*buckets)
        return [self._record_at(i) for i in positions]

    def iter_between(
        self, start: float, end: float, category: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        """Yield records with ``start <= time < end`` (prefix-filtered)."""
        self._flush()
        return self._iter_between(start, end, category)

    def _iter_between(
        self, start: float, end: float, category: Optional[str]
    ) -> Iterator[TraceRecord]:
        prefix = None if category is None else category + "."
        for i in range(self._dead, len(self._records)):
            r = self._records[i]
            if not (start <= r.time < end):
                continue
            if category is None or r.category == category or r.category.startswith(prefix):  # type: ignore[arg-type]
                yield r

    def count(self, category: Optional[str] = None) -> int:
        """Number of retained records under *category* (prefix match).

        O(#distinct categories) plus any lazy pruning triggered by
        retention, independent of the record count.
        """
        if category is None:
            return len(self)
        self._flush()
        return sum(len(b) for b in self._matching_buckets(category))

    def clear(self) -> None:
        """Drop all records (subscribers stay registered)."""
        self._emitted += len(self._pending)
        self._pending.clear()
        self._records.clear()
        self._buckets.clear()
        self._dead = 0
