"""Property-based tests: event engine ordering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import Simulator
from repro.simulator.events import EventPriority

event_spec = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    st.sampled_from([EventPriority.STATE, EventPriority.MONITOR,
                     EventPriority.CONTROL, EventPriority.REPORT]),
)


class TestEngineProperties:
    @given(st.lists(event_spec, max_size=200))
    def test_events_fire_in_canonical_order(self, specs):
        sim = Simulator()
        fired = []
        for i, (time, priority) in enumerate(specs):
            sim.at(time, lambda t=time, p=priority, i=i: fired.append((t, p, i)),
                   priority=priority)
        sim.run()
        assert len(fired) == len(specs)
        # (time, priority, insertion order) must be non-decreasing.
        keys = [(t, int(p), i) for t, p, i in fired]
        assert keys == sorted(keys)

    @given(st.lists(event_spec, max_size=200))
    def test_clock_monotone(self, specs):
        sim = Simulator()
        observed = []
        for time, priority in specs:
            sim.at(time, lambda: observed.append(sim.now), priority=priority)
        sim.run()
        assert observed == sorted(observed)

    @given(st.lists(event_spec, min_size=1, max_size=100),
           st.data())
    def test_cancellation_subset(self, specs, data):
        sim = Simulator()
        fired = []
        handles = []
        for i, (time, priority) in enumerate(specs):
            handles.append(
                sim.at(time, lambda i=i: fired.append(i), priority=priority)
            )
        to_cancel = data.draw(
            st.sets(st.integers(0, len(specs) - 1), max_size=len(specs))
        )
        for idx in to_cancel:
            handles[idx].cancel()
        sim.run()
        assert set(fired) == set(range(len(specs))) - to_cancel

    @given(st.floats(min_value=0.1, max_value=1000.0),
           st.floats(min_value=1.0, max_value=10_000.0))
    @settings(max_examples=50)
    def test_periodic_count(self, interval, horizon):
        sim = Simulator()
        count = [0]
        sim.every(interval, lambda: count.__setitem__(0, count[0] + 1))
        sim.run(until=horizon)
        # The exact count is ambiguous near multiples (floor itself is
        # float-sensitive) and repeated addition drifts; check the
        # defining inequalities with one-slot slack instead.
        n = count[0]
        assert (n - 1) * interval <= horizon * (1 + 1e-9)
        assert (n + 1) * interval >= horizon * (1 - 1e-9)
