"""Tests for unit helpers and validation."""

import pytest

from repro.errors import ConfigurationError
from repro import units


class TestConversions:
    def test_time_helpers(self):
        assert units.minutes(2) == 120.0
        assert units.hours(1) == 3600.0
        assert units.days(1) == 86400.0

    def test_power_helpers(self):
        assert units.kilowatts(1.5) == 1500.0
        assert units.megawatts(2) == 2e6

    def test_frequency(self):
        assert units.gigahertz(2.4) == 2.4e9

    def test_energy_conversions(self):
        assert units.joules_to_kwh(3.6e6) == pytest.approx(1.0)
        assert units.joules_to_mwh(3.6e9) == pytest.approx(1.0)


class TestValidation:
    def test_check_positive_accepts(self):
        assert units.check_positive("x", 1.5) == 1.5

    @pytest.mark.parametrize("bad", [0, -1, float("nan"), float("inf"), "a", True, None])
    def test_check_positive_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            units.check_positive("x", bad)

    def test_check_non_negative_accepts_zero(self):
        assert units.check_non_negative("x", 0) == 0.0

    @pytest.mark.parametrize("bad", [-0.1, float("nan"), float("inf"), "a"])
    def test_check_non_negative_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            units.check_non_negative("x", bad)

    def test_check_fraction(self):
        assert units.check_fraction("x", 0.5) == 0.5
        assert units.check_fraction("x", 0.0) == 0.0
        assert units.check_fraction("x", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            units.check_fraction("x", 1.1)
        with pytest.raises(ConfigurationError):
            units.check_fraction("x", -0.1)
