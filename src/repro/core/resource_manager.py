"""The resource manager: privileged control over the machine.

Section II-A: "A resource manager is a piece of system software that
has privileged ability to control various resources within a
datacenter" — including, "in some cases, ... pieces of the physical
plant".  This class is the only component allowed to mutate node
state: boot/shutdown (with realistic latencies), power caps, DVFS
frequencies, and draining for maintenance.  Policies act *through* it;
the simulation observes its notifications.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..cluster.machine import Machine
from ..cluster.node import Node, NodeState
from ..errors import NodeStateError
from ..simulator.engine import Simulator
from ..simulator.events import EventPriority
from ..simulator.trace import TraceRecorder


class ResourceManager:
    """Privileged actuator for one machine.

    Parameters
    ----------
    sim:
        Simulator for latency modelling (boots/shutdowns take time).
    machine:
        The machine under control.
    trace:
        Optional structured trace ("rm.*" categories).
    on_nodes_changed:
        Callback fired when node availability changes (boot completes,
        shutdown completes, drain/undrain) so the scheduler can react.
    on_speed_changed:
        Callback fired with the affected node ids whenever caps or
        frequencies change — running jobs must be re-evaluated.
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        trace: Optional[TraceRecorder] = None,
        on_nodes_changed: Optional[Callable[[], None]] = None,
        on_speed_changed: Optional[Callable[[List[int]], None]] = None,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.trace = trace
        self.on_nodes_changed = on_nodes_changed
        self.on_speed_changed = on_speed_changed
        self.boots_initiated = 0
        self.shutdowns_initiated = 0

    # ------------------------------------------------------------------
    def _emit(self, category: str, **data) -> None:
        if self.trace is not None:
            self.trace.emit(self.sim.now, category, **data)

    def _emit_nodes(self, category: str, nodes: List[Node]) -> None:
        # One batched append for a whole transition cohort.  Safe to
        # hoist ahead of the per-node notify/schedule loop: nothing in
        # that loop emits trace records, so the record stream is
        # byte-identical to the scalar interleaving.
        if self.trace is not None:
            self.trace.emit_batch(
                self.sim.now, category,
                [{"node": n.node_id} for n in nodes],
            )

    def _notify_nodes_changed(self) -> None:
        if self.on_nodes_changed is not None:
            self.on_nodes_changed()

    def _notify_power_changed(self, node_id: int) -> None:
        # Power-state transitions change machine power; the simulation
        # listens on the speed-change channel to invalidate caches.
        if self.on_speed_changed is not None:
            self.on_speed_changed([node_id])

    # ------------------------------------------------------------------
    # Power state control (Tokyo Tech dynamic provisioning, CEA manual
    # shutdown, Mämmelä idle shutdown)
    # ------------------------------------------------------------------
    def boot_node(self, node: Node) -> None:
        """Begin powering on an OFF node; IDLE after its boot time."""
        node.transition(NodeState.BOOTING, self.sim.now)
        self.boots_initiated += 1
        self._emit("rm.boot.start", node=node.node_id)
        self._notify_power_changed(node.node_id)
        self.sim.after(node.boot_time, self._finish_boot, node,
                       priority=EventPriority.STATE,
                       name=f"boot:{node.node_id}")

    def _finish_boot(self, node: Node) -> None:
        # Bound method (not a closure) so repro.state can capture and
        # re-plant pending boot-completion events.
        if node.state is NodeState.BOOTING:
            node.transition(NodeState.IDLE, self.sim.now)
            self._emit("rm.boot.done", node=node.node_id)
            self._notify_nodes_changed()

    def shutdown_node(self, node: Node) -> None:
        """Begin powering off an IDLE node; OFF after its shutdown time."""
        node.transition(NodeState.SHUTTING_DOWN, self.sim.now)
        self.shutdowns_initiated += 1
        self._emit("rm.shutdown.start", node=node.node_id)
        self._notify_power_changed(node.node_id)
        self.sim.after(node.shutdown_time, self._finish_shutdown, node,
                       priority=EventPriority.STATE,
                       name=f"shutdown:{node.node_id}")

    def _finish_shutdown(self, node: Node) -> None:
        if node.state is NodeState.SHUTTING_DOWN:
            node.transition(NodeState.OFF, self.sim.now)
            self._emit("rm.shutdown.done", node=node.node_id)
            self._notify_nodes_changed()

    def boot_nodes(self, nodes: Iterable[Node]) -> int:
        """Boot all OFF nodes in *nodes*; returns how many were started.

        When the machine has a bulk listener installed (the owning
        simulation enabled bulk ops) the whole cohort transitions in
        one :meth:`Machine.transition_bulk` pass; trace records,
        counters and the per-node boot-completion events are then
        emitted in the same cohort order as the scalar loop, so traces
        and the event sequence are identical either way.
        """
        eligible = [n for n in nodes if n.state is NodeState.OFF]
        if len(eligible) > 1 and self.machine.bulk_listener is not None:
            self.machine.transition_bulk(
                [n.node_id for n in eligible], NodeState.BOOTING, self.sim.now
            )
            self.boots_initiated += len(eligible)
            self._emit_nodes("rm.boot.start", eligible)
            for node in eligible:
                self._notify_power_changed(node.node_id)
                self.sim.after(node.boot_time, self._finish_boot, node,
                               priority=EventPriority.STATE,
                               name=f"boot:{node.node_id}")
            return len(eligible)
        for node in eligible:
            self.boot_node(node)
        return len(eligible)

    def shutdown_nodes(self, nodes: Iterable[Node]) -> int:
        """Shut down all IDLE nodes in *nodes*; returns the count.

        Bulk-batched exactly like :meth:`boot_nodes`.
        """
        eligible = [n for n in nodes if n.state is NodeState.IDLE]
        if len(eligible) > 1 and self.machine.bulk_listener is not None:
            self.machine.transition_bulk(
                [n.node_id for n in eligible],
                NodeState.SHUTTING_DOWN,
                self.sim.now,
            )
            self.shutdowns_initiated += len(eligible)
            self._emit_nodes("rm.shutdown.start", eligible)
            for node in eligible:
                self._notify_power_changed(node.node_id)
                self.sim.after(node.shutdown_time, self._finish_shutdown, node,
                               priority=EventPriority.STATE,
                               name=f"shutdown:{node.node_id}")
            return len(eligible)
        for node in eligible:
            self.shutdown_node(node)
        return len(eligible)

    # ------------------------------------------------------------------
    # Maintenance (CEA layout logic support)
    # ------------------------------------------------------------------
    def drain_node(self, node: Node) -> None:
        """Mark a non-busy node administratively DOWN."""
        if node.state is NodeState.BUSY:
            raise NodeStateError(
                f"node {node.node_id} is busy; cannot drain (wait for job end)"
            )
        node.transition(NodeState.DOWN, self.sim.now)
        self._emit("rm.drain", node=node.node_id)
        self._notify_nodes_changed()

    def undrain_node(self, node: Node) -> None:
        """Return a DOWN node to service (IDLE)."""
        node.transition(NodeState.IDLE, self.sim.now)
        self._emit("rm.undrain", node=node.node_id)
        self._notify_nodes_changed()

    # ------------------------------------------------------------------
    # Power control (caps and DVFS)
    # ------------------------------------------------------------------
    def set_power_cap(self, nodes: Iterable[Node], cap: Optional[float]) -> List[int]:
        """Set (or clear) per-node caps; returns affected node ids."""
        affected = []
        for node in nodes:
            node.set_power_cap(cap)
            affected.append(node.node_id)
        self._emit("rm.cap", nodes=len(affected), cap=cap)
        if affected and self.on_speed_changed is not None:
            self.on_speed_changed(affected)
        return affected

    def set_frequency(self, nodes: Iterable[Node], frequency: float) -> List[int]:
        """Set the DVFS frequency on *nodes*; returns affected ids."""
        affected = []
        for node in nodes:
            node.set_frequency(frequency)
            affected.append(node.node_id)
        self._emit("rm.dvfs", nodes=len(affected), frequency=frequency)
        if affected and self.on_speed_changed is not None:
            self.on_speed_changed(affected)
        return affected

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def idle_nodes_longer_than(self, threshold: float) -> List[Node]:
        """IDLE nodes whose idle time exceeds *threshold* seconds."""
        now = self.sim.now
        return [
            n
            for n in self.machine.nodes
            if n.state is NodeState.IDLE
            and n.idle_since is not None
            and now - n.idle_since >= threshold
        ]

    def off_nodes(self) -> List[Node]:
        """Nodes currently OFF (candidates for booting)."""
        return self.machine.nodes_in_state(NodeState.OFF)
