"""Structure-of-arrays mirror of the machine for vectorized power math.

:class:`NodePowerModel` is the executable spec: one node in, one
:class:`~repro.power.model.PowerSample` out.  That shape is perfect for
reasoning and testing and hopeless for machine-scale control loops —
Tokyo Tech's windowed capping, RIKEN's emergency kill and every budget
policy in this reproduction query *whole-machine* power every tick, and
a per-node Python call that allocates a frozen dataclass caps the
simulator at a few thousand nodes.

:class:`VectorPowerMirror` keeps the power-relevant node fields
(state code, idle/max/off power, variability, frequency and DVFS range,
cap, and the bound job's intensity/sensitivity) as flat numpy arrays,
one row per node in ``machine.nodes`` order, and evaluates the *same*
operating-point semantics as the scalar model — boot/shutdown states,
cap clamping to ``f_min``, cap-violation flags — in a handful of array
ops.  Equivalence with :meth:`NodePowerModel.operating_point` is pinned
by the randomized sweeps in ``tests/test_power_vector.py``.

Sync contract
-------------
The mirror is *push*-synchronized:

* every mutation that goes through the node state machine or power
  setters (``transition``/``set_power_cap``/``set_frequency``) fires
  ``Node.power_listener``, which the owning simulation routes into
  :meth:`touch` — the row is re-read from the node and marked dirty;
* job (un)binding does not fire the hook; the simulation calls
  :meth:`bind_execution`/:meth:`unbind_execution` where it allocates or
  frees the job's execution slot (``exec_slot`` row membership);
* anything else (re-drawing variability on a live machine, rewriting
  ``idle_power`` in place) bypasses both channels and requires an
  explicit :meth:`invalidate` — surfaced to users as
  ``ClusterSimulation.invalidate_power_cache()``.

``machine_watts()`` keeps a per-row watts cache plus a running total:
O(1) when nothing is dirty, one vectorized kernel over the dirty rows
otherwise, and a full vectorized re-sum once at least half the machine
is dirty (no slower than the delta path, and it resets accumulated
floating-point drift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..cluster.machine import Machine
from ..cluster.node import NodeState
from . import kernels
from .model import NodePowerModel

__all__ = ["LifecycleView", "OperatingPoints", "VectorPowerMirror", "STATE_CODES"]

#: NodeState -> small-int code used in the state-code array.
STATE_CODES: Dict[NodeState, int] = {
    NodeState.OFF: 0,
    NodeState.DOWN: 1,
    NodeState.BOOTING: 2,
    NodeState.SHUTTING_DOWN: 3,
    NodeState.IDLE: 4,
    NodeState.BUSY: 5,
}

# The kernel layer hard-codes the codes (numba cannot close over the
# enum); fail loudly if the two tables ever drift.
assert STATE_CODES[NodeState.OFF] == kernels._OFF
assert STATE_CODES[NodeState.DOWN] == kernels._DOWN
assert STATE_CODES[NodeState.BOOTING] == kernels._BOOTING
assert STATE_CODES[NodeState.SHUTTING_DOWN] == kernels._SHUTTING_DOWN
assert STATE_CODES[NodeState.IDLE] == kernels._IDLE
assert STATE_CODES[NodeState.BUSY] == kernels._BUSY

_OFF = STATE_CODES[NodeState.OFF]
_DOWN = STATE_CODES[NodeState.DOWN]
_BOOTING = STATE_CODES[NodeState.BOOTING]
_SHUTTING_DOWN = STATE_CODES[NodeState.SHUTTING_DOWN]
_IDLE = STATE_CODES[NodeState.IDLE]
_BUSY = STATE_CODES[NodeState.BUSY]


@dataclass(frozen=True)
class OperatingPoints:
    """Vectorized :class:`~repro.power.model.PowerSample`: one row per
    queried node, fields aligned by position."""

    watts: np.ndarray
    frequency_ratio: np.ndarray
    speed: np.ndarray
    cap_violated: np.ndarray


@dataclass(frozen=True)
class LifecycleView:
    """Read-only SoA view of the node lifecycle for batch-aware policy
    ticks (:meth:`repro.policies.base.Policy.on_tick_batch`).

    Rows are ``machine.nodes`` positions, same as the power arrays.
    The arrays are the mirror's own (no copies): treat them as
    immutable and never hold them across events.
    """

    now: float
    node_id: np.ndarray
    state_code: np.ndarray
    #: Seconds-since-epoch a node went idle; NaN where the node has no
    #: idle timestamp (``Node.idle_since is None``).
    idle_since: np.ndarray
    #: Jobs bound to each node (0 or 1 under whole-node allocation).
    bound_jobs: np.ndarray
    idle_power: np.ndarray
    nodes: Sequence  # row -> Node, for materializing picks
    #: Per-state-code node counts frozen at view creation (the mirror
    #: maintains them incrementally, so reading one is O(1), not O(N)).
    state_counts: tuple = ()
    #: True when row order == node-id order (the common case): ordered
    #: candidate kernels can then skip their id sorts entirely.
    ids_monotone: bool = False

    def count_in_state(self, code: int) -> int:
        """Number of nodes whose state code equals *code*."""
        if self.state_counts:
            return self.state_counts[code]
        return int(np.count_nonzero(self.state_code == code))

    def idle_candidate_rows(self, threshold: float) -> np.ndarray:
        """Rows idle for at least *threshold* seconds at ``self.now``,
        ordered by ``(idle_since, node_id)`` — the vector twin of
        sorting ``ResourceManager.idle_nodes_longer_than`` output by
        the longest-idle-first policy key.  NaN ``idle_since`` rows
        (no idle timestamp) never qualify, mirroring the scalar
        ``None`` guard."""
        idle_since = self.idle_since
        with np.errstate(invalid="ignore"):
            mask = (self.state_code == _IDLE) & (
                self.now - idle_since >= threshold
            )
        rows = np.flatnonzero(mask)
        if rows.size > 1:
            if self.ids_monotone:
                # flatnonzero rows are already id-ordered; a stable
                # sort on idle_since alone yields the same
                # (idle_since, node_id) order with one key.
                order = np.argsort(idle_since[rows], kind="stable")
            else:
                order = np.lexsort((self.node_id[rows], idle_since[rows]))
            rows = rows[order]
        return rows

    def off_rows(self) -> np.ndarray:
        """Rows currently OFF, ordered by node id — the vector twin of
        ``sorted(rm.off_nodes(), key=lambda n: n.node_id)``."""
        rows = np.flatnonzero(self.state_code == _OFF)
        if rows.size > 1 and not self.ids_monotone:
            order = np.argsort(self.node_id[rows], kind="stable")
            rows = rows[order]
        return rows


class VectorPowerMirror:
    """SoA mirror of one machine, bound to one :class:`NodePowerModel`.

    Rows are positions in ``machine.nodes``; ``rows_for`` maps node ids
    to rows for callers that hold ids.
    """

    def __init__(self, machine: Machine, model: NodePowerModel) -> None:
        self.machine = machine
        self.model = model
        self._nodes = machine.nodes
        n = len(self._nodes)
        self._row_of: Dict[int, int] = {
            node.node_id: row for row, node in enumerate(self._nodes)
        }
        self.state_code = np.zeros(n, dtype=np.int8)
        self.idle_power = np.zeros(n)
        self.max_power = np.zeros(n)
        self.off_power = np.zeros(n)
        self.variability = np.ones(n)
        self.frequency = np.zeros(n)
        self.min_frequency = np.zeros(n)
        self.max_frequency = np.ones(n)
        #: +inf encodes "no cap" — every comparison against it then
        #: behaves exactly like the scalar ``cap is None`` branches.
        self.power_cap = np.full(n, np.inf)
        self.utilization = np.ones(n)
        self.sensitivity = np.ones(n)
        # Lifecycle arrays (beyond power): idle timestamps (NaN encodes
        # "no idle timestamp", mirroring the scalar None), bound-job
        # counts, and node ids for id-ordered candidate ranking.
        self.idle_since = np.full(n, np.nan)
        self.bound_jobs = np.zeros(n, dtype=np.int32)
        #: Execution-slot id per row, -1 when no execution occupies the
        #: node.  The owning simulation maps slots to JobExecution
        #: objects (``ClusterSimulation._exec_slots``), which replaces
        #: its per-node ``_node_exec`` dict on this backend: membership
        #: moves in one scatter per cohort instead of a Python loop.
        self.exec_slot = np.full(n, -1, dtype=np.int32)
        self.node_id = np.fromiter(
            (node.node_id for node in self._nodes), dtype=np.intp, count=n
        )
        self._ids_monotone = bool(
            n < 2 or np.all(np.diff(self.node_id) > 0)
        )
        #: Stronger than monotone: ids ARE row positions, so cohort
        #: row lookups reduce to an array conversion.
        self._rows_are_ids = bool(
            np.array_equal(self.node_id, np.arange(n, dtype=np.intp))
        )
        #: Incremental per-state-code node counts (len == #codes):
        #: refresh_row moves one unit between buckets, so policy ticks
        #: read counts in O(1) instead of scanning the state array.
        self._state_counts: List[int] = [0] * len(STATE_CODES)

        self._watts = np.zeros(n)
        self._total = 0.0
        self._dirty: set = set()
        self._all_dirty = True
        self.refresh_all()

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def rows_for(self, node_ids: Iterable[int]) -> np.ndarray:
        """Row indices for *node_ids* (machine.nodes positions)."""
        if self._rows_are_ids:
            if not isinstance(node_ids, (list, tuple, np.ndarray)):
                node_ids = list(node_ids)
            return np.asarray(node_ids, dtype=np.intp)
        row_of = self._row_of
        return np.fromiter(
            (row_of[nid] for nid in node_ids), dtype=np.intp
        )

    def refresh_row(self, row: int) -> None:
        """Re-read one node's power-relevant fields into the arrays."""
        node = self._nodes[row]
        code = STATE_CODES[node.state]
        counts = self._state_counts
        counts[self.state_code[row]] -= 1
        counts[code] += 1
        self.state_code[row] = code
        self.idle_power[row] = node.idle_power
        self.max_power[row] = node.max_power
        self.off_power[row] = node.off_power
        self.variability[row] = node.variability
        self.frequency[row] = node.frequency
        self.min_frequency[row] = node.min_frequency
        self.max_frequency[row] = node.max_frequency
        cap = node.power_cap
        self.power_cap[row] = np.inf if cap is None else cap
        idle_since = node.idle_since
        self.idle_since[row] = np.nan if idle_since is None else idle_since
        # Execution membership lives in exec_slot on this backend (the
        # simulation no longer stamps ``running_job`` per node); rows
        # touched outside a simulation (bare mirror tests, node.assign)
        # still derive their binding from the scalar field.
        self.bound_jobs[row] = (
            1
            if self.exec_slot[row] >= 0 or node.running_job is not None
            else 0
        )

    def touch(self, node_id: int) -> None:
        """``Node.power_listener`` entry point: resync + mark dirty."""
        row = self._row_of[node_id]
        self.refresh_row(row)
        self._dirty.add(row)

    def bind(self, rows: np.ndarray, utilization: float, sensitivity: float) -> None:
        """Record a job binding on *rows* (intensity enters the bill)."""
        self.utilization[rows] = min(1.0, max(0.0, float(utilization)))
        self.sensitivity[rows] = min(1.0, max(0.0, float(sensitivity)))
        self._dirty.update(rows.tolist())

    def unbind(self, rows: np.ndarray) -> None:
        """Drop a job binding: rows fall back to the unbound defaults."""
        self.utilization[rows] = 1.0
        self.sensitivity[rows] = 1.0
        self._dirty.update(rows.tolist())

    def bind_execution(
        self,
        rows: np.ndarray,
        slot: int,
        utilization: float,
        sensitivity: float,
    ) -> None:
        """:meth:`bind` plus SoA execution membership: stamp *slot*
        into ``exec_slot`` and mark the rows bound, replacing the
        owning simulation's per-node dict/attribute loops with one
        scatter per cohort."""
        self.exec_slot[rows] = slot
        self.bound_jobs[rows] = 1
        self.utilization[rows] = min(1.0, max(0.0, float(utilization)))
        self.sensitivity[rows] = min(1.0, max(0.0, float(sensitivity)))
        self._dirty.update(rows.tolist())

    def unbind_execution(self, rows: np.ndarray) -> None:
        """:meth:`unbind` plus membership teardown: clear ``exec_slot``
        and the bound-job counts in the same scatter."""
        self.exec_slot[rows] = -1
        self.bound_jobs[rows] = 0
        self.utilization[rows] = 1.0
        self.sensitivity[rows] = 1.0
        self._dirty.update(rows.tolist())

    def transition_rows(self, rows: np.ndarray, code: int, time: float) -> None:
        """Apply one lifecycle transition to *rows* in a single SoA pass.

        The bulk twin of per-row :meth:`touch` after
        ``Node.transition``: state codes, idle timestamps (NaN for
        non-idle targets, mirroring the scalar ``None``), bound-job
        counts and the incremental state-count buckets all move in one
        scatter, and the rows join the dirty set for the next
        ``machine_watts`` fold.  Power-relevant fields other than state
        never change during a transition, so nothing else is re-read.

        Precondition (holds at every bulk call site): the scalar nodes
        were already moved to the same target state.  Bound-job counts
        are derived from the target code (BUSY rows are exactly the
        execution cohorts being started), matching what
        :meth:`refresh_row` derives from ``exec_slot`` once
        ``bind_execution`` lands in the same event.
        """
        counts = self._state_counts
        old_codes, old_counts = np.unique(
            self.state_code[rows], return_counts=True
        )
        for old, cnt in zip(old_codes.tolist(), old_counts.tolist()):
            counts[old] -= cnt
        counts[code] += int(rows.size)
        idle_ts = time if code == _IDLE else np.nan
        bound = 1 if code == _BUSY else 0
        kernels.apply_transition(
            self.state_code, self.idle_since, self.bound_jobs,
            rows, code, idle_ts, bound,
        )
        self._dirty.update(rows.tolist())

    def refresh_all(self) -> None:
        """Re-read every row (used at build time and by invalidate)."""
        for row in range(len(self._nodes)):
            self.refresh_row(row)
        # Ground truth after a bulk resync (the incremental deltas in
        # refresh_row assumed array/state consistency that an
        # out-of-band mutation may have broken).
        self._state_counts = np.bincount(
            self.state_code, minlength=len(STATE_CODES)
        ).tolist()
        self._all_dirty = True
        self._dirty.clear()

    def invalidate(self) -> None:
        """Full resync for mutations that bypassed both sync channels."""
        self.refresh_all()

    def force_resum(self) -> None:
        """Mark the cached total stale without touching any row (the
        rows are already in sync; benchmarks use this to time the pure
        full-re-sum kernel path)."""
        self._all_dirty = True

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def operating_points(self, rows: Optional[np.ndarray] = None) -> OperatingPoints:
        """Operating point of the selected rows (all rows when None).

        Replicates :meth:`NodePowerModel.operating_point` branch for
        branch; see that method for the physics.
        """
        sel = slice(None) if rows is None else rows
        state = self.state_code[sel]
        idle = self.idle_power[sel]
        max_p = self.max_power[sel]
        off_p = self.off_power[sel]
        var = self.variability[sel]
        freq = self.frequency[sel]
        min_f = self.min_frequency[sel]
        max_f = self.max_frequency[sel]
        cap = self.power_cap[sel]
        util = self.utilization[sel]
        sens = self.sensitivity[sel]
        model = self.model
        alpha = model.alpha

        off = (state == _OFF) | (state == _DOWN)
        boot = state == _BOOTING
        shut = state == _SHUTTING_DOWN
        idle_m = state == _IDLE
        busy = state == _BUSY

        f_set = freq / max_f
        f_min = min_f / max_f
        dyn = (max_p - idle) * var * util

        # BUSY cap clamp.  ``budgeted <= 0`` and ``f_cap < f_min`` both
        # resolve to (f_min, violated) in the scalar model, so a single
        # guarded f_cap (0 when the budget is gone) covers both.
        capped = np.isfinite(cap)
        over = capped & (dyn > 0.0) & (idle + dyn * f_set**alpha > cap)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            f_cap = (
                np.maximum(cap - idle, 0.0) / np.where(dyn > 0.0, dyn, 1.0)
            ) ** (1.0 / alpha)
        f_eff = np.where(over, np.minimum(f_set, f_cap), f_set)
        clamp_to_min = over & (f_cap < f_min)
        f_eff = np.where(clamp_to_min, f_min, f_eff)
        busy_violated = clamp_to_min | (capped & (dyn <= 0.0) & (idle > cap))

        idle_violated = idle_m & (idle > cap)

        watts = np.select(
            [off, boot, shut, idle_m],
            [
                off_p,
                off_p + model.boot_power_fraction * (max_p * var),
                idle * model.shutdown_power_fraction,
                idle,
            ],
            default=idle + dyn * f_eff**alpha,
        )
        ratio = np.select(
            [idle_violated, idle_m, busy], [1.0, f_set, f_eff], default=0.0
        )
        speed = np.where(
            busy, np.maximum(1.0 - sens * (1.0 - f_eff), 1e-9), 0.0
        )
        violated = idle_violated | (busy & busy_violated)
        return OperatingPoints(watts, ratio, speed, violated)

    def _watts_kernel(self, sel) -> np.ndarray:
        """Watts for the selected rows via the kernel layer (JIT when
        numba is available, else a numpy expression bit-identical to
        ``operating_points(sel).watts``)."""
        model = self.model
        return kernels.node_watts(
            self.state_code[sel],
            self.idle_power[sel],
            self.max_power[sel],
            self.off_power[sel],
            self.variability[sel],
            self.frequency[sel],
            self.min_frequency[sel],
            self.max_frequency[sel],
            self.power_cap[sel],
            self.utilization[sel],
            model.alpha,
            model.boot_power_fraction,
            model.shutdown_power_fraction,
        )

    def machine_watts(self) -> float:
        """Total machine draw; folds dirty rows into the cached total.

        O(1) when clean; one kernel over the dirty rows otherwise; a
        full vectorized re-sum when at least half the rows are dirty.
        Totals are reduced with ``np.sum`` on the caller side of the
        kernel, so the JIT and numpy paths share one summation order.
        """
        n = len(self._watts)
        dirty = self._dirty
        if self._all_dirty or 2 * len(dirty) >= n:
            watts = self._watts_kernel(slice(None))
            self._watts = watts
            self._total = float(watts.sum())
            self._all_dirty = False
            dirty.clear()
        elif dirty:
            rows = np.fromiter(dirty, dtype=np.intp, count=len(dirty))
            rows.sort()
            fresh = self._watts_kernel(rows)
            self._total += float(fresh.sum() - self._watts[rows].sum())
            self._watts[rows] = fresh
            dirty.clear()
        return self._total

    def node_watts(self) -> np.ndarray:
        """Per-node current draw, ``machine.nodes`` order (a copy)."""
        self.machine_watts()
        return self._watts.copy()

    # ------------------------------------------------------------------
    # Lifecycle kernels (batch policy helpers)
    # ------------------------------------------------------------------
    def lifecycle_view(self, now: float) -> LifecycleView:
        """SoA lifecycle snapshot handed to ``Policy.on_tick_batch``."""
        return LifecycleView(
            now=now,
            node_id=self.node_id,
            state_code=self.state_code,
            idle_since=self.idle_since,
            bound_jobs=self.bound_jobs,
            idle_power=self.idle_power,
            nodes=self._nodes,
            state_counts=tuple(self._state_counts),
            ids_monotone=self._ids_monotone,
        )

    def idle_candidate_rows(self, now: float, threshold: float) -> np.ndarray:
        """Rows idle for at least *threshold* seconds, ordered by
        ``(idle_since, node_id)``; see
        :meth:`LifecycleView.idle_candidate_rows`."""
        return self.lifecycle_view(now).idle_candidate_rows(threshold)

    def off_rows(self) -> np.ndarray:
        """Rows currently OFF, ordered by node id; see
        :meth:`LifecycleView.off_rows`."""
        return self.lifecycle_view(0.0).off_rows()

    # ------------------------------------------------------------------
    # Prediction kernels (policy helpers)
    # ------------------------------------------------------------------
    def frequencies_for_cap(
        self,
        rows: np.ndarray,
        caps: np.ndarray,
        utilization: float = 1.0,
    ) -> np.ndarray:
        """Vector twin of :meth:`NodePowerModel.frequency_for_cap`:
        highest Hz per row whose predicted power meets the row's cap,
        clamped to the DVFS range."""
        caps = np.asarray(caps, dtype=float)
        idle = self.idle_power[rows]
        min_f = self.min_frequency[rows]
        max_f = self.max_frequency[rows]
        util = min(1.0, max(0.0, float(utilization)))
        dyn = (self.max_power[rows] - idle) * self.variability[rows] * util
        budgeted = caps - idle
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = (
                np.maximum(budgeted, 0.0) / np.where(dyn > 0.0, dyn, 1.0)
            ) ** (1.0 / self.model.alpha)
        freq = np.clip(ratio * max_f, min_f, max_f)
        freq = np.where(budgeted <= 0.0, min_f, freq)
        return np.where(
            dyn <= 0.0, np.where(caps >= idle, max_f, min_f), freq
        )

    def power_at_ratio(
        self,
        rows: np.ndarray,
        ratios: np.ndarray,
        utilization: float = 1.0,
    ) -> np.ndarray:
        """Vector twin of :meth:`NodePowerModel.power_at_ratio`:
        predicted BUSY watts per row at an explicit frequency ratio."""
        idle = self.idle_power[rows]
        min_ratio = self.min_frequency[rows] / self.max_frequency[rows]
        ratios = np.minimum(1.0, np.maximum(min_ratio, np.asarray(ratios, dtype=float)))
        util = min(1.0, max(0.0, float(utilization)))
        dyn = (self.max_power[rows] - idle) * self.variability[rows] * util
        return idle + dyn * ratios**self.model.alpha
