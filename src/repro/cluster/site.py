"""Site model: several machines sharing one facility envelope.

Two surveyed behaviours are inherently *inter-system*: Tokyo Tech's
TSUBAME2/TSUBAME3 "will need to share the facility power budget", and
CEA manually shuts nodes down "to shift power budget between systems".
A :class:`Site` therefore owns the facility, the thermal environment
and a list of machines, and can answer the site-level power questions
of survey Q2.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import ClusterError
from .facility import Facility
from .machine import Machine
from .thermal import AmbientModel, CoolingModel


class Site:
    """An HPC center: machines + facility + thermal environment."""

    def __init__(
        self,
        name: str,
        machines: Iterable[Machine],
        facility: Optional[Facility] = None,
        ambient: Optional[AmbientModel] = None,
        cooling: Optional[CoolingModel] = None,
        region: str = "unspecified",
    ) -> None:
        self.name = str(name)
        self.machines: List[Machine] = list(machines)
        if not self.machines:
            raise ClusterError(f"site {name!r} needs at least one machine")
        names = [m.name for m in self.machines]
        if len(set(names)) != len(names):
            raise ClusterError(f"site {name!r}: duplicate machine names {names}")
        self._by_name: Dict[str, Machine] = {m.name: m for m in self.machines}
        self.facility = facility or Facility(
            power_budget_watts=sum(m.peak_power for m in self.machines) * 1.2
        )
        self.ambient = ambient or AmbientModel()
        self.cooling = cooling or CoolingModel()
        self.region = region

    def machine(self, name: str) -> Machine:
        """Look up a machine by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ClusterError(f"site {self.name!r}: no machine {name!r}") from None

    @property
    def total_nodes(self) -> int:
        """Total node count across all machines."""
        return sum(len(m) for m in self.machines)

    @property
    def peak_it_power(self) -> float:
        """Variability-adjusted peak IT draw across machines, watts."""
        return sum(m.peak_power for m in self.machines)

    def headroom(self, current_it_watts: float, time: float) -> float:
        """Remaining site power headroom at *time*, watts.

        Accounts for the cooling overhead of the current IT load: the
        facility budget must cover IT power plus cooling power.
        """
        ambient = self.ambient.temperature(time)
        overhead = self.cooling.overhead_watts(current_it_watts, ambient)
        return self.facility.power_budget_watts - current_it_watts - overhead

    def max_it_power(self, time: float) -> float:
        """Largest IT load the facility budget can host at *time*.

        Solves ``L + L/cop(T) <= budget`` for L.
        """
        cop = self.cooling.cop(self.ambient.temperature(time))
        return self.facility.power_budget_watts * cop / (cop + 1.0)
