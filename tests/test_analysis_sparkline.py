"""Tests for the sparkline renderer."""


from repro.analysis import render_sparkline


class TestSparkline:
    def test_empty(self):
        assert render_sparkline([]) == ""

    def test_flat_series_mid_height(self):
        out = render_sparkline([5.0, 5.0, 5.0])
        assert out == "▄▄▄"

    def test_monotone_ramp(self):
        out = render_sparkline(list(range(9)))
        assert out[0] == " "
        assert out[-1] == "█"
        # Levels never decrease along a ramp.
        levels = " ▁▂▃▄▅▆▇█"
        indices = [levels.index(ch) for ch in out]
        assert indices == sorted(indices)

    def test_resampling_to_width(self):
        out = render_sparkline(list(range(1000)), width=50)
        assert len(out) == 50

    def test_short_series_not_padded(self):
        assert len(render_sparkline([1, 2, 3], width=60)) == 3

    def test_peak_visible_after_pooling(self):
        values = [0.0] * 100
        values[50] = 100.0
        out = render_sparkline(values, width=20)
        assert "█" in out

    def test_accepts_numpy(self):
        import numpy as np

        out = render_sparkline(np.linspace(0, 1, 30))
        assert len(out) == 30
