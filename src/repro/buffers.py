"""Compact numeric sample buffers for telemetry hot paths.

Long simulations append one sample per meter/channel per interval —
millions of appends on month-long runs.  ``array('d')`` stores them as
raw C doubles (8 bytes each, no per-sample PyObject), appends in O(1)
without boxing overhead, and exports the buffer protocol so numpy can
read it without copying element by element.

``series_view`` is the one subtlety: ``np.frombuffer`` over a live
``array('d')`` would pin the buffer — any later ``append`` then fails
with ``BufferError: cannot resize an array that is exporting buffers``.
The view is therefore materialized with ``.copy()`` before returning,
which also keeps the public ``series()`` contract identical to the old
list-backed code (an independent ndarray snapshot).
"""

from __future__ import annotations

from array import array

import numpy as np

__all__ = ["sample_buffer", "series_view"]


def sample_buffer() -> array:
    """A fresh, empty C-double sample buffer."""
    return array("d")


def series_view(buf: array) -> np.ndarray:
    """Snapshot *buf* as a float64 ndarray (one memcpy, never a live
    view — see module docstring)."""
    if not buf:
        return np.empty(0, dtype=np.float64)
    return np.frombuffer(buf, dtype=np.float64).copy()
