"""The survey questionnaire (Section IV, verbatim structure).

Eight questions, several with lettered sub-items, each carrying the
rationale the paper gives for asking it.  Encoded as data so analyses
can join responses to questions and so the questionnaire itself is a
testable artifact (count, coverage of rationale categories, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class Question:
    """One questionnaire item."""

    number: int
    text: str
    sub_items: Tuple[Tuple[str, str], ...] = ()
    rationale: str = ""
    theme: str = ""


QUESTIONNAIRE: List[Question] = [
    Question(
        1,
        "What motivated your site's development and implementation of "
        "energy or power aware job scheduling or resource management "
        "capabilities?",
        rationale=(
            "Determine each center's motivations in an attempt to identify "
            "motives common among multiple centers."
        ),
        theme="motivation",
    ),
    Question(
        2,
        "Please describe your data center and major high-performance "
        "computing system or systems where energy or power aware job "
        "scheduling and resource management capabilities have been "
        "deployed.",
        sub_items=(
            ("a", "Total site power budget or capacity in watts."),
            ("b", "Total site cooling capacity."),
            (
                "c",
                "Major HPC system(s): number of cabinets, nodes, and cores; "
                "peak performance; node architecture, high-speed network "
                "type, memory; peak, average, and idle power draw.",
            ),
        ),
        rationale=(
            "Determine each center's hardware environment; any EPA JSRM "
            "approach needs to take the hardware characteristics into "
            "consideration."
        ),
        theme="environment",
    ),
    Question(
        3,
        "Describe the general workload on your high-performance computing "
        "system or systems.",
        sub_items=(
            ("a", "What is running right now / a typical snapshot: how many "
                  "jobs, what sizes, how long do jobs run?"),
            ("b", "The backlog of queued jobs: how many waiting, sizes, "
                  "runtimes?"),
            ("c", "Throughput: approximately how many jobs per month?"),
            ("d", "Main scheduling goal (priority, turn-around time, "
                  "fairness, efficiency, utilization); capability vs. "
                  "capacity percentage."),
            ("e", "Min, median, max, and 10th/25th/75th/90th percentile job "
                  "size and wallclock time."),
        ),
        rationale=(
            "Determine the typical workloads running on that hardware; "
            "understanding workload characteristics is critical for "
            "evaluating each center's approach."
        ),
        theme="workload",
    ),
    Question(
        4,
        "Describe the energy and power aware job scheduling and resource "
        "management capabilities of your large-scale high-performance "
        "computing system or systems.",
        rationale="The specific point of the questionnaire.",
        theme="capabilities",
    ),
    Question(
        5,
        "List and briefly describe all of the elements that comprise your "
        "energy and power aware job scheduling and resource management "
        "capabilities.",
        sub_items=(
            ("a", "Include an implementation time component (when was it "
                  "implemented?)."),
            ("b", "Are these elements commercially available supported "
                  "products?"),
            ("c", "Has there been much non-portable/non-product work done "
                  "to implement your capabilities?"),
        ),
        rationale=(
            "Identify (1) how involved vendors are in helping centers build "
            "EPA JSRM solutions, and (2) how heavily centers are using "
            "one-off homegrown control systems."
        ),
        theme="elements",
    ),
    Question(
        6,
        "Do you have application/task level joint optimization, such as "
        "topology-aware task allocation, as a way of directly or "
        "indirectly improving energy consumption?  Did you engage software "
        "development communities to improve your solution for this "
        "capability?",
        rationale=(
            "A positive response would indicate a very high level of "
            "sophistication; such techniques likely require assistance from "
            "application developers."
        ),
        theme="sophistication",
    ),
    Question(
        7,
        "How well does your solution work?  What are the advantages and "
        "disadvantages of your implementation?  Describe any results, "
        "benefits, or unintended consequences.",
        rationale=(
            "Each center is the subject matter expert for their unique "
            "solution; allow an open assessment of efficacy."
        ),
        theme="assessment",
    ),
    Question(
        8,
        "What are the next steps for the energy or power aware job "
        "scheduling and resource management capability you have developed?",
        sub_items=(
            ("a", "Do you intend to continue site development and/or "
                  "product deployment?"),
            ("b", "Will your planned next steps drive new requirements in "
                  "procurement documents, NRE funding, etc.?"),
        ),
        rationale="Identify potential next steps and forward requirements.",
        theme="next-steps",
    ),
]


def question(number: int) -> Question:
    """Look up a question by its number (1-8)."""
    for q in QUESTIONNAIRE:
        if q.number == number:
            return q
    raise KeyError(f"no question {number}")


def themes() -> List[str]:
    """The rationale themes, in question order."""
    return [q.theme for q in QUESTIONNAIRE]
