"""Cross-version compatibility shims.

The project declares ``numpy>=1.24`` but numpy 2.0 renamed
``np.trapz`` to ``np.trapezoid`` (and later removed the old name).
Importing the integrator from here keeps every call site working on
both major versions.
"""

from __future__ import annotations

import numpy as np

try:  # numpy >= 2.0
    trapezoid = np.trapezoid
except AttributeError:  # pragma: no cover - numpy 1.x
    trapezoid = np.trapz

__all__ = ["trapezoid"]
