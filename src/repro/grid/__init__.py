"""Electricity-service-provider (ESP) interaction substrate.

The survey's motivating line of work (Bates et al. [6], Patki et al.
[36]) studies how supercomputing centers can respond to their
electricity providers: time-varying prices, demand-response requests,
and — in RIKEN's case — a choice between grid power and an on-site
gas turbine.  This package models those boundary conditions as
time-indexed signals the EPA policies consume.
"""

from .esp import ElectricityPriceSchedule, ElectricityServiceProvider
from .events import DemandResponseEvent, GridEventSchedule
from .market import RegionMarket
from .supply import DualSourceSupply, SupplyDecision

__all__ = [
    "DemandResponseEvent",
    "DualSourceSupply",
    "ElectricityPriceSchedule",
    "ElectricityServiceProvider",
    "GridEventSchedule",
    "RegionMarket",
    "SupplyDecision",
]
