"""Experiment ``exp-centers``: the capability matrix, executed.

Runs all nine center scenarios side by side (same seed, same simulated
span, scaled machines) and prints the comparative table the survey
could not include: what each center's production policy stack actually
does to utilization, waiting, power and energy.  The assertions pin
the per-center signatures from Tables I/II.

The sweep drives the parallel cached executor: every center is one
:class:`~repro.analysis.Variant` fanned out by
``ExperimentRunner.run_all(workers=N)`` with the on-disk JSON cache
under ``benchmarks/out/cache/``.  The bench checks parallel metrics
are identical to the sequential run and that a warm-cache rerun
executes zero simulations.
"""

from __future__ import annotations

import functools
import os
import shutil
import time

from repro.analysis import ExperimentExecutor, ExperimentRunner, Variant
from repro.analysis.report import render_columns, render_executor_summary
from repro.centers import build_center_simulation, center_slugs
from repro.units import HOUR

from .conftest import OUT_DIR, write_artifact

#: One configuration shared by every arm (and by the cache key).
CENTER_KW = dict(seed=13, duration=4 * HOUR, nodes=48)

CACHE_DIR = OUT_DIR / "cache" / "exp-centers"


def _variants():
    return [
        Variant(slug, functools.partial(build_center_simulation, slug,
                                        **CENTER_KW))
        for slug in center_slugs()
    ]


def _metric_row(slug, m):
    return [
        slug,
        f"{m.jobs_completed}/{m.jobs_submitted}",
        f"{m.utilization:.2f}",
        f"{m.mean_wait:.0f}",
        f"{m.average_power_watts / 1e3:.1f}",
        f"{m.peak_power_watts / 1e3:.1f}",
        f"{m.total_energy_joules / 3.6e6:.1f}",
        f"{m.jobs_killed}",
    ]


def test_bench_all_centers(benchmark, artifact_dir):
    shutil.rmtree(CACHE_DIR, ignore_errors=True)
    workers = min(4, os.cpu_count() or 1)

    # Reference: the exact sequential path (in-process, no cache).
    sequential = ExperimentRunner(_variants())
    t0 = time.perf_counter()
    sequential.run_all()
    seq_wall = time.perf_counter() - t0

    # Measured: the parallel executor, cold cache.
    parallel = ExperimentRunner(_variants())
    cold = ExperimentExecutor(workers=workers, cache_dir=CACHE_DIR)
    t0 = time.perf_counter()
    benchmark.pedantic(
        lambda: parallel.run_all(executor=cold), rounds=1, iterations=1
    )
    par_wall = time.perf_counter() - t0

    # Warm-cache rerun must execute nothing and agree exactly.
    rerun = ExperimentRunner(_variants())
    warm = ExperimentExecutor(workers=workers, cache_dir=CACHE_DIR)
    t0 = time.perf_counter()
    rerun.run_all(executor=warm)
    warm_wall = time.perf_counter() - t0

    by_slug = {r.name: r.metrics for r in parallel.results}
    rows = [_metric_row(slug, by_slug[slug]) for slug in center_slugs()]

    # Structural signatures come from the builders directly (building
    # is cheap; only runs are parallelized/cached).
    builds = {
        slug: build_center_simulation(slug, **CENTER_KW)
        for slug in center_slugs()
    }

    write_artifact(
        "exp-centers",
        "EXP-CENTERS — the nine scenarios executed "
        "(48 nodes, 4 simulated hours, seed 13)\n\n"
        + render_columns(
            ["center", "done", "util", "wait[s]", "avg kW", "peak kW",
             "kWh", "killed"],
            rows,
        )
        + "\n\nExecution (parallel cached executor):\n"
        + f"  sequential      : {seq_wall:6.2f}s\n"
        + f"  parallel cold   : {par_wall:6.2f}s  "
        + f"({workers} workers, {cold.last_executed} runs)\n"
        + f"  parallel warm   : {warm_wall:6.2f}s  "
        + f"({warm.last_cache_hits} cache hits)\n\n"
        + render_executor_summary(cold.last_records)
        + "\n\nScenario notes:\n"
        + "\n".join(
            f"  {slug}: {'; '.join(build.notes)}"
            for slug, build in builds.items()
        ),
    )

    # Parallel must be metric-identical to sequential, variant by
    # variant, and the warm rerun identical again with zero executions.
    assert [r.name for r in parallel.results] == \
           [r.name for r in sequential.results]
    for par, seq in zip(parallel.results, sequential.results):
        assert par.metrics.as_dict() == seq.metrics.as_dict(), par.name
    assert warm.last_executed == 0
    assert warm.last_cache_hits == len(center_slugs())
    for re_run, par in zip(rerun.results, parallel.results):
        assert re_run.metrics.as_dict() == par.metrics.as_dict(), re_run.name
    # Fan-out only pays with real cores; on >= 4 the parallel sweep
    # must beat sequential (the 2x target is asserted loosely to stay
    # robust on loaded CI machines).
    if workers >= 4 and (os.cpu_count() or 1) >= 4:
        assert par_wall < seq_wall, (par_wall, seq_wall)

    # Per-center signatures (Tables I/II).
    for slug in center_slugs():
        m = by_slug[slug]
        assert m.jobs_completed >= 0.5 * m.jobs_submitted, slug

    # Tokyo Tech: cooperative — never kills.
    assert by_slug["tokyotech"].jobs_killed == 0
    # KAUST: 70% of nodes capped at 270 W.
    kaust_machine = builds["kaust"].simulation.machine
    assert sum(1 for n in kaust_machine.nodes if n.power_cap == 270.0) \
        == round(0.7 * len(kaust_machine))
    # STFC: monitoring only — nothing capped, nothing powered down.
    stfc = builds["stfc"].simulation
    assert all(n.power_cap is None for n in stfc.machine.nodes)
    # JCAHPC: every node under a group cap.
    jcahpc = builds["jcahpc"].simulation
    assert all(n.power_cap is not None for n in jcahpc.machine.nodes)
    # RIKEN: the emergency limit is armed below peak.
    riken = builds["riken"].simulation
    assert riken.policies[0].limit_watts < riken.machine.peak_power
