"""Broker-steerable facility power budget for a federated site.

The federation's :class:`~repro.federation.broker.GlobalBroker` sends
each site a power-budget directive every coordination epoch; this
policy is the site-local enforcement half.  It follows the survey's
fine/coarse split: an admission gate vetoes starts that would exceed
the budget (coarse), and per-node caps squeeze the carried-over load
under it (fine).  The steerable attribute is named ``limit_watts`` so
the :mod:`repro.core.multi` budget-coordinator convention
(``_policy_budget_attr``) applies unchanged.

With an infinite limit the policy is inert — the broker-off baseline
runs the identical policy stack, so cost deltas measure coordination,
not configuration.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.epa import FunctionalCategory
from ..units import check_positive
from ..workload.job import Job
from .base import Policy


class SiteBudgetPolicy(Policy):
    """Hold the machine under an externally steered power budget.

    Parameters
    ----------
    limit_watts:
        The current budget (infinite = unconstrained).  Reassigned by
        the federation campaign between epochs.
    check_interval:
        Control-loop period, seconds.
    cap_nodes:
        Apply per-node power caps while a finite budget is in force
        (cleared when the budget lifts).
    """

    name = "site-budget"

    def __init__(
        self,
        limit_watts: float = float("inf"),
        check_interval: float = 300.0,
        cap_nodes: bool = True,
    ) -> None:
        super().__init__()
        if limit_watts <= 0:
            raise ValueError("limit_watts must be positive")
        self.limit_watts = limit_watts
        self.control_interval = check_positive("check_interval", check_interval)
        self.cap_nodes = cap_nodes
        self.vetoes = 0
        self._caps_applied = False

    # ------------------------------------------------------------------
    def _job_delta(self, job: Job) -> float:
        node = self.simulation.machine.nodes[0]
        return (
            job.nodes
            * (node.max_power - node.idle_power)
            * job.mean_power_intensity
        )

    def admit(self, job: Job, now: float) -> bool:
        if math.isinf(self.limit_watts):
            return True
        current = self.simulation.machine_power()
        if current + self._job_delta(job) > self.limit_watts:
            self.vetoes += 1
            return False
        return True

    def on_tick(self, now: float) -> None:
        if math.isinf(self.limit_watts):
            if self._caps_applied:
                machine = self.simulation.machine
                self.simulation.rm.set_power_cap(machine.nodes, None)
                self._caps_applied = False
            return
        if not self.cap_nodes:
            return
        machine = self.simulation.machine
        powered = [n for n in machine.nodes if n.is_on]
        if powered:
            per_node = self.limit_watts / len(powered)
            floor = max(n.cap_floor for n in powered)
            self.simulation.rm.set_power_cap(powered, max(per_node, floor))
            self._caps_applied = True

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "site-budget-gate",
                FunctionalCategory.RESOURCE_CONTROL,
                "veto job starts above the federated power budget",
            ),
            (
                "site-budget-caps",
                FunctionalCategory.POWER_CONTROL,
                "per-node caps enforcing the broker's epoch directive",
            ),
        ]
