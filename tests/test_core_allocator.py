"""Tests for node allocators."""

import numpy as np
import pytest

from repro.cluster import Machine, MachineSpec
from repro.cluster.topology import build_fat_tree
from repro.core import FirstFitAllocator, LowPowerAllocator, TopologyAwareAllocator
from repro.core.allocator import check_pool
from repro.core.scheduler import NodeSelection, RowPool
from repro.errors import AllocationError


@pytest.fixture
def topo_machine():
    spec = MachineSpec(name="m", nodes=32, nodes_per_cabinet=8)
    return Machine(spec, topology=build_fat_tree(32, arity=8))


class TestFirstFit:
    def test_picks_lowest_ids(self, small_machine):
        nodes = FirstFitAllocator().select(
            small_machine, small_machine.available_nodes, 4
        )
        assert [n.node_id for n in nodes] == [0, 1, 2, 3]

    def test_insufficient_raises(self, small_machine):
        with pytest.raises(AllocationError):
            FirstFitAllocator().select(small_machine, small_machine.nodes[:2], 4)

    def test_zero_count_raises(self, small_machine):
        with pytest.raises(AllocationError):
            FirstFitAllocator().select(small_machine, small_machine.nodes, 0)


class TestLowPower:
    def test_prefers_efficient_nodes(self, small_machine):
        small_machine.node(5).variability = 0.8
        small_machine.node(9).variability = 0.85
        nodes = LowPowerAllocator().select(
            small_machine, small_machine.available_nodes, 2
        )
        assert {n.node_id for n in nodes} == {5, 9}

    def test_tie_breaks_on_id(self, small_machine):
        nodes = LowPowerAllocator().select(
            small_machine, small_machine.available_nodes, 3
        )
        assert [n.node_id for n in nodes] == [0, 1, 2]


class TestTopologyAware:
    def test_compact_placement(self, topo_machine):
        allocator = TopologyAwareAllocator()
        nodes = allocator.select(topo_machine, topo_machine.available_nodes, 4)
        cost = topo_machine.topology.placement_cost([n.node_id for n in nodes])
        # 4 nodes fit inside one leaf switch: cost 2 (all pairs 2 hops).
        assert cost == pytest.approx(2.0)

    def test_beats_random_scatter(self, topo_machine):
        allocator = TopologyAwareAllocator()
        chosen = allocator.select(topo_machine, topo_machine.available_nodes, 8)
        compact_cost = topo_machine.topology.placement_cost(
            [n.node_id for n in chosen]
        )
        scattered = [topo_machine.node(i) for i in (0, 5, 10, 15, 20, 25, 30, 31)]
        scattered_cost = topo_machine.topology.placement_cost(
            [n.node_id for n in scattered]
        )
        assert compact_cost <= scattered_cost

    def test_fragmented_pool_greedy_fallback(self, topo_machine):
        # Only every other node is free: no contiguous window exists.
        pool = [n for n in topo_machine.nodes if n.node_id % 2 == 0]
        allocator = TopologyAwareAllocator()
        nodes = allocator.select(topo_machine, pool, 4)
        assert len(nodes) == 4
        assert len({n.node_id for n in nodes}) == 4

    def test_machine_without_topology_falls_back(self, small_machine):
        allocator = TopologyAwareAllocator()
        nodes = allocator.select(small_machine, small_machine.available_nodes, 4)
        assert [n.node_id for n in nodes] == [0, 1, 2, 3]

    def test_single_node(self, topo_machine):
        nodes = TopologyAwareAllocator().select(
            topo_machine, topo_machine.available_nodes, 1
        )
        assert len(nodes) == 1


class TestStructuredAllocationError:
    def test_check_pool_passes_when_enough(self):
        check_pool(4, 4)  # must not raise

    def test_shortage_carries_counts(self):
        with pytest.raises(AllocationError) as exc_info:
            check_pool(3, 8)
        exc = exc_info.value
        assert exc.requested == 8
        assert exc.available == 3
        assert exc.shortfall == 5

    def test_non_positive_request(self):
        with pytest.raises(AllocationError) as exc_info:
            check_pool(10, 0)
        assert exc_info.value.requested == 0
        assert exc_info.value.available == 10

    def test_select_raises_structured(self, small_machine):
        with pytest.raises(AllocationError) as exc_info:
            FirstFitAllocator().select(small_machine, small_machine.nodes[:2], 4)
        assert exc_info.value.requested == 4
        assert exc_info.value.available == 2

    def test_bare_error_has_no_shortfall(self):
        assert AllocationError("boom").shortfall is None


def make_selection(machine, avail_ids=None):
    """A NodeSelection built straight from a machine (node ids are
    0..n-1 in id order, so rows == ids — the same precondition the
    simulation checks before handing allocators a selection)."""
    nodes = machine.nodes
    mask = np.zeros(len(nodes), dtype=bool)
    if avail_ids is None:
        avail_ids = [node.node_id for node in nodes if node.is_available]
    mask[list(avail_ids)] = True
    return NodeSelection(
        avail_mask=mask,
        nodes_arr=np.array(nodes, dtype=object),
        max_power=np.array([node.max_power for node in nodes]),
        variability=np.array([node.variability for node in nodes]),
    )


class TestSelectRowsEquivalence:
    """select_rows must return the same nodes in the same order as the
    scalar select() — the decision-identity contract behind the
    batch-aware scheduler passes."""

    @pytest.mark.parametrize("allocator_cls", [FirstFitAllocator, LowPowerAllocator])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_pools_match(self, allocator_cls, seed):
        rng = np.random.default_rng(seed)
        machine = Machine(MachineSpec(name="m", nodes=48, nodes_per_cabinet=8))
        # Deliberate key ties: a small value alphabet forces the
        # argpartition threshold logic through its equal-key branch.
        for node in machine.nodes:
            node.variability = float(rng.choice([0.95, 1.0, 1.05]))
        avail_ids = sorted(
            rng.choice(48, size=int(rng.integers(8, 48)), replace=False).tolist()
        )
        available = [machine.node(i) for i in avail_ids]
        count = int(rng.integers(1, len(avail_ids) + 1))

        allocator = allocator_cls()
        scalar = allocator.select(machine, available, count)
        pool = RowPool(make_selection(machine, avail_ids))
        rows = allocator.select_rows(pool, count)
        assert pool.materialize(rows) == list(scalar)

    @pytest.mark.parametrize("allocator_cls", [FirstFitAllocator, LowPowerAllocator])
    def test_sequential_grants_match(self, allocator_cls):
        # Draw the pool down across several grants, the way one
        # scheduling pass does, and require the whole grant sequence
        # to match the scalar path's.
        rng = np.random.default_rng(99)
        machine = Machine(MachineSpec(name="m", nodes=64, nodes_per_cabinet=8))
        for node in machine.nodes:
            node.variability = float(rng.choice([0.94, 0.97, 1.0]))
        allocator = allocator_cls()

        pool = RowPool(make_selection(machine))
        remaining = list(machine.nodes)
        for count in (7, 1, 16, 3, 9):
            scalar = allocator.select(machine, remaining, count)
            rows = allocator.select_rows(pool, count)
            assert pool.materialize(rows) == list(scalar)
            pool.remove_rows(rows)
            granted = set(scalar)
            remaining = [n for n in remaining if n not in granted]
            assert len(pool) == len(remaining)

    def test_row_pool_iterates_in_id_order(self, small_machine):
        pool = RowPool(make_selection(small_machine, [9, 2, 5]))
        assert [n.node_id for n in pool] == [2, 5, 9]


class TestTopologyRngDeterminism:
    """Regression for the sampled-seed RNG: draws are cached per pass,
    so repeated selections inside one pass are identical and replayed
    pass sequences re-derive the same placements."""

    def test_select_is_stable_within_a_pass(self, topo_machine):
        allocator = TopologyAwareAllocator(rng_seed=42)
        allocator.begin_pass(0.0)
        pool = [n for n in topo_machine.nodes if n.node_id % 2 == 0]
        first = allocator.select(topo_machine, pool, 4)
        second = allocator.select(topo_machine, pool, 4)
        assert [n.node_id for n in first] == [n.node_id for n in second]

    def test_replayed_pass_sequence_is_identical(self, topo_machine):
        pool = [n for n in topo_machine.nodes if n.node_id % 2 == 0]

        def run_passes():
            allocator = TopologyAwareAllocator(rng_seed=7)
            picks = []
            for pass_no in range(5):
                allocator.begin_pass(float(pass_no))
                chosen = allocator.select(topo_machine, pool, 6)
                picks.append([n.node_id for n in chosen])
            return picks

        assert run_passes() == run_passes()

    def test_passes_draw_independently(self):
        allocator = TopologyAwareAllocator(sample_seeds=4, rng_seed=3)
        allocator.begin_pass(0.0)
        first = list(allocator._pass_draws)
        allocator.begin_pass(1.0)
        assert allocator._pass_draws != first

    def test_stride_mode_unchanged_without_seed(self, topo_machine):
        allocator = TopologyAwareAllocator(sample_seeds=4)
        allocator.begin_pass(0.0)
        assert allocator._pass_draws is None
        assert allocator._seed_indices(32) == [0, 8, 16, 24]

    def test_rng_mode_still_selects_count_nodes(self, topo_machine):
        allocator = TopologyAwareAllocator(rng_seed=1)
        allocator.begin_pass(0.0)
        pool = [n for n in topo_machine.nodes if n.node_id % 3 == 0]
        nodes = allocator.select(topo_machine, pool, 4)
        assert len({n.node_id for n in nodes}) == 4
