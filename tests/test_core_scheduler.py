"""Tests for FCFS and backfilling schedulers (decision logic only)."""


from repro.core import (
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
    SchedulingContext,
)
from repro.core.scheduler import RunningJobInfo
from tests.conftest import make_job


def ctx(machine, pending, running=(), admit=None, now=0.0):
    """Build a SchedulingContext from terse inputs."""
    available = [n for n in machine.nodes if n.is_available]
    return SchedulingContext(
        now=now,
        machine=machine,
        pending=list(pending),
        available=available,
        running=list(running),
        admit=admit or (lambda job: True),
        usable_node_count=len(machine.nodes),
    )


def occupy(machine, node_ids, job_id="running", end=1000.0):
    """Mark nodes busy and return the RunningJobInfo."""
    job = make_job(job_id=job_id, nodes=len(node_ids), work=end, walltime=end)
    job.start(0.0, list(node_ids))
    for nid in node_ids:
        machine.node(nid).assign(job_id, 0.0)
    return RunningJobInfo(job, tuple(node_ids), end)


class TestFcfs:
    def test_starts_in_order(self, small_machine):
        jobs = [make_job(job_id=f"j{i}", nodes=4, submit=i) for i in range(3)]
        decisions = FcfsScheduler().schedule(ctx(small_machine, jobs))
        assert [d.job.job_id for d in decisions] == ["j0", "j1", "j2"]

    def test_blocks_behind_big_job(self, small_machine):
        jobs = [
            make_job(job_id="big", nodes=32),  # larger than the machine
            make_job(job_id="small", nodes=1),
        ]
        decisions = FcfsScheduler().schedule(ctx(small_machine, jobs))
        assert decisions == []

    def test_admission_veto_blocks(self, small_machine):
        jobs = [make_job(job_id="a", nodes=1), make_job(job_id="b", nodes=1)]
        decisions = FcfsScheduler().schedule(
            ctx(small_machine, jobs, admit=lambda j: j.job_id != "a")
        )
        assert decisions == []

    def test_no_double_allocation(self, small_machine):
        jobs = [make_job(job_id=f"j{i}", nodes=8) for i in range(3)]
        decisions = FcfsScheduler().schedule(ctx(small_machine, jobs))
        assert len(decisions) == 2  # 16 nodes hold two 8-node jobs
        used = [n.node_id for d in decisions for n in d.nodes]
        assert len(used) == len(set(used))


class TestEasyBackfill:
    def test_backfills_around_blocked_head(self, small_machine):
        running = occupy(small_machine, list(range(12)), end=1000.0)
        jobs = [
            make_job(job_id="head", nodes=8, walltime=500.0),   # needs 8, only 4 free
            make_job(job_id="filler", nodes=2, walltime=400.0),  # ends before shadow
        ]
        decisions = EasyBackfillScheduler().schedule(
            ctx(small_machine, jobs, running=[running])
        )
        assert [d.job.job_id for d in decisions] == ["filler"]

    def test_does_not_delay_head_reservation(self, small_machine):
        # Head needs all 16 nodes at t=1000 (when the runner ends).
        running = occupy(small_machine, list(range(12)), end=1000.0)
        jobs = [
            make_job(job_id="head", nodes=16, walltime=500.0),
            make_job(job_id="long", nodes=4, walltime=5000.0),  # would straddle
        ]
        decisions = EasyBackfillScheduler().schedule(
            ctx(small_machine, jobs, running=[running])
        )
        # 'long' uses the 4 free nodes, but they are needed at shadow:
        # spare = 16(free at shadow) - 16(head) = 0, and it ends after
        # the shadow, so it must NOT start.
        assert decisions == []

    def test_spare_nodes_allow_long_backfill(self, small_machine):
        # Head needs only 12 at shadow; 4 spare nodes exist.
        running = occupy(small_machine, list(range(12)), end=1000.0)
        jobs = [
            make_job(job_id="head", nodes=12, walltime=500.0),
            make_job(job_id="long", nodes=4, walltime=5000.0),
        ]
        decisions = EasyBackfillScheduler().schedule(
            ctx(small_machine, jobs, running=[running])
        )
        assert [d.job.job_id for d in decisions] == ["long"]

    def test_starts_everything_when_it_fits(self, small_machine):
        jobs = [make_job(job_id=f"j{i}", nodes=4) for i in range(4)]
        decisions = EasyBackfillScheduler().schedule(ctx(small_machine, jobs))
        assert len(decisions) == 4

    def test_impossible_head_does_not_block_others(self, small_machine):
        jobs = [
            make_job(job_id="impossible", nodes=99),
            make_job(job_id="ok", nodes=2, walltime=100.0),
        ]
        decisions = EasyBackfillScheduler().schedule(ctx(small_machine, jobs))
        assert [d.job.job_id for d in decisions] == ["ok"]

    def test_admission_blocked_head_conservative_backfill(self, small_machine):
        # Head vetoed by admission with plenty of nodes: backfill may
        # use only currently spare nodes.
        jobs = [
            make_job(job_id="head", nodes=4),
            make_job(job_id="ok", nodes=2, walltime=100.0),
        ]
        decisions = EasyBackfillScheduler().schedule(
            ctx(small_machine, jobs, admit=lambda j: j.job_id != "head")
        )
        assert [d.job.job_id for d in decisions] == ["ok"]


class TestConservativeBackfill:
    def test_starts_when_fits(self, small_machine):
        jobs = [make_job(job_id="a", nodes=8), make_job(job_id="b", nodes=8)]
        decisions = ConservativeBackfillScheduler().schedule(
            ctx(small_machine, jobs)
        )
        assert len(decisions) == 2

    def test_reservations_protect_every_job(self, small_machine):
        running = occupy(small_machine, list(range(12)), end=1000.0)
        jobs = [
            make_job(job_id="first", nodes=16, walltime=500.0),
            make_job(job_id="second", nodes=8, walltime=500.0),
            # This one would delay 'second' if started (4 free nodes,
            # ends after second's reserved start).
            make_job(job_id="greedy", nodes=4, walltime=50_000.0),
        ]
        decisions = ConservativeBackfillScheduler().schedule(
            ctx(small_machine, jobs, running=[running])
        )
        assert decisions == []

    def test_harmless_backfill_allowed(self, small_machine):
        running = occupy(small_machine, list(range(12)), end=1000.0)
        jobs = [
            make_job(job_id="head", nodes=16, walltime=500.0),
            make_job(job_id="short", nodes=2, walltime=300.0),
        ]
        decisions = ConservativeBackfillScheduler().schedule(
            ctx(small_machine, jobs, running=[running])
        )
        assert [d.job.job_id for d in decisions] == ["short"]

    def test_oversized_job_skipped(self, small_machine):
        jobs = [make_job(job_id="huge", nodes=999), make_job(job_id="ok", nodes=1)]
        decisions = ConservativeBackfillScheduler().schedule(
            ctx(small_machine, jobs)
        )
        assert [d.job.job_id for d in decisions] == ["ok"]

    def test_infeasible_reservation_does_not_delay_later_jobs(
        self, small_machine
    ):
        # Regression: a job that fits nowhere on the free-node profile
        # (8 of 16 nodes shutting down, so only 8 can free up) used to
        # be reserved at the profile end anyway, driving the profile
        # negative and pushing the 4-node job behind it into a future
        # reservation even though 8 nodes are idle right now.
        from repro.cluster.node import NodeState

        for node in small_machine.nodes[:8]:
            node.transition(NodeState.SHUTTING_DOWN, 0.0)
        jobs = [
            make_job(job_id="big", nodes=12, walltime=500.0),
            make_job(job_id="small", nodes=4, walltime=500.0),
        ]
        decisions = ConservativeBackfillScheduler().schedule(
            ctx(small_machine, jobs)
        )
        assert [d.job.job_id for d in decisions] == ["small"]
