"""Tokyo Tech (TSUBAME) scenario — Table I row 2.

Production: dynamic node boot/shutdown to stay under a power cap
(summer only, ~30-minute enforcement window, cooperative with the
scheduler — no job killing); idle-node shutdown; post-job energy
reports.  Tech development: inter-system budget sharing and user
efficiency marks (the reporting policy grades every job).
"""

from __future__ import annotations

from ..cluster.thermal import AmbientModel
from ..core.backfill import EasyBackfillScheduler
from ..core.simulation import ClusterSimulation
from ..policies.dynamic_provisioning import DynamicProvisioningPolicy
from ..policies.node_shutdown import IdleShutdownPolicy
from ..policies.reporting import EnergyReportingPolicy
from ..units import DAY
from .base import CenterBuild, center_workload, standard_machine, standard_site

#: Simulated seconds at which northern-hemisphere summer begins (day 152).
SUMMER_START = 152.0 * DAY


def build_simulation(
    seed: int = 0,
    duration: float = 2.0 * DAY,
    nodes: int = 128,
    cap_fraction: float = 0.75,
    start_in_summer: bool = True,
) -> CenterBuild:
    """Assemble the Tokyo Tech scenario.

    With ``start_in_summer`` the clock starts inside the summer window
    so the seasonal cap is active (the interesting regime); set it
    False to watch the policy stand down.
    """
    # TSUBAME: GPU-dense nodes, high per-node power.
    machine = standard_machine(
        "tsubame", nodes=nodes, idle_power=150.0, max_power=600.0,
        seed=seed, boot_time=300.0,
    )
    site = standard_site(
        "tokyotech", machine, region="Asia",
        ambient=AmbientModel(mean=16.0, seasonal_amplitude=11.0),
    )
    cap = machine.peak_power * cap_fraction
    start_time = SUMMER_START if start_in_summer else 0.0
    workload = center_workload("tokyotech", machine, duration=duration, seed=seed)
    for job in workload:
        job.submit_time += start_time

    simulation = ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        workload,
        policies=[
            DynamicProvisioningPolicy(
                cap_watts=cap, window=1800.0, summer_only=True,
            ),
            IdleShutdownPolicy(idle_threshold=1800.0, min_spare=4),
            EnergyReportingPolicy(),
        ],
        site=site,
        seed=seed,
        start_time=start_time,
        cap_watts_for_metrics=cap,
    )
    return CenterBuild(
        "tokyotech",
        simulation,
        notes=[
            f"summer cap {cap / 1e3:.0f} kW over 30 min window",
            "idle shutdown after 30 min; energy report per job",
        ],
    )
