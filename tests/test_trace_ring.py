"""Tests for TraceRecorder ring retention (max_records)."""

from __future__ import annotations

import pytest

from repro.simulator import TraceRecorder


class TestRingRetention:
    def test_unbounded_by_default(self):
        tr = TraceRecorder()
        for i in range(1000):
            tr.emit(float(i), "cat.a", i=i)
        assert len(tr) == 1000
        assert tr.total_emitted == 1000

    def test_bound_keeps_trailing_window(self):
        tr = TraceRecorder(max_records=10)
        for i in range(100):
            tr.emit(float(i), "cat.a", i=i)
        assert len(tr) == 10
        assert tr.total_emitted == 100
        assert [r.data["i"] for r in tr.records()] == list(range(90, 100))

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError, match="max_records"):
            TraceRecorder(max_records=0)
        with pytest.raises(ValueError, match="max_records"):
            TraceRecorder(max_records=-3)

    def test_category_queries_consistent_after_drops(self):
        tr = TraceRecorder(max_records=20)
        for i in range(200):
            tr.emit(float(i), "even" if i % 2 == 0 else "odd", i=i)
        evens = [r.data["i"] for r in tr.records("even")]
        odds = [r.data["i"] for r in tr.records("odd")]
        assert evens == [i for i in range(180, 200) if i % 2 == 0]
        assert odds == [i for i in range(180, 200) if i % 2 == 1]
        assert tr.count("even") == 10
        assert tr.count("odd") == 10
        assert tr.count() == 20

    def test_prefix_merge_preserves_emission_order(self):
        tr = TraceRecorder(max_records=30)
        for i in range(120):
            tr.emit(float(i), f"job.{'start' if i % 3 else 'end'}", i=i)
        merged = [r.data["i"] for r in tr.records("job")]
        assert merged == sorted(merged)
        assert len(merged) == 30

    def test_iter_between_respects_window(self):
        tr = TraceRecorder(max_records=25)
        for i in range(100):
            tr.emit(float(i), "m.sample", i=i)
        got = [r.data["i"] for r in tr.iter_between(0.0, 1000.0)]
        assert got == list(range(75, 100))
        narrow = [r.data["i"] for r in tr.iter_between(80.0, 90.0, "m")]
        assert narrow == list(range(80, 90))

    def test_emit_stays_amortized_constant(self):
        """The dead prefix is physically deleted in chunks; storage
        never exceeds the window plus the compaction slack."""
        tr = TraceRecorder(max_records=100)
        for i in range(50_000):
            tr.emit(float(i), "c", i=i)
        assert len(tr) == 100
        assert len(tr._records) <= 2 * max(256, 100) + 2

    def test_subscribers_see_everything(self):
        seen = []
        tr = TraceRecorder(max_records=5)
        tr.subscribe(lambda r: seen.append(r.data["i"]))
        for i in range(50):
            tr.emit(float(i), "c", i=i)
        assert seen == list(range(50))
        assert len(tr) == 5

    def test_clear_resets_window_but_not_total(self):
        tr = TraceRecorder(max_records=5)
        for i in range(20):
            tr.emit(float(i), "c", i=i)
        tr.clear()
        assert len(tr) == 0
        assert tr.total_emitted == 20
        tr.emit(99.0, "c", i=99)
        assert [r.data["i"] for r in tr.records("c")] == [99]

    def test_window_exactly_at_bound(self):
        tr = TraceRecorder(max_records=7)
        for i in range(7):
            tr.emit(float(i), "c", i=i)
        assert len(tr) == 7
        tr.emit(7.0, "c", i=7)
        assert [r.data["i"] for r in tr.records()] == list(range(1, 8))
