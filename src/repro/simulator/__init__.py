"""Discrete-event simulation engine.

This is the bottom-most substrate: a deterministic event-driven
simulator with a monotonic clock, cancellable event handles, periodic
processes, named seeded random-number streams and a structured trace
recorder.  Everything above (cluster, power, scheduling) is written as
callbacks scheduled on this engine.
"""

from .engine import EventHandle, Simulator
from .events import Event, EventPriority
from .rng import RngStreams, derive_seed
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Event",
    "EventHandle",
    "EventPriority",
    "RngStreams",
    "derive_seed",
    "Simulator",
    "TraceRecord",
    "TraceRecorder",
]
