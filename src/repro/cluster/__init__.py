"""Machine and facility model.

This package models the physical substrate the surveyed centers run:
nodes with explicit power states and boot/shutdown latencies, cabinets,
machines, multi-system sites sharing one facility power envelope,
interconnect topologies, the electrical/cooling plant (PDUs, chillers)
and the thermal environment (seasonal/diurnal ambient temperature,
cooling efficiency) that several surveyed policies key off (Tokyo
Tech's summer-only capping, RIKEN's temperature-based power estimates,
LRZ's infrastructure-efficiency-aware scheduling).
"""

from .node import Node, NodeState
from .cabinet import Cabinet
from .machine import Machine, MachineSpec
from .site import Site
from .topology import (
    Topology,
    build_dragonfly,
    build_fat_tree,
    build_torus3d,
)
from .facility import Chiller, Facility, MaintenanceWindow, PowerDistributionUnit
from .thermal import AmbientModel, CoolingModel
from .variability import VariabilityModel
from .failures import FailureInjector

__all__ = [
    "AmbientModel",
    "Cabinet",
    "Chiller",
    "CoolingModel",
    "Facility",
    "FailureInjector",
    "Machine",
    "MachineSpec",
    "MaintenanceWindow",
    "Node",
    "NodeState",
    "PowerDistributionUnit",
    "Site",
    "Topology",
    "VariabilityModel",
    "build_dragonfly",
    "build_fat_tree",
    "build_torus3d",
]
