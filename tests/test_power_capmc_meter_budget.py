"""Tests for CAPMC facade, power meter and hierarchical budgets."""

import pytest

from repro.errors import BudgetError, PowerCapError
from repro.power import Capmc, PowerBudget, PowerMeter
from repro.power.pue import FacilityPowerModel
from repro.cluster.site import Site
from repro.cluster.thermal import AmbientModel, CoolingModel
from repro.simulator import Simulator


class TestCapmc:
    def test_node_caps(self, small_machine):
        capmc = Capmc(small_machine)
        changed = capmc.set_node_cap([0, 1, 2], 200.0)
        assert changed == 3
        assert small_machine.node(0).power_cap == 200.0
        assert small_machine.node(3).power_cap is None

    def test_system_cap_spreads_uniformly(self, small_machine):
        capmc = Capmc(small_machine)
        capmc.set_system_cap(16 * 250.0)
        assert all(n.power_cap == pytest.approx(250.0) for n in small_machine.nodes)
        assert capmc.system_cap == 16 * 250.0

    def test_system_cap_clear(self, small_machine):
        capmc = Capmc(small_machine)
        capmc.set_system_cap(16 * 250.0)
        capmc.set_system_cap(None)
        assert all(n.power_cap is None for n in small_machine.nodes)

    def test_system_cap_below_floor_rejected(self, small_machine):
        capmc = Capmc(small_machine)
        with pytest.raises(PowerCapError):
            capmc.set_system_cap(16 * 50.0)  # below idle floor

    def test_get_power_idle_machine(self, small_machine):
        capmc = Capmc(small_machine)
        idle = small_machine.idle_floor_power
        assert capmc.get_power() == pytest.approx(idle)

    def test_node_status_groups(self, small_machine):
        small_machine.node(0).assign("j", 0.0)
        capmc = Capmc(small_machine)
        status = capmc.node_status()
        assert 0 in status["busy"]
        assert len(status["idle"]) == 15

    def test_idle_nodes_and_counts(self, small_machine):
        capmc = Capmc(small_machine)
        assert capmc.powered_on_count() == 16
        assert len(capmc.idle_nodes()) == 16


class TestPowerMeter:
    def test_sampling_and_energy(self):
        sim = Simulator()
        meter = PowerMeter(sim, lambda: 100.0, interval=10.0)
        meter.start()
        sim.run(until=100.0)
        meter.stop()
        meter.sample()
        # 100 W for 100 s = 10 kJ.
        assert meter.energy_joules == pytest.approx(10_000.0)
        assert meter.average_watts() == pytest.approx(100.0)
        assert meter.peak_watts() == 100.0

    def test_trapezoid_on_ramp(self):
        sim = Simulator()
        level = {"w": 0.0}
        meter = PowerMeter(sim, lambda: level["w"], interval=10.0)
        meter.start()
        sim.at(5.0, lambda: level.update(w=100.0))
        sim.run(until=20.0)
        meter.stop()
        # Samples: t0=0W, t10=100W, t20=100W -> energy = 500+1000.
        assert meter.energy_joules == pytest.approx(1500.0)

    def test_window_average(self):
        sim = Simulator()
        level = {"w": 100.0}
        meter = PowerMeter(sim, lambda: level["w"], interval=10.0)
        meter.start()
        sim.at(50.0, lambda: level.update(w=200.0))
        sim.run(until=100.0)
        recent = meter.window_average(30.0)
        assert recent == pytest.approx(200.0)
        overall = meter.window_average(1000.0)
        assert 100.0 < overall < 200.0

    def test_exceedance_fraction(self):
        sim = Simulator()
        values = iter([50, 150, 150, 50, 50])
        meter = PowerMeter(sim, lambda: next(values, 50), interval=1.0)
        meter.start()
        sim.run(until=4.0)
        assert meter.exceedance_fraction(100.0) == pytest.approx(2 / 5)

    def test_stop_halts_sampling(self):
        sim = Simulator()
        meter = PowerMeter(sim, lambda: 1.0, interval=1.0)
        meter.start()
        sim.run(until=5.0)
        meter.stop()
        count = meter.num_samples
        sim.at(sim.now + 10, lambda: None)
        sim.run()
        assert meter.num_samples == count

    def test_same_timestamp_sample_replaces_not_appends(self):
        # finalize()-style flush: stop() then sample() at the instant a
        # periodic sample already fired must not duplicate the
        # timestamp nor skew the trapezoidal integral.
        sim = Simulator()
        meter = PowerMeter(sim, lambda: 100.0, interval=10.0)
        meter.start()
        sim.run(until=50.0)
        count = meter.num_samples
        meter.stop()
        meter.sample()  # same timestamp as the t=50 periodic sample
        assert meter.num_samples == count
        times, _ = meter.series()
        assert len(set(times.tolist())) == len(times)
        assert meter.energy_joules == pytest.approx(100.0 * 50.0)

    def test_replacement_corrects_energy_integral(self):
        # A changed value at a replaced timestamp re-settles the last
        # trapezoid with the new endpoint.
        sim = Simulator()
        level = {"w": 100.0}
        meter = PowerMeter(sim, lambda: level["w"], interval=10.0)
        meter.start()
        sim.run(until=10.0)
        assert meter.energy_joules == pytest.approx(1000.0)
        level["w"] = 200.0
        meter.sample()  # still at t=10: replaces the 100 W sample
        assert meter.num_samples == 2
        # Trapezoid 0..10 is now (100 + 200) / 2 * 10.
        assert meter.energy_joules == pytest.approx(1500.0)
        assert meter.peak_watts() == pytest.approx(200.0)


class TestPowerBudget:
    def test_subdivide_reserves_parent(self):
        root = PowerBudget("site", 1000.0)
        a = root.subdivide("sysA", 600.0)
        assert root.headroom == pytest.approx(400.0)
        assert a.limit_watts == 600.0

    def test_overcommit_rejected(self):
        root = PowerBudget("site", 1000.0)
        root.subdivide("sysA", 600.0)
        with pytest.raises(BudgetError):
            root.subdivide("sysB", 500.0)

    def test_reserve_release(self):
        budget = PowerBudget("b", 100.0)
        budget.reserve(60.0)
        assert budget.headroom == pytest.approx(40.0)
        assert not budget.can_reserve(50.0)
        budget.release(60.0)
        assert budget.headroom == pytest.approx(100.0)

    def test_release_more_than_reserved_rejected(self):
        budget = PowerBudget("b", 100.0)
        budget.reserve(10.0)
        with pytest.raises(BudgetError):
            budget.release(20.0)

    def test_resize_shift_between_systems(self):
        # The CEA manual budget shift: shrink one child, grow another.
        root = PowerBudget("site", 1000.0)
        a = root.subdivide("sysA", 600.0)
        b = root.subdivide("sysB", 400.0)
        a.resize(450.0)
        b.resize(550.0)
        root.validate()
        assert a.limit_watts == 450.0
        assert b.limit_watts == 550.0

    def test_resize_below_commitment_rejected(self):
        root = PowerBudget("site", 1000.0)
        a = root.subdivide("sysA", 600.0)
        a.reserve(500.0)
        with pytest.raises(BudgetError):
            a.resize(400.0)

    def test_grow_beyond_parent_rejected(self):
        root = PowerBudget("site", 1000.0)
        a = root.subdivide("sysA", 600.0)
        with pytest.raises(BudgetError):
            a.resize(1100.0)

    def test_find_and_walk(self):
        root = PowerBudget("site", 1000.0)
        a = root.subdivide("sysA", 600.0)
        a.subdivide("partition0", 100.0)
        names = [b.name for b in root.walk()]
        assert names == ["site", "sysA", "partition0"]
        assert root.find("partition0").limit_watts == 100.0
        with pytest.raises(BudgetError):
            root.find("nope")

    def test_duplicate_child_rejected(self):
        root = PowerBudget("site", 1000.0)
        root.subdivide("a", 100.0)
        with pytest.raises(BudgetError):
            root.subdivide("a", 100.0)


class TestFacilityPowerModel:
    def _site(self, small_machine):
        return Site(
            "s", [small_machine],
            ambient=AmbientModel(mean=20.0, seasonal_amplitude=0.0,
                                 diurnal_amplitude=0.0),
            cooling=CoolingModel(cop_max=4.0, cop_min=4.0,
                                 free_cooling_below=0.0, design_ambient=50.0),
        )

    def test_total_includes_overhead(self, small_machine):
        model = FacilityPowerModel(self._site(small_machine))
        assert model.total_watts(1000.0, 0.0) == pytest.approx(1250.0)

    def test_pue(self, small_machine):
        model = FacilityPowerModel(self._site(small_machine))
        assert model.pue(0.0) == pytest.approx(1.25)
        assert model.efficient_now(0.0, pue_threshold=1.3)
        assert not model.efficient_now(0.0, pue_threshold=1.2)

    def test_budget_compliance(self, small_machine):
        site = self._site(small_machine)
        model = FacilityPowerModel(site)
        max_it = site.max_it_power(0.0)
        assert model.budget_compliant(max_it * 0.99, 0.0)
        assert not model.budget_compliant(max_it * 1.01, 0.0)
