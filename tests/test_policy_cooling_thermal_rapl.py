"""Tests for cooling-aware, thermal-aware and RAPL-enforcement policies."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.cluster.site import Site
from repro.cluster.thermal import AmbientModel, CoolingModel
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.errors import PolicyError
from repro.policies import (
    CoolingAwarePolicy,
    RaplEnforcementPolicy,
    ThermalAwarePolicy,
)
from repro.units import DAY, HOUR
from repro.workload import JobState
from repro.workload.phases import COMPUTE_BOUND
from tests.conftest import make_job


def machine16(**kw):
    defaults = dict(name="m", nodes=16, idle_power=100.0, max_power=400.0)
    defaults.update(kw)
    return Machine(MachineSpec(**defaults))


def diurnal_site(machine, mean=18.0, diurnal=12.0):
    return Site(
        "s", [machine],
        ambient=AmbientModel(mean=mean, seasonal_amplitude=0.0,
                             diurnal_amplitude=diurnal),
        cooling=CoolingModel(cop_max=8.0, cop_min=2.0,
                             free_cooling_below=10.0, design_ambient=30.0),
    )


class TestCoolingAware:
    def test_requires_site(self):
        with pytest.raises(PolicyError):
            ClusterSimulation(machine16(), EasyBackfillScheduler(), [],
                              policies=[CoolingAwarePolicy()])

    def test_delays_job_to_efficient_hours(self):
        machine = machine16()
        site = diurnal_site(machine)
        # Submit at 13:00 — hottest part of the day, PUE poor.
        job = make_job(work=600.0, walltime=3000.0, submit=13 * HOUR)
        policy = CoolingAwarePolicy(pue_threshold=1.2, max_delay=DAY)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy], site=site)
        sim.run()
        assert job.state is JobState.COMPLETED
        # Started in the cool hours, hours after submission.
        assert job.wait_time > 2 * HOUR
        assert policy.delayed_passes > 0
        assert policy.current_pue(job.start_time) <= 1.2 + 1e-9

    def test_max_delay_prevents_starvation(self):
        machine = machine16()
        # Permanently hot site: threshold never met.
        site = diurnal_site(machine, mean=40.0, diurnal=0.0)
        job = make_job(work=600.0, walltime=3000.0)
        policy = CoolingAwarePolicy(pue_threshold=1.1, max_delay=2 * HOUR)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy], site=site)
        sim.run()
        assert job.state is JobState.COMPLETED
        assert 2 * HOUR <= job.wait_time <= 2 * HOUR + 600.0

    def test_efficient_hours_admit_immediately(self):
        machine = machine16()
        site = diurnal_site(machine, mean=5.0, diurnal=0.0)  # always cold
        job = make_job(work=600.0, walltime=3000.0)
        policy = CoolingAwarePolicy(pue_threshold=1.25)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy], site=site)
        sim.run()
        assert job.wait_time == 0.0


class TestThermalAware:
    def test_requires_site(self):
        with pytest.raises(PolicyError):
            ClusterSimulation(machine16(), EasyBackfillScheduler(), [],
                              policies=[ThermalAwarePolicy()])

    def test_throttles_overheating_node(self):
        machine = machine16()
        site = diurnal_site(machine, mean=30.0, diurnal=0.0)
        # r_thermal 0.2: full 400 W -> steady 30 + 80 = 110 C > 85 C.
        policy = ThermalAwarePolicy(r_thermal=0.2, tau=300.0, t_max=85.0,
                                    throttle_frequency=1.2e9,
                                    check_interval=60.0)
        job = make_job(work=4000.0, walltime=30_000.0,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy], site=site)
        sim.run()
        assert job.state is JobState.COMPLETED
        assert policy.throttle_events > 0
        # Temperatures never materially exceeded the threshold.
        _, hottest = policy.hottest()
        assert hottest <= 85.0 + 2.0

    def test_cool_machine_untouched(self):
        machine = machine16()
        site = diurnal_site(machine, mean=10.0, diurnal=0.0)
        # r_thermal 0.05: steady 10 + 20 = 30 C, far below threshold.
        policy = ThermalAwarePolicy(r_thermal=0.05, tau=300.0, t_max=85.0)
        job = make_job(work=2000.0, walltime=10_000.0,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy], site=site)
        sim.run()
        assert policy.throttle_events == 0
        assert job.run_time == pytest.approx(2000.0)

    def test_release_after_cooldown(self):
        machine = machine16()
        site = diurnal_site(machine, mean=30.0, diurnal=0.0)
        policy = ThermalAwarePolicy(r_thermal=0.2, tau=200.0, t_max=85.0,
                                    throttle_frequency=1.2e9,
                                    check_interval=60.0)
        # Short hot job, then idle time: node throttles, then releases.
        job = make_job(work=2000.0, walltime=30_000.0,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy], site=site)
        sim.run(until=30_000.0)
        assert job.state is JobState.COMPLETED
        # After the job ends and the node cools, the throttle lifts.
        assert len(policy.throttled) == 0

    def test_models_map_validated(self):
        machine = machine16()
        site = diurnal_site(machine)
        with pytest.raises(PolicyError):
            ClusterSimulation(
                machine, EasyBackfillScheduler(), [],
                policies=[ThermalAwarePolicy(models={0: None})],
                site=site,
            )


class TestRaplEnforcement:
    def test_steps_down_until_compliant(self):
        machine = machine16()
        policy = RaplEnforcementPolicy(node_limit_watts=250.0,
                                       window=600.0, check_interval=60.0)
        job = make_job(nodes=4, work=4000.0, walltime=30_000.0,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run(until=2000.0)
        assert policy.steps_down > 0
        # After the window fills, every busy node's average complies.
        assert policy.compliant_fraction(sim.sim.now) >= 0.9

    def test_short_bursts_keep_full_frequency(self):
        machine = machine16()
        policy = RaplEnforcementPolicy(node_limit_watts=250.0,
                                       window=1200.0, check_interval=60.0)
        # A job shorter than half the window: its burst fits the
        # running-average credit, so no throttle should trigger.
        job = make_job(nodes=2, work=240.0, walltime=1000.0,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        assert job.run_time == pytest.approx(240.0)

    def test_recovers_frequency_when_idle(self):
        machine = machine16()
        policy = RaplEnforcementPolicy(node_limit_watts=250.0,
                                       window=600.0, check_interval=60.0)
        job = make_job(nodes=2, work=2000.0, walltime=30_000.0,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run(until=20_000.0)
        assert job.state is JobState.COMPLETED
        assert policy.steps_up > 0
        # Long after the job, nodes are back at (or near) full frequency.
        for nid in job.assigned_nodes:
            node = machine.node(nid)
            assert node.frequency >= 0.8 * node.max_frequency
