"""Interconnect topology models.

Survey question 6 asks about topology-aware task allocation as a way of
(indirectly) improving energy consumption: a compact placement shortens
communication paths, improves performance and thus reduces
energy-to-solution.  We model topologies as networkx graphs whose
leaves are compute nodes, and expose the two quantities allocators
need: pairwise hop distance and a compactness score for a candidate
placement.

Three families cover the surveyed systems: fat-tree (commodity
clusters, SuperMUC), 3-D torus (K computer's Tofu is a 6-D torus; 3-D
preserves the locality structure), and dragonfly (Cray XC at KAUST,
Trinity, LANL).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..errors import TopologyError


class Topology:
    """A compute-node interconnect graph.

    Parameters
    ----------
    graph:
        Undirected networkx graph.  Compute nodes carry the node
        attribute ``kind="compute"`` and an integer ``node_id``;
        switches carry ``kind="switch"``.
    name:
        Family name ("fat-tree", "torus3d", "dragonfly").
    """

    def __init__(self, graph: nx.Graph, name: str) -> None:
        self.graph = graph
        self.name = name
        self._compute: Dict[int, object] = {}
        for g_node, attrs in graph.nodes(data=True):
            if attrs.get("kind") == "compute":
                self._compute[attrs["node_id"]] = g_node
        if not self._compute:
            raise TopologyError(f"topology {name!r} has no compute nodes")
        self._dist_cache: Dict[Tuple[int, int], int] = {}

    @property
    def num_compute_nodes(self) -> int:
        """Number of compute leaves."""
        return len(self._compute)

    def compute_ids(self) -> List[int]:
        """Sorted compute node ids."""
        return sorted(self._compute)

    def distance(self, a: int, b: int) -> int:
        """Hop distance between compute nodes *a* and *b*."""
        if a == b:
            return 0
        key = (a, b) if a < b else (b, a)
        d = self._dist_cache.get(key)
        if d is None:
            try:
                d = nx.shortest_path_length(
                    self.graph, self._compute[a], self._compute[b]
                )
            except KeyError as exc:
                raise TopologyError(f"unknown compute node id in {exc}") from None
            self._dist_cache[key] = d
        return d

    def placement_cost(self, node_ids: Sequence[int]) -> float:
        """Mean pairwise hop distance of a placement (0 for 1 node).

        Lower is more compact; topology-aware allocators minimize this.
        For placements larger than 32 nodes the mean is estimated over
        a deterministic sample of pairs to keep allocation O(1)-ish.
        """
        ids = list(node_ids)
        if len(ids) < 2:
            return 0.0
        if len(ids) <= 32:
            pairs = list(itertools.combinations(ids, 2))
        else:
            # Deterministic subsample: consecutive + stride pairs.
            pairs = [(ids[i], ids[i + 1]) for i in range(len(ids) - 1)]
            stride = max(2, len(ids) // 16)
            pairs += [(ids[i], ids[(i + stride) % len(ids)]) for i in range(0, len(ids), stride)]
        total = sum(self.distance(a, b) for a, b in pairs)
        return total / len(pairs)


def build_fat_tree(num_nodes: int, arity: int = 8) -> Topology:
    """Two-level fat-tree: leaf switches of *arity* nodes + one core tier.

    Small and regular — enough structure to differentiate intra-switch
    (2 hops) from inter-switch (4 hops) placements.
    """
    if num_nodes <= 0:
        raise TopologyError("fat-tree needs >= 1 node")
    if arity <= 0:
        raise TopologyError("fat-tree arity must be >= 1")
    g = nx.Graph()
    num_leaves = (num_nodes + arity - 1) // arity
    core = "core"
    g.add_node(core, kind="switch")
    for leaf in range(num_leaves):
        sw = f"leaf{leaf}"
        g.add_node(sw, kind="switch")
        g.add_edge(sw, core)
        for port in range(arity):
            nid = leaf * arity + port
            if nid >= num_nodes:
                break
            g.add_node(("c", nid), kind="compute", node_id=nid)
            g.add_edge(("c", nid), sw)
    return Topology(g, "fat-tree")


def build_torus3d(dims: Tuple[int, int, int]) -> Topology:
    """3-D torus with one compute node per lattice point."""
    x, y, z = dims
    if min(dims) <= 0:
        raise TopologyError(f"torus dims must be positive, got {dims}")
    lattice = nx.grid_graph(dim=[x, y, z], periodic=True)
    g = nx.Graph()
    nid = 0
    coord_to_id = {}
    for coord in sorted(lattice.nodes()):
        g.add_node(("c", nid), kind="compute", node_id=nid)
        coord_to_id[coord] = nid
        nid += 1
    for a, b in lattice.edges():
        g.add_edge(("c", coord_to_id[a]), ("c", coord_to_id[b]))
    return Topology(g, "torus3d")


def build_dragonfly(groups: int, routers_per_group: int = 4, nodes_per_router: int = 4) -> Topology:
    """Dragonfly: all-to-all routers within a group, one global link per router.

    Global links connect router r of group i to a router of group
    ``(i + r + 1) % groups`` — a standard palmtree-ish arrangement that
    guarantees inter-group connectivity for ``routers_per_group >= groups - 1``
    and remains connected (via multi-hop) otherwise.
    """
    if groups <= 0 or routers_per_group <= 0 or nodes_per_router <= 0:
        raise TopologyError("dragonfly parameters must be positive")
    g = nx.Graph()
    nid = 0
    for grp in range(groups):
        routers = [f"g{grp}r{r}" for r in range(routers_per_group)]
        for r_name in routers:
            g.add_node(r_name, kind="switch")
        for a, b in itertools.combinations(routers, 2):
            g.add_edge(a, b)
        for r, r_name in enumerate(routers):
            for _ in range(nodes_per_router):
                g.add_node(("c", nid), kind="compute", node_id=nid)
                g.add_edge(("c", nid), r_name)
                nid += 1
    # Global links.
    for grp in range(groups):
        for r in range(routers_per_group):
            target_group = (grp + r + 1) % groups
            if target_group == grp:
                continue
            target_router = f"g{target_group}r{r % routers_per_group}"
            g.add_edge(f"g{grp}r{r}", target_router)
    if groups > 1 and not nx.is_connected(g):
        raise TopologyError("dragonfly construction produced a disconnected graph")
    return Topology(g, "dragonfly")


def build_for(interconnect: str, num_nodes: int) -> Topology:
    """Build a topology of family *interconnect* sized for *num_nodes*."""
    if interconnect == "fat-tree":
        return build_fat_tree(num_nodes)
    if interconnect == "torus3d":
        side = max(1, round(num_nodes ** (1.0 / 3.0)))
        while side**3 < num_nodes:
            side += 1
        return build_torus3d((side, side, side))
    if interconnect == "dragonfly":
        per_group = 16
        groups = max(1, (num_nodes + per_group - 1) // per_group)
        return build_dragonfly(groups, routers_per_group=4, nodes_per_router=4)
    raise TopologyError(f"unknown interconnect family {interconnect!r}")
