"""Tests for the analysis harness: stats, runner, compare, report."""

import pytest

from repro.analysis import (
    ExperimentRunner,
    Variant,
    compare_metrics,
    format_quantity,
    percentile_table,
    relative_change,
    render_columns,
    render_dict_table,
    workload_summary,
)
from repro.cluster import Machine, MachineSpec
from repro.core import ClusterSimulation, EasyBackfillScheduler, FcfsScheduler
from repro.core.metrics import MetricsReport
from repro.units import DAY
from tests.conftest import make_job


class TestPercentileTable:
    def test_q3e_quantities(self):
        jobs = [make_job(job_id=f"j{i}", nodes=i + 1, work=(i + 1) * 100.0)
                for i in range(10)]
        tables = percentile_table(jobs)
        sizes = tables["job_size_nodes"]
        assert sizes.minimum == 1.0
        assert sizes.maximum == 10.0
        assert sizes.median == pytest.approx(5.5)
        assert sizes.p10 < sizes.p25 < sizes.p75 < sizes.p90
        row = sizes.as_row()
        assert set(row) == {"min", "p10", "p25", "median", "p75", "p90", "max"}

    def test_uses_actual_runtime_when_known(self):
        job = make_job(work=500.0)
        job.start(0.0, [0])
        job.complete(250.0)  # ran faster than its work estimate
        tables = percentile_table([job])
        assert tables["wallclock_seconds"].median == pytest.approx(250.0)

    def test_empty(self):
        tables = percentile_table([])
        assert tables["job_size_nodes"].maximum == 0.0


class TestWorkloadSummary:
    def test_counts_and_throughput(self):
        jobs = []
        for i in range(30):
            job = make_job(job_id=f"j{i}")
            job.start(0.0, [0])
            job.complete(100.0)
            jobs.append(job)
        summary = workload_summary(jobs, span=30 * DAY)
        assert summary["jobs_total"] == 30
        assert summary["jobs_per_month"] == pytest.approx(30.0)


class TestExperimentRunner:
    def _variant(self, name, scheduler):
        def build():
            machine = Machine(MachineSpec(name="m", nodes=8))
            jobs = [make_job(job_id=f"j{i}", nodes=4, work=100.0,
                             walltime=400.0, submit=float(i))
                    for i in range(6)]
            return ClusterSimulation(machine, scheduler(), jobs)

        return Variant(name, build)

    def test_runs_all_variants(self):
        runner = ExperimentRunner([
            self._variant("fcfs", FcfsScheduler),
            self._variant("easy", EasyBackfillScheduler),
        ])
        results = runner.run_all()
        assert [r.name for r in results] == ["fcfs", "easy"]
        assert all(r.metrics.jobs_completed == 6 for r in results)

    def test_metric_table(self):
        runner = ExperimentRunner([self._variant("fcfs", FcfsScheduler)])
        runner.run_all()
        table = runner.metric_table(["jobs_completed", "mean_wait"])
        assert table["fcfs"]["jobs_completed"] == 6

    def test_best_by(self):
        runner = ExperimentRunner([
            self._variant("fcfs", FcfsScheduler),
            self._variant("easy", EasyBackfillScheduler),
        ])
        runner.run_all()
        best = runner.best_by("mean_wait", minimize=True)
        assert best.name in ("fcfs", "easy")

    def test_best_by_maximize_skips_missing_metric(self):
        # Regression: the missing-metric sentinel used to be +inf for
        # both directions, so with minimize=False a variant lacking
        # the metric beat every variant that had it.
        runner = ExperimentRunner([self._variant("fcfs", FcfsScheduler)])
        runner.run_all()
        runner.results[0].metrics.extra["goodput"] = 5.0
        missing = MetricsReport()  # no "goodput" anywhere
        from repro.analysis import VariantResult
        runner.results.append(VariantResult("empty", missing, None))
        # A variant lacking the metric is never chosen, either way.
        assert runner.best_by("goodput", minimize=False).name == "fcfs"
        assert runner.best_by("goodput", minimize=True).name == "fcfs"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner([
                self._variant("x", FcfsScheduler),
                self._variant("x", FcfsScheduler),
            ])

    def test_best_before_run_raises(self):
        runner = ExperimentRunner([self._variant("x", FcfsScheduler)])
        with pytest.raises(ValueError):
            runner.best_by("mean_wait")


class TestCompare:
    def test_relative_change(self):
        assert relative_change(100.0, 150.0) == pytest.approx(0.5)
        assert relative_change(100.0, 50.0) == pytest.approx(-0.5)
        assert relative_change(0.0, 0.0) == 0.0
        assert relative_change(0.0, 5.0) == float("inf")

    def test_compare_metrics(self):
        a = MetricsReport(mean_wait=100.0, jobs_completed=10)
        b = MetricsReport(mean_wait=50.0, jobs_completed=10)
        diff = compare_metrics(a, b)
        assert diff["mean_wait"] == pytest.approx(-0.5)
        assert diff["jobs_completed"] == 0.0


class TestReport:
    def test_format_quantity_scales(self):
        assert format_quantity(1234.0) == "1.23k"
        assert format_quantity(2.5e6, "W") == "2.50MW"
        assert format_quantity(3.2) == "3.200"
        assert format_quantity(float("nan")) == "n/a"

    def test_render_columns_aligns(self):
        text = render_columns(["a", "b"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_dict_table(self):
        table = {"v1": {"m": 1.0, "n": 2.0}, "v2": {"m": 3.0, "n": 4.0}}
        text = render_dict_table(table)
        assert "v1" in text and "v2" in text and "m" in text

    def test_render_empty(self):
        assert render_dict_table({}) == "(empty table)"
