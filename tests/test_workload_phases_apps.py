"""Tests for phases and the application catalog."""

import pytest

from repro.errors import WorkloadError
from repro.workload.apps import Application, ApplicationCatalog, default_catalog
from repro.workload.phases import (
    BALANCED,
    COMM_BOUND,
    COMPUTE_BOUND,
    MEMORY_BOUND,
    Phase,
    PhaseProfile,
)


class TestPhase:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            Phase(0.0)
        with pytest.raises(WorkloadError):
            Phase(1.1)
        with pytest.raises(WorkloadError):
            Phase(0.5, sensitivity=1.5)
        with pytest.raises(WorkloadError):
            Phase(0.5, intensity=-0.1)


class TestPhaseProfile:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            PhaseProfile([Phase(0.5), Phase(0.4)])
        with pytest.raises(WorkloadError):
            PhaseProfile([])

    def test_weighted_means(self):
        profile = PhaseProfile(
            [Phase(0.5, sensitivity=1.0, intensity=1.0),
             Phase(0.5, sensitivity=0.0, intensity=0.5)]
        )
        assert profile.mean_sensitivity == pytest.approx(0.5)
        assert profile.mean_intensity == pytest.approx(0.75)

    def test_segments_split_work(self):
        segments = BALANCED.segments(100.0)
        assert sum(w for w, _ in segments) == pytest.approx(100.0)
        assert len(segments) == 3

    def test_canonical_profiles_ordering(self):
        # Compute-bound is the most frequency-sensitive, comm the least.
        assert COMPUTE_BOUND.mean_sensitivity > BALANCED.mean_sensitivity
        assert BALANCED.mean_sensitivity > MEMORY_BOUND.mean_sensitivity
        assert MEMORY_BOUND.mean_sensitivity > COMM_BOUND.mean_sensitivity


class TestApplication:
    def test_amdahl_scaling(self):
        app = Application("x", BALANCED, serial_fraction=0.1)
        base = 100.0
        # Doubling nodes cannot halve runtime with a serial part.
        scaled = app.scaled_work(base, base_nodes=4, nodes=8)
        assert base / 2 < scaled < base

    def test_scaling_identity(self):
        app = Application("x", BALANCED, serial_fraction=0.05)
        assert app.scaled_work(100.0, 4, 4) == pytest.approx(100.0)

    def test_scaling_down_increases_work(self):
        app = Application("x", BALANCED, serial_fraction=0.05)
        assert app.scaled_work(100.0, 4, 2) > 100.0

    def test_serial_fraction_validation(self):
        with pytest.raises(WorkloadError):
            Application("x", BALANCED, serial_fraction=1.0)

    def test_node_count_validation(self):
        app = Application("x", BALANCED)
        with pytest.raises(WorkloadError):
            app.scaled_work(10.0, 0, 4)


class TestCatalog:
    def test_default_catalog_valid(self):
        catalog = default_catalog()
        assert len(catalog) == 8
        assert "cfd_solver" in catalog
        assert catalog["cfd_solver"].profile is COMPUTE_BOUND

    def test_sample_respects_weights(self, rng):
        apps = [Application("a", BALANCED), Application("b", BALANCED)]
        catalog = ApplicationCatalog(apps, weights=[1.0, 0.0])
        stream = rng.stream("apps")
        names = {catalog.sample(stream).name for _ in range(20)}
        assert names == {"a"}

    def test_duplicate_names_rejected(self):
        with pytest.raises(WorkloadError):
            ApplicationCatalog([Application("a", BALANCED),
                                Application("a", BALANCED)])

    def test_weight_validation(self):
        apps = [Application("a", BALANCED)]
        with pytest.raises(WorkloadError):
            ApplicationCatalog(apps, weights=[0.0])
        with pytest.raises(WorkloadError):
            ApplicationCatalog(apps, weights=[1.0, 1.0])

    def test_unknown_lookup(self):
        with pytest.raises(WorkloadError):
            default_catalog()["nope"]

    def test_names_order(self):
        catalog = default_catalog()
        assert catalog.names()[0] == "cfd_solver"
