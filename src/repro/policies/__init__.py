"""EPA JSRM policy library.

Each module implements one energy/power-aware technique the survey
found in research, development or production at the nine centers (see
Tables I and II), as a plugin for
:class:`~repro.core.simulation.ClusterSimulation`.  Policies observe
the machine through monitoring hooks, veto or configure job starts,
and act through the resource manager — the monitor/control split of
Figure 1.
"""

from .base import Policy
from .static_capping import StaticCappingPolicy
from .node_shutdown import IdleShutdownPolicy
from .dynamic_provisioning import DynamicProvisioningPolicy
from .emergency import EmergencyPowerPolicy
from .energy_tags import EnergyTagPolicy, SchedulingGoal
from .power_sharing import DynamicPowerSharingPolicy
from .overprovisioning import OverprovisioningPolicy
from .moldable import MoldablePolicy
from .layout_aware import LayoutAwarePolicy
from .group_caps import GroupCapPolicy
from .dvfs_budget import DvfsBudgetPolicy
from .demand_response import DemandResponsePolicy
from .reporting import EnergyReportingPolicy
from .manual import ManualActionPolicy
from .power_aware_admission import PowerAwareAdmissionPolicy
from .site_budget import SiteBudgetPolicy
from .cooling_aware import CoolingAwarePolicy
from .thermal_aware import ThermalAwarePolicy
from .rapl_enforcement import RaplEnforcementPolicy
from .requeue import RequeuePolicy, ReservedWindow, ReservedWindowPolicy

__all__ = [
    "CoolingAwarePolicy",
    "DemandResponsePolicy",
    "DvfsBudgetPolicy",
    "DynamicPowerSharingPolicy",
    "DynamicProvisioningPolicy",
    "EmergencyPowerPolicy",
    "EnergyReportingPolicy",
    "EnergyTagPolicy",
    "GroupCapPolicy",
    "IdleShutdownPolicy",
    "LayoutAwarePolicy",
    "ManualActionPolicy",
    "MoldablePolicy",
    "OverprovisioningPolicy",
    "Policy",
    "PowerAwareAdmissionPolicy",
    "RaplEnforcementPolicy",
    "RequeuePolicy",
    "ReservedWindow",
    "ReservedWindowPolicy",
    "SchedulingGoal",
    "SiteBudgetPolicy",
    "StaticCappingPolicy",
    "ThermalAwarePolicy",
]
