"""Tests for the ESP/grid substrate."""

import pytest

from repro.errors import ConfigurationError
from repro.grid import (
    DemandResponseEvent,
    DualSourceSupply,
    ElectricityPriceSchedule,
    ElectricityServiceProvider,
    GridEventSchedule,
)
from repro.units import HOUR


class TestPriceSchedule:
    def test_flat(self):
        schedule = ElectricityPriceSchedule.flat(0.10)
        assert schedule.price_at(0.0) == 0.10
        assert schedule.price_at(13 * HOUR) == 0.10

    def test_day_night(self):
        schedule = ElectricityPriceSchedule.day_night(0.20, 0.08)
        assert schedule.price_at(3 * HOUR) == 0.08
        assert schedule.price_at(12 * HOUR) == 0.20
        assert schedule.price_at(23 * HOUR) == 0.08

    def test_wraps_across_days(self):
        schedule = ElectricityPriceSchedule.day_night(0.20, 0.08)
        assert schedule.price_at(26 * HOUR) == schedule.price_at(2 * HOUR)

    def test_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            ElectricityPriceSchedule(((0.0, 10.0, 0.1), (11.0, 24.0, 0.1)))

    def test_partial_coverage_rejected(self):
        with pytest.raises(ConfigurationError):
            ElectricityPriceSchedule(((0.0, 20.0, 0.1),))

    def test_negative_price_rejected(self):
        with pytest.raises(ConfigurationError):
            ElectricityPriceSchedule(((0.0, 24.0, -0.1),))


class TestEsp:
    def test_cost_of_series(self):
        esp = ElectricityServiceProvider(ElectricityPriceSchedule.flat(0.10))
        # 1000 W for 2 hours = 2 kWh at 0.10 = 0.20.
        cost = esp.cost_of([0.0, HOUR, 2 * HOUR], [1000.0, 1000.0, 1000.0])
        assert cost == pytest.approx(0.20)

    def test_demand_penalty(self):
        esp = ElectricityServiceProvider(
            ElectricityPriceSchedule.flat(0.10),
            demand_limit_watts=500.0,
            penalty_per_kwh=1.0,
        )
        cost = esp.cost_of([0.0, HOUR], [1000.0, 1000.0])
        # 1 kWh at 0.10 + 0.5 kWh excess at 1.0.
        assert cost == pytest.approx(0.10 + 0.50)

    def test_mismatched_lengths_rejected(self):
        esp = ElectricityServiceProvider(ElectricityPriceSchedule.flat(0.1))
        with pytest.raises(ConfigurationError):
            esp.cost_of([0.0], [1.0, 2.0])


class TestGridEvents:
    def test_active_and_next(self):
        events = GridEventSchedule([
            DemandResponseEvent(100.0, 200.0, 1000.0),
            DemandResponseEvent(300.0, 400.0, 2000.0),
        ])
        assert events.active_event(150.0).limit_watts == 1000.0
        assert events.active_event(250.0) is None
        assert events.next_event(250.0).start == 300.0
        assert events.next_event(500.0) is None

    def test_limit_at(self):
        events = GridEventSchedule([DemandResponseEvent(0.0, 10.0, 500.0)])
        assert events.limit_at(5.0) == 500.0
        assert events.limit_at(20.0) == float("inf")
        assert events.limit_at(20.0, default=9.0) == 9.0

    def test_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            GridEventSchedule([
                DemandResponseEvent(0.0, 100.0, 1.0),
                DemandResponseEvent(50.0, 150.0, 1.0),
            ])

    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            DemandResponseEvent(10.0, 5.0, 100.0)
        with pytest.raises(ConfigurationError):
            DemandResponseEvent(0.0, 10.0, 0.0)


class TestDualSourceSupply:
    def _supply(self, turbine_cost):
        return DualSourceSupply(
            ElectricityPriceSchedule.day_night(0.30, 0.05),
            turbine_capacity_watts=5000.0,
            turbine_cost_per_kwh=turbine_cost,
        )

    def test_turbine_wins_at_peak(self):
        supply = self._supply(turbine_cost=0.15)
        decision = supply.decide(12 * HOUR, 4000.0)  # daytime: grid 0.30
        assert decision.turbine_watts == 4000.0
        assert decision.grid_watts == 0.0

    def test_grid_wins_at_night(self):
        supply = self._supply(turbine_cost=0.15)
        decision = supply.decide(2 * HOUR, 4000.0)  # night: grid 0.05
        assert decision.grid_watts == 4000.0
        assert decision.turbine_watts == 0.0

    def test_turbine_capacity_limits(self):
        supply = self._supply(turbine_cost=0.01)
        decision = supply.decide(12 * HOUR, 8000.0)
        assert decision.turbine_watts == 5000.0
        assert decision.grid_watts == 3000.0
        assert decision.total_watts == 8000.0

    def test_cost_accounting(self):
        supply = self._supply(turbine_cost=0.15)
        decision = supply.decide(12 * HOUR, 2000.0)
        assert decision.cost_per_hour == pytest.approx(2.0 * 0.15)

    def test_daily_cost_integrates_tariff(self):
        cheap_turbine = self._supply(turbine_cost=0.01).daily_cost(1000.0)
        no_turbine = DualSourceSupply(
            ElectricityPriceSchedule.day_night(0.30, 0.05),
            turbine_capacity_watts=0.0,
            turbine_cost_per_kwh=0.01,
        ).daily_cost(1000.0)
        assert cheap_turbine < no_turbine

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DualSourceSupply(ElectricityPriceSchedule.flat(0.1), -1.0, 0.1)
        supply = self._supply(0.1)
        with pytest.raises(ConfigurationError):
            supply.decide(0.0, -5.0)
