#!/usr/bin/env python
"""Replay a Standard Workload Format trace under EPA policies.

The SWF is the lingua franca of the scheduling literature the survey
builds on (the Parallel Workloads Archive).  This example writes a
synthetic trace to disk in SWF, reads it back (the path any real
center trace would take), and replays it under three configurations:
uncapped, KAUST-style static capping and Etinski-style DVFS budgeting.

Run:  python examples/swf_trace_replay.py
"""

import copy
import tempfile

from repro.centers.base import standard_machine
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import DvfsBudgetPolicy, StaticCappingPolicy
from repro.simulator import RngStreams
from repro.units import HOUR
from repro.workload import (
    WorkloadGenerator,
    WorkloadSpec,
    read_swf,
    write_swf,
)


def main() -> None:
    # 1. Produce a trace in SWF (stand-in for a real archive trace).
    spec = WorkloadSpec(arrival_rate=45.0 / HOUR, duration=8 * HOUR,
                        max_nodes=24, mean_work=0.5 * HOUR)
    jobs = WorkloadGenerator(spec, RngStreams(17).stream("swf")).generate(
        count=120
    )
    # Completed fields are needed for a replayable trace.
    for job in jobs:
        job.start(job.submit_time, list(range(job.nodes)))
        job.complete(job.start_time + job.work_seconds)

    with tempfile.NamedTemporaryFile("w", suffix=".swf", delete=False) as fh:
        path = fh.name
    count = write_swf(jobs, path, header="synthetic demo trace")
    print(f"wrote {count} jobs to {path} (SWF)")

    # 2. Read it back the way a real trace would arrive.
    replayed = read_swf(path)
    print(f"read back {len(replayed)} runnable jobs")

    # 3. Replay under three configurations.
    configs = {
        "uncapped": lambda machine: [],
        "kaust 70%@270W": lambda machine: [
            StaticCappingPolicy(cap_watts=270.0, capped_fraction=0.7)
        ],
        "dvfs budget 70%": lambda machine: [
            DvfsBudgetPolicy(budget_watts=machine.peak_power * 0.7)
        ],
    }
    print(f"\n{'config':18s} {'done':>5s} {'wait[s]':>8s} {'slowdn':>7s} "
          f"{'peak kW':>8s} {'MWh':>7s}")
    for label, factory in configs.items():
        machine = standard_machine("replay", nodes=48, seed=17)
        sim = ClusterSimulation(
            machine, EasyBackfillScheduler(), copy.deepcopy(replayed),
            policies=factory(machine), seed=17,
        )
        m = sim.run().metrics
        print(f"{label:18s} {m.jobs_completed:5d} {m.mean_wait:8.0f} "
              f"{m.mean_bounded_slowdown:7.2f} "
              f"{m.peak_power_watts / 1e3:8.1f} "
              f"{m.total_energy_mwh:7.3f}")


if __name__ == "__main__":
    main()
