"""Manufacturing variability in node power.

Inadomi et al. (SC'15, cited as [25] in the survey) showed that
manufacturing variability makes nominally identical nodes draw
measurably different power at the same work, and that power-constrained
scheduling must account for it.  Several surveyed research activities
("exploit the power and performance variability among nodes") build on
this.  The model is a truncated-normal multiplicative factor applied to
each node's max power.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..errors import ConfigurationError
from .node import Node


class VariabilityModel:
    """Per-node multiplicative power variability.

    Parameters
    ----------
    std:
        Standard deviation of the multiplier (mean 1.0).  Measured
        fleet spreads are on the order of 5-10 %.
    clip:
        Multipliers are clipped to ``[1 - clip, 1 + clip]`` to keep the
        physical model sane.
    """

    def __init__(self, std: float = 0.07, clip: float = 0.25) -> None:
        if std < 0:
            raise ConfigurationError(f"variability std must be >= 0, got {std}")
        if not (0 < clip < 1):
            raise ConfigurationError(f"variability clip must be in (0,1), got {clip}")
        self.std = float(std)
        self.clip = float(clip)

    def apply(self, nodes: Iterable[Node], rng: np.random.Generator) -> None:
        """Draw and install a variability factor on each node."""
        nodes = list(nodes)
        if not nodes:
            return
        factors = rng.normal(1.0, self.std, size=len(nodes))
        np.clip(factors, 1.0 - self.clip, 1.0 + self.clip, out=factors)
        for node, factor in zip(nodes, factors):
            node.variability = float(factor)

    @staticmethod
    def spread(nodes: Iterable[Node]) -> float:
        """Max/min ratio of effective max power across *nodes*."""
        powers = [n.effective_max_power for n in nodes]
        if not powers:
            return 1.0
        return max(powers) / min(powers)
