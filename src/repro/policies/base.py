"""Policy plugin interface.

A policy is the unit in which surveyed EPA techniques are packaged.
The hook set mirrors the touch points Figure 1 gives an EPA JSRM
solution:

* ``filter_nodes`` — restrict which nodes the scheduler may use
  (layout/maintenance awareness, capped partitions);
* ``admit`` — veto a job start (power budget, prediction gate);
* ``configure_start`` — set frequencies/caps/moldable shape as a job
  starts (energy tags, DVFS budgeting);
* ``on_job_start`` / ``on_job_end`` — bookkeeping and reporting;
* ``on_tick`` — the periodic control loop (capping enforcement,
  provisioning, power sharing), scheduled at ``control_interval``;
* ``epa_components`` — self-description for the Figure-1 registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..cluster.node import Node
from ..core.epa import FunctionalCategory
from ..workload.job import Job

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.simulation import ClusterSimulation


def _idle_rank(node: Node) -> Tuple[bool, float, int]:
    """Longest-idle-first candidate key shared by the shutdown-style
    policies: timestamped nodes first (oldest ``idle_since`` winning),
    nodes with no idle timestamp last, node id breaking ties.  Written
    out explicitly because ``idle_since or 0.0`` conflates a node idle
    since t=0 with one whose timestamp is ``None``.
    """
    idle_since = node.idle_since
    return (
        idle_since is None,
        idle_since if idle_since is not None else 0.0,
        node.node_id,
    )


class Policy:
    """Base class for all EPA policies.  All hooks are optional."""

    #: Human-readable policy name (subclasses override).
    name = "policy"
    #: Seconds between ``on_tick`` calls; None disables the loop.
    control_interval: Optional[float] = None

    def __init__(self) -> None:
        self.simulation: Optional["ClusterSimulation"] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, simulation: "ClusterSimulation") -> None:
        """Called once when the policy is registered with a simulation."""
        self.simulation = simulation
        self.on_attach()

    def on_attach(self) -> None:
        """Subclass hook run after ``self.simulation`` is set."""

    @property
    def sim(self):
        """The discrete-event engine (convenience accessor)."""
        assert self.simulation is not None, f"policy {self.name} not attached"
        return self.simulation.sim

    # ------------------------------------------------------------------
    # Scheduling hooks
    # ------------------------------------------------------------------
    def filter_nodes(self, nodes: List[Node], now: float) -> List[Node]:
        """Restrict the pool of nodes the scheduler may allocate from."""
        return nodes

    def admit(self, job: Job, now: float) -> bool:
        """Return False to veto starting *job* right now."""
        return True

    def configure_start(self, job: Job, nodes: Sequence[Node], now: float) -> None:
        """Adjust node settings (freq/caps) as *job* starts on *nodes*."""

    def select_configuration(self, job: Job, now: float) -> Job:
        """Optionally reshape a moldable job before fit checks.

        Returns the job to schedule (possibly the same object mutated,
        or the original).  Default: unchanged.
        """
        return job

    # ------------------------------------------------------------------
    # Life-cycle hooks
    # ------------------------------------------------------------------
    def on_job_start(self, job: Job, now: float) -> None:
        """Called after *job* has started."""

    def on_job_end(self, job: Job, now: float) -> None:
        """Called after *job* reached a terminal state."""

    def on_tick(self, now: float) -> None:
        """Periodic control loop (only if ``control_interval`` set)."""

    def on_tick_batch(self, now: float, view) -> None:
        """Batched-run twin of :meth:`on_tick`.

        ``ClusterSimulation.run_batched`` routes policy ticks here,
        passing a :class:`~repro.power.vector.LifecycleView` (SoA
        arrays over the machine) when the vector power backend is
        active, else ``None``.  Overrides must stay *decision- and
        arithmetic-identical* to ``on_tick`` — batched runs are pinned
        replay-identical to stepped runs by the ``repro.state``
        harness, so even float accumulation order matters for any
        value that ends up in a snapshot.  Default: delegate to the
        scalar hook.
        """
        self.on_tick(now)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        """(name, category, description) triples for the EPA registry."""
        return []
