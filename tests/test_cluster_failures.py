"""Tests for node failure injection."""

import pytest

from repro.cluster import FailureInjector, Machine, MachineSpec, NodeState
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.units import HOUR
from repro.workload import JobState
from tests.conftest import make_job


def sim_with_failures(jobs, mtbf, repair=HOUR, nodes=16, seed=5):
    machine = Machine(MachineSpec(name="m", nodes=nodes))
    simulation = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                   seed=seed)
    injector = FailureInjector(simulation, node_mtbf=mtbf,
                               repair_time=repair)
    injector.arm()
    return simulation, injector


class TestFailureInjector:
    def test_failures_occur_and_repair(self):
        simulation, injector = sim_with_failures([], mtbf=16 * 600.0)
        simulation.run(until=6 * HOUR)
        assert injector.failures > 0
        trace = simulation.trace
        assert trace.count("node.failure") == injector.failures
        # Every failure older than one repair time has been repaired.
        now = simulation.sim.now
        due = sum(1 for r in trace.records("node.failure")
                  if r.time <= now - HOUR)
        assert trace.count("node.repair") >= due

    def test_running_job_killed_by_failure(self):
        # Saturate the machine so a failure must hit a busy node.
        jobs = [make_job(job_id=f"j{i}", nodes=4, work=5 * HOUR,
                         walltime=10 * HOUR) for i in range(4)]
        simulation, injector = sim_with_failures(jobs, mtbf=16 * 1200.0)
        simulation.run(until=4 * HOUR)
        assert injector.jobs_lost > 0
        killed = [j for j in jobs if j.state is JobState.KILLED]
        assert killed
        assert all(j.kill_reason == "node failure" for j in killed)

    def test_failed_node_down_then_back(self):
        simulation, injector = sim_with_failures([], mtbf=16 * 600.0,
                                                 repair=1800.0)
        machine = simulation.machine
        simulation.run(until=2000.0)
        # Run long enough for at least one repair cycle, then check
        # the fleet is whole again after a quiet period.
        simulation.sim.run(until=simulation.sim.now + 4 * HOUR)
        down = machine.nodes_in_state(NodeState.DOWN)
        # All failures that happened > repair_time ago are repaired.
        recent = [
            r for r in simulation.trace.records("node.failure")
            if r.time > simulation.sim.now - 1800.0
        ]
        assert len(down) <= len(recent)

    def test_deterministic_with_seed(self):
        def run(seed):
            simulation, injector = sim_with_failures([], mtbf=16 * 900.0,
                                                     seed=seed)
            simulation.run(until=4 * HOUR)
            return injector.failures

        assert run(7) == run(7)

    def test_scheduler_routes_around_down_nodes(self):
        # Failure rate high enough that some nodes are DOWN while
        # work keeps flowing; everything still finishes.
        jobs = [make_job(job_id=f"j{i}", nodes=2, work=600.0,
                         walltime=3000.0, submit=i * 300.0)
                for i in range(10)]
        simulation, injector = sim_with_failures(jobs, mtbf=16 * 3600.0,
                                                 repair=1800.0)
        result = simulation.run()
        finished = result.metrics.jobs_completed + result.metrics.jobs_killed
        assert finished == 10
        # Most jobs survive at this rate.
        assert result.metrics.jobs_completed >= 7

    def test_validation(self):
        machine = Machine(MachineSpec(name="m", nodes=4))
        simulation = ClusterSimulation(machine, EasyBackfillScheduler(), [])
        with pytest.raises(Exception):
            FailureInjector(simulation, node_mtbf=0.0)

    def test_arm_idempotent(self):
        simulation, injector = sim_with_failures([], mtbf=16 * 600.0)
        injector.arm()
        injector.arm()
        simulation.run(until=100.0)
        # Only one failure chain exists: events named node-failure
        # pending is exactly 1.
        pending = [e for e in simulation.sim._heap
                   if not e.cancelled and e.name == "node-failure"]
        assert len(pending) == 1
