"""The cluster simulation: wiring scheduler, RM, power and policies.

:class:`ClusterSimulation` is the top-level object a user builds: it
owns the event engine, the machine, the queue, the resource manager,
the power model and meter, and a list of EPA policies.  It executes a
workload and returns a :class:`SimulationResult`.

Execution model
---------------
Jobs run on whole nodes at the speed of their *slowest* node (tightly
coupled parallel applications synchronize).  A running job is a
:class:`JobExecution` tracking remaining work; whenever any of its
nodes changes frequency or cap, the execution is re-evaluated: work
done so far is banked at the old speed, a new speed is computed, and
the completion event is rescheduled.  Jobs are killed at their
requested walltime — which keeps scheduler reservations sound and
reproduces the real-world failure mode where aggressive power capping
pushes jobs into their walltime limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.machine import Machine
from ..cluster.node import Node, NodeState
from ..cluster.site import Site
from ..errors import ConfigurationError, SchedulingError
from ..power.meter import PowerMeter
from ..power.model import NodePowerModel
from ..power.vector import STATE_CODES, VectorPowerMirror
from ..simulator.engine import EventHandle, Simulator
from ..simulator.events import EventPriority
from ..simulator.rng import RngStreams
from ..simulator.trace import TraceRecorder
from ..workload.job import Job, JobState
from .epa import EpaCoordinator, FunctionalCategory
from .metrics import MetricsReport, compute_metrics
from .queue import JobQueue, QueueConfig
from .resource_manager import ResourceManager
from .scheduler import (
    NodeSelection,
    RunningJobInfo,
    Scheduler,
    SchedulingContext,
)
from ..policies.base import Policy

#: Small-int BUSY code (teardown filters its cohort on the SoA state
#: column instead of a per-node state scan).
_BUSY_CODE = STATE_CODES[NodeState.BUSY]


class JobExecution:
    """Runtime state of one running job."""

    __slots__ = (
        "job",
        "nodes",
        "node_ids",
        "rows",
        "slot",
        "work_done",
        "speed",
        "power_watts",
        "last_update",
        "end_handle",
        "timeout_handle",
        "cap_violated",
        "placement_penalty",
    )

    def __init__(self, job: Job, nodes: List[Node]) -> None:
        self.job = job
        self.nodes = nodes
        #: Frozen once at start: the scheduler context needs this tuple
        #: every pass, and rebuilding it per pass is O(job width) for
        #: each running job on every pass (dominant at 64k-node scale).
        self.node_ids: Tuple[int, ...] = tuple(n.node_id for n in nodes)
        #: Mirror row indices of ``nodes`` (vector power backend only).
        self.rows: Optional[np.ndarray] = None
        #: Execution-slot id (vector power backend only): index into
        #: ``ClusterSimulation._exec_slots``, stamped into the mirror's
        #: ``exec_slot`` rows; -1 while not running on that backend.
        self.slot: int = -1
        self.work_done = 0.0
        self.speed = 1.0
        self.power_watts = 0.0
        self.last_update = 0.0
        self.end_handle: Optional[EventHandle] = None
        self.timeout_handle: Optional[EventHandle] = None
        self.cap_violated = False
        #: >= 1.0; divides speed (communication cost of a spread placement).
        self.placement_penalty = 1.0

    @property
    def remaining_work(self) -> float:
        """Full-speed seconds of work still to do."""
        return max(0.0, self.job.work_seconds - self.work_done)


@dataclass
class SimulationResult:
    """Everything a run produces."""

    jobs: List[Job]
    metrics: MetricsReport
    trace: TraceRecorder
    meter: PowerMeter
    machine: Machine
    final_time: float
    extra: Dict[str, object] = field(default_factory=dict)

    def completed_jobs(self) -> List[Job]:
        """Jobs that finished normally."""
        return [j for j in self.jobs if j.state is JobState.COMPLETED]


class ClusterSimulation:
    """Simulate a workload on a machine under a scheduler and policies.

    Parameters
    ----------
    machine:
        The machine to run on.
    scheduler:
        Decision function (FCFS, EASY, conservative, or a subclass).
    workload:
        Jobs to submit (at their ``submit_time``).
    power_model:
        Node power model; a default is built if omitted.
    policies:
        EPA policies, applied in order (filters compose, admission is
        a conjunction).
    seed:
        Root seed for all random streams.
    sample_interval:
        Power-meter sampling period, seconds.
    queue_configs:
        Batch queue definitions (defaults to one "default" queue).
    site:
        Optional site context (facility, thermal) for policies that
        need it.
    cap_watts_for_metrics:
        If set, the metrics report includes the fraction of samples
        above this limit.
    power_backend:
        ``"vector"`` (default) evaluates machine power through the
        structure-of-arrays mirror (:mod:`repro.power.vector`);
        ``"scalar"`` keeps the original per-node loops — the reference
        implementation the equivalence tests pin the mirror against.
    bulk_ops:
        True (default) routes multi-node lifecycle changes — job
        start/teardown and RM cohort boots/shutdowns — through
        ``Machine.transition_bulk`` with one listener firing per
        cohort; False keeps the scalar per-node ``Node.transition``
        loops, the reference the bulk equivalence tests pin against.
        Orthogonal to *power_backend* (bulk events fold into whichever
        backend is active).
    """

    def __init__(
        self,
        machine: Machine,
        scheduler: Scheduler,
        workload: Iterable[Job],
        power_model: Optional[NodePowerModel] = None,
        policies: Sequence[Policy] = (),
        seed: int = 0,
        sample_interval: float = 60.0,
        scheduler_interval: float = 300.0,
        queue_configs: Optional[List[QueueConfig]] = None,
        site: Optional[Site] = None,
        cap_watts_for_metrics: Optional[float] = None,
        trace_enabled: bool = True,
        start_time: float = 0.0,
        sim: Optional[Simulator] = None,
        trace: Optional[TraceRecorder] = None,
        comm_penalty: float = 0.0,
        power_backend: str = "vector",
        bulk_ops: bool = True,
    ) -> None:
        self.machine = machine
        self.scheduler = scheduler
        self.scheduler_interval = scheduler_interval
        self.jobs: List[Job] = sorted(workload, key=lambda j: (j.submit_time, j.job_id))
        self.power_model = power_model or NodePowerModel()
        self.site = site
        self.cap_watts_for_metrics = cap_watts_for_metrics
        # Survey Q6: topology-aware placement "indirectly improv[es]
        # energy consumption ... by improving application performance".
        # With comm_penalty > 0 and a machine topology, a job's
        # communication phases slow down in proportion to how spread
        # out its placement is (see _placement_penalty).  Default off.
        self.comm_penalty = float(comm_penalty)

        # A shared engine/trace may be injected so several machines can
        # coexist in one simulation (multi-system sites; see
        # repro.core.multi.SiteSimulation).
        self.sim = sim if sim is not None else Simulator(start_time=start_time)
        self.trace = trace if trace is not None else TraceRecorder(enabled=trace_enabled)
        self.rng = RngStreams(seed)
        self.queue = JobQueue(queue_configs)
        self.epa = EpaCoordinator()

        self.rm = ResourceManager(
            self.sim,
            machine,
            trace=self.trace,
            on_nodes_changed=self.request_schedule_pass,
            on_speed_changed=self._on_speed_changed,
        )

        self._executions: Dict[str, JobExecution] = {}
        #: Per-node execution map — scalar backend only.  The vector
        #: backend keeps membership in the mirror's ``exec_slot`` row
        #: column plus the slot table below (see :meth:`execution_on`).
        self._node_exec: Dict[int, JobExecution] = {}
        #: Slot -> JobExecution (vector backend); freed slots recycle
        #: through the freelist.  Slot numbers are pure identities —
        #: nothing orders or hashes on them, so snapshot/restore may
        #: renumber freely without perturbing replay.
        self._exec_slots: List[Optional[JobExecution]] = []
        self._free_slots: List[int] = []
        self._pass_pending = False
        self._started_count = 0
        self._terminal_count = 0
        self._prepared = False
        #: True while :meth:`run_batched` is driving the event loop;
        #: routes policy ticks through ``on_tick_batch`` with an SoA
        #: lifecycle view instead of the scalar ``on_tick``.
        self._batched = False
        # Incremental machine power accounting.  A node's draw depends
        # only on its state/cap/frequency/variability and the (static)
        # intensity of the job bound to it — never on time directly —
        # so a running watts sum updated by delta on exactly those
        # mutations replaces re-summing all N nodes per query.  Nodes
        # report state/cap/frequency changes through their
        # ``power_listener`` hook; job (un)binding is marked where
        # ``_node_exec`` changes.  The default "vector" backend keeps
        # the per-node fields mirrored in numpy arrays
        # (:class:`~repro.power.vector.VectorPowerMirror`) so re-sums
        # and wide-job re-evaluations are array kernels; the "scalar"
        # backend is the original per-node loop, kept as the reference
        # the equivalence tests and benchmarks compare against.
        if power_backend not in ("vector", "scalar"):
            raise ConfigurationError(
                f"power_backend must be 'vector' or 'scalar', got {power_backend!r}"
            )
        self._node_watts: Dict[int, float] = {}
        self._power_total = 0.0
        self._power_dirty: set = set()
        self._power_all_dirty = True
        self.power_vector: Optional[VectorPowerMirror] = (
            VectorPowerMirror(machine, self.power_model)
            if power_backend == "vector"
            else None
        )
        # Incremental scheduling context: availability and usable-node
        # masks maintained on node state transitions (the same listener
        # feed as power accounting) so build_context() never scans all
        # N nodes.  Row order == machine.nodes order, which preserves
        # the seed's id-ordered available list.
        self._node_row: Dict[int, int] = {
            node.node_id: row for row, node in enumerate(machine.nodes)
        }
        #: True when node ids ARE row positions (the standard machine
        #: layout): cohort row lookups then skip the per-id dict walk.
        self._rows_are_ids = all(
            node.node_id == row for row, node in enumerate(machine.nodes)
        )
        #: Object array mirroring machine.nodes: lets build_context()
        #: materialize the available list with one fancy-index instead
        #: of a Python loop over the mask's set rows.
        self._nodes_arr = np.empty(len(machine.nodes), dtype=object)
        self._nodes_arr[:] = machine.nodes
        self._avail_mask = np.fromiter(
            (n.is_available for n in machine.nodes), dtype=bool,
            count=len(machine.nodes),
        )
        self._down_mask = np.fromiter(
            (n.state is NodeState.DOWN for n in machine.nodes), dtype=bool,
            count=len(machine.nodes),
        )
        self._usable_count = len(machine.nodes) - int(self._down_mask.sum())
        self._avail_count = int(self._avail_mask.sum())
        for node in machine.nodes:
            node.power_listener = self._on_node_event
        self._bulk_ops = bool(bulk_ops)
        if self._bulk_ops:
            machine.bulk_listener = self._on_bulk_event

        self.meter = PowerMeter(
            self.sim,
            self.machine_power,
            interval=sample_interval,
            name=machine.name,
            trace=self.trace,
        )

        # Built-in EPA registry entries: the scheduler/RM/meter baseline.
        self.epa.register("job-scheduler", FunctionalCategory.RESOURCE_CONTROL,
                          f"{scheduler.name} scheduler")
        self.epa.register("resource-manager", FunctionalCategory.RESOURCE_CONTROL,
                          "node boot/shutdown, caps, DVFS")
        self.epa.register("queue-monitor", FunctionalCategory.RESOURCE_MONITORING,
                          "pending/running job state")
        self.epa.register("power-meter", FunctionalCategory.POWER_MONITORING,
                          f"{sample_interval:.0f}s machine power sampling")

        self.policies: List[Policy] = []
        self._shaping_policies: List[Policy] = []
        self._filter_policies: List[Policy] = []
        for policy in policies:
            self.add_policy(policy)

        #: Auxiliary stateful components (telemetry samplers, monitors)
        #: keyed by a stable name.  Registered components become
        #: snapshot roots: their pending engine events are capturable
        #: and their state round-trips through checkpoints (see
        #: :func:`repro.state.snapshot`).
        self.components: Dict[str, object] = {}

    def attach_component(self, key: str, component: object) -> object:
        """Register an auxiliary component under a stable key.

        The factory that rebuilds this simulation for a checkpoint
        restore must attach a structurally identical component under
        the same key (the key and class are part of the config digest).
        Returns the component for chaining.
        """
        if key in self.components:
            raise ConfigurationError(f"duplicate component key {key!r}")
        self.components[key] = component
        return component

    # ------------------------------------------------------------------
    # Policy management
    # ------------------------------------------------------------------
    def add_policy(self, policy: Policy) -> None:
        """Register an EPA policy (before :meth:`run`)."""
        policy.attach(self)
        self.policies.append(policy)
        # Hot-path hook lists: build_context runs per schedule pass and
        # must not pay per-job/per-node dispatch for default no-op hooks.
        if type(policy).select_configuration is not Policy.select_configuration:
            self._shaping_policies.append(policy)
        if type(policy).filter_nodes is not Policy.filter_nodes:
            self._filter_policies.append(policy)
        for name, category, desc in policy.epa_components():
            self.epa.register(name, category, desc)
        if policy.control_interval is not None:
            self.sim.every(
                policy.control_interval,
                self._policy_tick,
                policy,
                priority=EventPriority.CONTROL,
                name=f"tick:{policy.name}",
            )

    def _policy_tick(self, policy: Policy) -> None:
        """Periodic control tick for one policy (bound method so the
        state subsystem can capture pending ticks).

        Under :meth:`run_batched` the tick routes through
        ``on_tick_batch`` with a lifecycle view (or None on the scalar
        backend); the two hooks are pinned decision-identical by the
        replay-equivalence suite.
        """
        if self._batched:
            policy.on_tick_batch(self.sim.now, self.lifecycle_view())
        else:
            policy.on_tick(self.sim.now)

    def lifecycle_view(self):
        """SoA lifecycle view of the machine at the current instant, or
        None on the scalar backend (callers fall back to node objects)."""
        if self.power_vector is None:
            return None
        return self.power_vector.lifecycle_view(self.sim.now)

    # ------------------------------------------------------------------
    # Power accounting
    # ------------------------------------------------------------------
    def _on_node_event(self, node_id: int) -> None:
        """``Node.power_listener`` target: one node's state, cap or
        frequency changed.  Updates the scheduling-context masks and
        routes the change into the active power backend."""
        row = self._node_row[node_id]
        state = self.machine.nodes[row].state
        avail = state is NodeState.IDLE
        if avail != bool(self._avail_mask[row]):
            self._avail_mask[row] = avail
            self._avail_count += 1 if avail else -1
        is_down = state is NodeState.DOWN
        if is_down != bool(self._down_mask[row]):
            self._down_mask[row] = is_down
            self._usable_count += -1 if is_down else 1
        if self.power_vector is not None:
            self.power_vector.touch(node_id)
        else:
            self._power_dirty.add(node_id)

    def _on_bulk_event(
        self, node_ids: Sequence[int], target: NodeState, time: float
    ) -> None:
        """``Machine.bulk_listener`` target: a whole cohort made the
        same transition.  The SoA twin of ``len(node_ids)`` calls into
        :meth:`_on_node_event`: masks update with one scatter and the
        power backend absorbs the cohort in one pass (vector) or one
        dirty-set union (scalar)."""
        if self._rows_are_ids:
            rows = np.asarray(node_ids, dtype=np.intp)
        else:
            node_row = self._node_row
            rows = np.fromiter(
                (node_row[nid] for nid in node_ids),
                dtype=np.intp,
                count=len(node_ids),
            )
        if target is NodeState.IDLE:
            newly_avail = int(np.count_nonzero(~self._avail_mask[rows]))
            if newly_avail:
                self._avail_mask[rows] = True
                self._avail_count += newly_avail
        else:
            was_avail = int(np.count_nonzero(self._avail_mask[rows]))
            if was_avail:
                self._avail_mask[rows] = False
                self._avail_count -= was_avail
        if target is NodeState.DOWN:
            newly_down = int(np.count_nonzero(~self._down_mask[rows]))
            if newly_down:
                self._down_mask[rows] = True
                self._usable_count -= newly_down
        else:
            was_down = int(np.count_nonzero(self._down_mask[rows]))
            if was_down:
                self._down_mask[rows] = False
                self._usable_count += was_down
        if self.power_vector is not None:
            self.power_vector.transition_rows(rows, STATE_CODES[target], time)
        else:
            self._power_dirty.update(node_ids)

    @property
    def usable_node_count(self) -> int:
        """Nodes not administratively DOWN (capacity ceiling for
        feasibility checks; maintained incrementally, O(1) to read)."""
        return self._usable_count

    def execution_on(self, node_id: int) -> Optional[JobExecution]:
        """Execution occupying *node_id*, or None.  O(1) on both
        backends: an ``exec_slot`` row read on the vector backend, the
        ``_node_exec`` dict on the scalar reference path."""
        mirror = self.power_vector
        if mirror is not None:
            slot = mirror.exec_slot[self._node_row[node_id]]
            return self._exec_slots[slot] if slot >= 0 else None
        return self._node_exec.get(node_id)

    def _alloc_slot(self, execution: JobExecution) -> int:
        """Assign a slot id to *execution* (vector backend)."""
        if self._free_slots:
            slot = self._free_slots.pop()
        else:
            slot = len(self._exec_slots)
            self._exec_slots.append(None)
        self._exec_slots[slot] = execution
        execution.slot = slot
        return slot

    def _release_slot(self, execution: JobExecution) -> None:
        """Return *execution*'s slot to the freelist (vector backend)."""
        slot = execution.slot
        if slot >= 0:
            self._exec_slots[slot] = None
            self._free_slots.append(slot)
            execution.slot = -1

    def _node_operating_point(self, node: Node):
        execution = self.execution_on(node.node_id)
        if execution is not None:
            job = execution.job
            return self.power_model.operating_point(
                node, job.mean_power_intensity, job.mean_sensitivity
            )
        return self.power_model.operating_point(node)

    def machine_power(self) -> float:
        """Instantaneous IT power of the machine, watts.

        O(1) when nothing changed since the last call; one vectorized
        kernel over the dirty rows (vector backend) or an O(d log d)
        Python fold (scalar backend) otherwise.  When at least half the
        machine is dirty the whole sum is rebuilt instead — that is no
        slower than the delta path and resets any accumulated
        floating-point drift.  Dirty nodes are folded in sorted id
        order so the result is independent of mutation order.
        """
        if self.power_vector is not None:
            return self.power_vector.machine_watts()
        dirty = self._power_dirty
        if self._power_all_dirty or 2 * len(dirty) >= len(self.machine.nodes):
            watts = self._node_watts
            total = 0.0
            for node in self.machine.nodes:
                w = self._node_operating_point(node).watts
                watts[node.node_id] = w
                total += w
            self._power_total = total
            self._power_all_dirty = False
            dirty.clear()
        elif dirty:
            watts = self._node_watts
            total = self._power_total
            node_of = self.machine.node
            for nid in sorted(dirty):
                w = self._node_operating_point(node_of(nid)).watts
                total += w - watts[nid]
                watts[nid] = w
            self._power_total = total
            dirty.clear()
        return self._power_total

    def invalidate_power_cache(self) -> None:
        """Force a full re-sum on the next :meth:`machine_power` call.

        Needed only after out-of-band mutations that bypass the node
        hooks (e.g. re-drawing manufacturing variability on a machine
        already attached to a simulation).
        """
        self._power_all_dirty = True
        if self.power_vector is not None:
            self.power_vector.invalidate()
        # State fields may have been rewritten out of band too; one
        # O(N) rebuild keeps the context masks honest (this path is for
        # rare bulk mutations, never the per-event hot path).
        nodes = self.machine.nodes
        self._avail_mask = np.fromiter(
            (n.is_available for n in nodes), dtype=bool, count=len(nodes)
        )
        self._down_mask = np.fromiter(
            (n.state is NodeState.DOWN for n in nodes), dtype=bool,
            count=len(nodes),
        )
        self._usable_count = len(nodes) - int(self._down_mask.sum())
        self._avail_count = int(self._avail_mask.sum())

    def node_watts(self) -> np.ndarray:
        """Per-node instantaneous draw, ``machine.nodes`` order.

        One array kernel on the vector backend; the scalar backend
        falls back to the per-node reference loop.  Control loops that
        need every node's draw (RAPL windows, group caps) should call
        this once per tick instead of querying node by node.
        """
        if self.power_vector is not None:
            return self.power_vector.node_watts()
        return np.fromiter(
            (self._node_operating_point(n).watts for n in self.machine.nodes),
            dtype=float,
            count=len(self.machine.nodes),
        )

    def job_power(self, job_id: str) -> float:
        """Instantaneous power of one running job, watts."""
        execution = self._executions.get(job_id)
        if execution is None:
            return 0.0
        self._update_execution(execution)
        return execution.power_watts

    def running_jobs(self) -> List[Job]:
        """Jobs currently running."""
        return [e.job for e in self._executions.values()]

    # ------------------------------------------------------------------
    # Execution bookkeeping
    # ------------------------------------------------------------------
    def _placement_penalty(self, job: Job, node_ids: List[int]) -> float:
        """Speed divisor (>= 1) from the communication cost of a spread
        placement; 1.0 when penalties are off or no topology exists.

        ``penalty = 1 + comm_penalty x comm_fraction x excess`` where
        *excess* is the placement's mean pairwise hop distance beyond
        the compact reference (2 hops — one switch away).
        """
        if self.comm_penalty <= 0.0 or self.machine.topology is None:
            return 1.0
        if len(node_ids) < 2:
            return 1.0
        comm_fraction = sum(
            p.fraction for p in job.profile if p.kind == "comm"
        )
        if comm_fraction <= 0.0:
            return 1.0
        cost = self.machine.topology.placement_cost(node_ids)
        excess = max(0.0, (cost - 2.0) / 2.0)
        return 1.0 + self.comm_penalty * comm_fraction * excess

    def _compute_operating(self, execution: JobExecution) -> Tuple[float, float, bool]:
        """(speed, power, violated) of a job across its nodes now."""
        job = execution.job
        if self.power_vector is not None and execution.rows is not None:
            # One kernel over the job's rows; the mirror already holds
            # the job's intensity/sensitivity from bind().
            op = self.power_vector.operating_points(execution.rows)
            speed = min(1.0, float(op.speed.min()))
            power = float(op.watts.sum())
            violated = bool(op.cap_violated.any())
        else:
            speed = 1.0
            power = 0.0
            violated = False
            for node in execution.nodes:
                sample = self.power_model.operating_point(
                    node, job.mean_power_intensity, job.mean_sensitivity
                )
                speed = min(speed, sample.speed)
                power += sample.watts
                violated = violated or sample.cap_violated
        speed /= execution.placement_penalty
        return max(speed, 1e-9), power, violated

    def _update_execution(self, execution: JobExecution) -> None:
        """Bank work and energy accumulated since the last update."""
        now = self.sim.now
        dt = now - execution.last_update
        if dt > 0:
            execution.work_done += execution.speed * dt
            execution.job.energy_joules += execution.power_watts * dt
            execution.last_update = now

    def _schedule_end(self, execution: JobExecution) -> None:
        """(Re)schedule the completion event from remaining work."""
        if execution.end_handle is not None:
            execution.end_handle.cancel()
        eta = execution.remaining_work / execution.speed
        execution.end_handle = self.sim.after(
            eta,
            self._complete_job,
            execution.job.job_id,
            priority=EventPriority.STATE,
            name=f"end:{execution.job.job_id}",
        )

    def _reevaluate_execution(self, execution: JobExecution) -> None:
        """Bank work at the old speed, recompute the operating point
        and reschedule the completion event."""
        self._update_execution(execution)
        speed, power, violated = self._compute_operating(execution)
        execution.speed = speed
        execution.power_watts = power
        if violated and not execution.cap_violated:
            execution.cap_violated = True
            self.trace.emit(self.sim.now, "power.cap_violation",
                            job=execution.job.job_id)
        self._schedule_end(execution)

    def _on_speed_changed(self, node_ids: List[int]) -> None:
        """RM changed caps/frequency: re-evaluate affected executions.

        (The nodes marked themselves power-dirty via their listener
        hook when the cap/frequency was written.)  Affected executions
        are visited in first-occurrence order of *node_ids* on both
        backends — the vector path dedups slot ids with one gather
        instead of a per-node dict probe, then restores that order.
        """
        mirror = self.power_vector
        if mirror is not None:
            rows = mirror.rows_for(node_ids)
            slots = mirror.exec_slot[rows]
            slots = slots[slots >= 0]
            if slots.size == 0:
                return
            uniq, first = np.unique(slots, return_index=True)
            exec_slots = self._exec_slots
            for slot in uniq[np.argsort(first, kind="stable")].tolist():
                self._reevaluate_execution(exec_slots[slot])
            return
        seen = set()
        for nid in node_ids:
            execution = self._node_exec.get(nid)
            if execution is None or execution.job.job_id in seen:
                continue
            seen.add(execution.job.job_id)
            self._reevaluate_execution(execution)

    # ------------------------------------------------------------------
    # Job life-cycle
    # ------------------------------------------------------------------
    def _submit_job(self, job: Job) -> None:
        self.queue.submit(job)
        self.trace.emit(self.sim.now, "job.submit", job=job.job_id,
                        nodes=job.nodes, walltime=job.walltime_request)
        self.request_schedule_pass()

    def _start_job(self, job: Job, nodes: Tuple[Node, ...]) -> None:
        now = self.sim.now
        self.queue.remove(job.job_id)
        node_list = list(nodes)
        node_ids = [n.node_id for n in node_list]
        job.start(now, node_ids)

        # Policies see the machine *before* this job occupies it: a
        # budget policy's configure_start reads machine_power() to size
        # the remaining headroom, which must not already include this
        # job's nodes at busy draw (they carry no job binding yet, so
        # they would be billed at full utilization).
        for policy in self.policies:
            policy.configure_start(job, node_list, now)

        # Execution membership: on the vector backend it lives in the
        # mirror's exec_slot column (stamped below in one scatter), so
        # neither ``node.running_job`` nor a per-node dict is written —
        # the scalar backend keeps both as the reference path.
        vector = self.power_vector is not None
        if self._bulk_ops and len(node_list) > 1:
            if not vector:
                for node in node_list:
                    node.running_job = job.job_id
            self.machine.transition_bulk(
                node_ids, NodeState.BUSY, now, nodes=node_list
            )
        elif vector:
            for node in node_list:
                node.transition(NodeState.BUSY, now)
        else:
            for node in node_list:
                node.running_job = job.job_id
                node.transition(NodeState.BUSY, now)

        execution = JobExecution(job, node_list)
        execution.last_update = now
        execution.placement_penalty = self._placement_penalty(job, node_ids)
        # Binding changes the nodes' billed draw (job intensity); it
        # must land in the power backend before _compute_operating.
        if vector:
            execution.rows = self.power_vector.rows_for(node_ids)
            self.power_vector.bind_execution(
                execution.rows,
                self._alloc_slot(execution),
                job.mean_power_intensity,
                job.mean_sensitivity,
            )
        speed, power, violated = self._compute_operating(execution)
        execution.speed = speed
        execution.power_watts = power
        execution.cap_violated = violated
        if violated:
            self.trace.emit(now, "power.cap_violation", job=job.job_id)
        self._executions[job.job_id] = execution
        if not vector:
            for node in node_list:
                self._node_exec[node.node_id] = execution
                self._power_dirty.add(node.node_id)

        self._schedule_end(execution)
        execution.timeout_handle = self.sim.at(
            now + job.walltime_request,
            self._timeout_job,
            job.job_id,
            priority=EventPriority.STATE,
            name=f"timeout:{job.job_id}",
        )
        self._started_count += 1
        self.trace.emit(now, "job.start", job=job.job_id, nodes=job.nodes,
                        power=power, speed=speed)
        for policy in self.policies:
            policy.on_job_start(job, now)

    def _teardown_execution(self, execution: JobExecution) -> None:
        if execution.end_handle is not None:
            execution.end_handle.cancel()
        if execution.timeout_handle is not None:
            execution.timeout_handle.cancel()
        now = self.sim.now
        mirror = self.power_vector
        if mirror is not None and execution.rows is not None:
            # Nodes that left BUSY out of band (failure -> DOWN) are
            # skipped exactly like the scalar loop's release guard —
            # filtered on the SoA state column instead of a node scan.
            rows = execution.rows
            busy_rows = rows[mirror.state_code[rows] == _BUSY_CODE]
            if self._bulk_ops and len(execution.nodes) > 1:
                if busy_rows.size:
                    busy = self._nodes_arr[busy_rows].tolist()
                    self.machine.transition_bulk(
                        [n.node_id for n in busy], NodeState.IDLE, now,
                        nodes=busy,
                    )
            else:
                for node in self._nodes_arr[busy_rows].tolist():
                    node.transition(NodeState.IDLE, now)
            mirror.unbind_execution(rows)
            self._release_slot(execution)
        elif self._bulk_ops and len(execution.nodes) > 1:
            busy = [n for n in execution.nodes if n.state is NodeState.BUSY]
            for node in busy:
                node.running_job = None
            if busy:
                self.machine.transition_bulk(
                    [n.node_id for n in busy], NodeState.IDLE, now,
                    nodes=busy,
                )
            for node in execution.nodes:
                self._node_exec.pop(node.node_id, None)
                self._power_dirty.add(node.node_id)
        else:
            for node in execution.nodes:
                if node.state is NodeState.BUSY:
                    node.release(now)
                self._node_exec.pop(node.node_id, None)
                self._power_dirty.add(node.node_id)
        self._executions.pop(execution.job.job_id, None)

    def _finish(self, job_id: str, outcome: str, reason: str = "") -> None:
        execution = self._executions.get(job_id)
        if execution is None:
            return  # already finished (stale event)
        self._update_execution(execution)
        job = execution.job
        now = self.sim.now
        self._teardown_execution(execution)
        if outcome == "complete":
            job.complete(now)
        elif outcome == "timeout":
            job.timeout(now)
        else:
            job.kill(now, reason)
        self._terminal_count += 1
        self.trace.emit(now, f"job.{outcome}", job=job.job_id,
                        energy=job.energy_joules, reason=reason)
        for policy in self.policies:
            policy.on_job_end(job, now)
        self.request_schedule_pass()

    def _complete_job(self, job_id: str) -> None:
        execution = self._executions.get(job_id)
        if execution is None:
            return
        self._update_execution(execution)
        if execution.remaining_work > 1e-6:
            # Stale completion (speed dropped since scheduling); reschedule.
            self._schedule_end(execution)
            return
        self._finish(job_id, "complete")

    def _timeout_job(self, job_id: str) -> None:
        execution = self._executions.get(job_id)
        if execution is None:
            return
        self._update_execution(execution)
        if execution.remaining_work <= 1e-6:
            self._finish(job_id, "complete")
        else:
            self._finish(job_id, "timeout")

    def kill_job(self, job_id: str, reason: str) -> bool:
        """Forcibly terminate a running job (emergency policies).

        Returns True if the job was running and is now killed.
        """
        if job_id not in self._executions:
            return False
        self._finish(job_id, "kill", reason)
        return True

    def resubmit_job(self, job: Job) -> None:
        """Add a new job mid-run (requeue policies).

        The job joins the accounting set and is submitted at its
        ``submit_time`` (or immediately if that is in the past); the
        run loop keeps going until it, too, reaches a terminal state.
        """
        if any(existing.job_id == job.job_id for existing in self.jobs):
            raise SchedulingError(f"duplicate job id {job.job_id!r}")
        self.jobs.append(job)
        submit_at = max(job.submit_time, self.sim.now)
        self.sim.at(submit_at, self._submit_job, job,
                    priority=EventPriority.STATE,
                    name=f"submit:{job.job_id}")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def request_schedule_pass(self) -> None:
        """Coalesce and schedule a scheduler pass at the current time."""
        if self._pass_pending:
            return
        self._pass_pending = True
        self.sim.at(
            self.sim.now,
            self._schedule_pass,
            priority=EventPriority.CONTROL,
            name="schedule-pass",
        )

    def build_context(self) -> SchedulingContext:
        """Snapshot the current state for the scheduler.

        The availability count and the usable-node count come from
        masks maintained on node state transitions (see
        ``_on_node_event``), not from scanning all N nodes.  The
        ``available`` and ``running`` object lists are *lazy*: the
        context carries factories, and batch-aware schedulers that
        decide on selection rows and :meth:`SchedulingContext.free_count`
        never materialize either list — the dominant per-pass cost on
        a congested large machine.  The factories read live state, which
        is safe because nothing mutates nodes or executions while a
        scheduler is deciding.  The mask is walked in row (== node id)
        order on materialization, so the list is identical to the
        seed's full scan.  Filter policies rewrite the available list,
        so that path stays eager.
        """
        now = self.sim.now
        available: Optional[List[Node]] = None
        if self._filter_policies:
            available = self._nodes_arr[self._avail_mask].tolist()
            for policy in self._filter_policies:
                available = policy.filter_nodes(available, now)
            avail_count = len(available)
        else:
            avail_count = self._avail_count

        def available_factory() -> List[Node]:
            return self._nodes_arr[self._avail_mask].tolist()

        pending = self.queue.pending()
        # SoA queue columns for batched scheduler passes — only when no
        # shaping policy may swap job objects mid-pass (the arrays must
        # stay aligned with ``pending``).
        pending_arrays = None
        if not self._shaping_policies:
            pending_arrays = self.queue.pending_arrays()
        else:
            shaped_jobs: List[Job] = []
            for job in pending:
                for policy in self._shaping_policies:
                    job = policy.select_configuration(job, now)
                shaped_jobs.append(job)
            pending = shaped_jobs

        # A start_time of exactly 0.0 is a legitimate start (the first
        # jobs of most workloads), not a missing value — only None
        # means "not started".
        def running_factory() -> List[RunningJobInfo]:
            return [
                RunningJobInfo(
                    e.job,
                    e.node_ids,
                    (now if e.job.start_time is None else e.job.start_time)
                    + e.job.walltime_request,
                )
                for e in self._executions.values()
            ]

        def admit(job: Job) -> bool:
            return all(p.admit(job, now) for p in self.policies)

        # Vectorized selection arrays for batch-aware allocators: only
        # when they are guaranteed to agree with the available list —
        # vector backend (the mirror carries the power columns), row
        # order == id order, no filter policy rewriting the list, and
        # bulk ops enabled (one switch flips the whole batched engine,
        # which is what the equivalence tests and benches compare).
        mirror = self.power_vector
        selection = None
        if (
            self._bulk_ops
            and mirror is not None
            and mirror._ids_monotone
            and not self._filter_policies
        ):
            selection = NodeSelection(
                avail_mask=self._avail_mask,
                nodes_arr=self._nodes_arr,
                max_power=mirror.max_power,
                variability=mirror.variability,
            )

        usable = self._usable_count
        return SchedulingContext(
            now=now,
            machine=self.machine,
            pending=pending,
            available=available,
            admit=admit,
            usable_node_count=usable,
            selection=selection,
            available_factory=available_factory,
            running_factory=running_factory,
            avail_count=avail_count,
            # With zero policies the admit closure above is a vacuous
            # all() over an empty tuple: calling it is unobservable,
            # so batched scheduler paths may compile it out.
            trivial_admit=not self.policies,
            pending_arrays=pending_arrays,
        )

    def _schedule_pass(self) -> None:
        self._pass_pending = False
        # Empty-queue fast path: no pending work means no decisions, so
        # skip the context build entirely.  Gated on having no filter
        # policies, whose per-pass filter_nodes call is observable.
        if not self.queue._jobs and not self._filter_policies:
            return
        ctx = self.build_context()
        if not ctx.pending:
            return
        decisions = self.scheduler.schedule(ctx)
        granted = set()
        now = self.sim.now
        # Mask-based twin of the per-node grant guards for the bulk
        # engine: the availability mask is fed by the same listeners
        # `is_available` reflects, and double-booking within the pass
        # is caught by each cohort clearing its own mask rows when the
        # job starts — so one vectorized read per decision replaces
        # two Python scans over a (possibly 16k-wide) cohort.
        vector_guard = self._bulk_ops and self._rows_are_ids
        for decision in decisions:
            # Re-check admission at apply time: earlier starts in this
            # same pass have already raised machine power, and the
            # snapshot the scheduler saw does not reflect that.
            if not all(p.admit(decision.job, now) for p in self.policies):
                continue
            if vector_guard and len(decision.nodes) > 1:
                rows = np.fromiter(
                    (n.node_id for n in decision.nodes),
                    dtype=np.intp,
                    count=len(decision.nodes),
                )
                if not self._avail_mask[rows].all():
                    bad = next(
                        (n.node_id for n in decision.nodes
                         if not n.is_available),
                        int(rows[np.argmin(self._avail_mask[rows])]),
                    )
                    raise SchedulingError(
                        "scheduler picked unavailable node "
                        f"{bad} for {decision.job.job_id}"
                    )
            else:
                ids = {n.node_id for n in decision.nodes}
                if ids & granted:
                    raise SchedulingError(
                        "scheduler double-booked nodes for "
                        f"{decision.job.job_id}"
                    )
                granted |= ids
                for node in decision.nodes:
                    if not node.is_available:
                        raise SchedulingError(
                            f"scheduler picked unavailable node {node.node_id} "
                            f"for {decision.job.job_id}"
                        )
            self._start_job(decision.job, decision.nodes)

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Schedule submissions and start periodic components.

        Idempotent; called by :meth:`run`, or directly by a
        multi-machine driver that owns the shared event loop.
        """
        if self._prepared:
            return
        self._prepared = True
        for job in self.jobs:
            submit_at = max(job.submit_time, self.sim.now)
            self.sim.at(submit_at, self._submit_job, job,
                        priority=EventPriority.STATE, name=f"submit:{job.job_id}")
        # Periodic retry loop: real batch schedulers re-run their main
        # scheduling pass on a timer, which is what lets jobs vetoed by
        # a time-varying condition (DR window, seasonal cap, budget)
        # start once the condition clears.
        self.sim.every(
            self.scheduler_interval,
            self.request_schedule_pass,
            priority=EventPriority.CONTROL,
            name="schedule-retry",
        )
        self.meter.start()

    @property
    def all_jobs_terminal(self) -> bool:
        """True once every submitted job reached a terminal state."""
        return self._terminal_count >= len(self.jobs)

    @property
    def progress_count(self) -> int:
        """Monotone progress indicator (starts + terminations)."""
        return self._terminal_count + self._started_count

    def finalize(self) -> SimulationResult:
        """Stop metering and assemble the result bundle."""
        final = self.sim.now
        self.meter.stop()
        self.meter.sample()
        first_submit = min((j.submit_time for j in self.jobs), default=0.0)
        span = max(final - first_submit, 1e-9)
        metrics = compute_metrics(
            self.jobs,
            total_nodes=len(self.machine),
            span=span,
            meter=self.meter,
            cap_watts=self.cap_watts_for_metrics,
        )
        metrics.extra["boots_initiated"] = float(self.rm.boots_initiated)
        metrics.extra["shutdowns_initiated"] = float(self.rm.shutdowns_initiated)
        return SimulationResult(
            jobs=self.jobs,
            metrics=metrics,
            trace=self.trace,
            meter=self.meter,
            machine=self.machine,
            final_time=final,
        )

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stall_timeout: float = 30.0 * 86400.0,
    ) -> SimulationResult:
        """Execute the workload; returns the result bundle.

        With no *until*, runs until every job reached a terminal state.
        Periodic components (meters, policy ticks) do not keep the
        simulation alive.  If queued jobs make no progress for
        *stall_timeout* simulated seconds (e.g. a job larger than the
        machine under strict FCFS), the run stops and those jobs are
        reported as unfinished.
        """
        self.prepare()
        if until is not None:
            self.sim.run(until=until, max_events=max_events)
        else:
            fired = 0
            last_progress_count = -1
            last_progress_time = self.sim.now
            while not self.all_jobs_terminal:
                if not self.sim.step():
                    break
                fired += 1
                if max_events is not None and fired >= max_events:
                    raise SchedulingError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                progress = self.progress_count
                if progress != last_progress_count:
                    last_progress_count = progress
                    last_progress_time = self.sim.now
                elif self.sim.now - last_progress_time > stall_timeout:
                    self.trace.emit(
                        self.sim.now, "sim.stall",
                        unfinished=len(self.jobs) - self._terminal_count,
                    )
                    break
        return self.finalize()

    def run_batched(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stall_timeout: float = 30.0 * 86400.0,
    ) -> SimulationResult:
        """Batched twin of :meth:`run`: same contract, same results.

        Drives the engine through
        :meth:`~repro.simulator.engine.Simulator.run_batched` (same-
        instant event cohorts dispatched without per-event heap
        traffic) and routes policy ticks through ``on_tick_batch`` with
        an SoA lifecycle view.  Pinned event-for-event replay-identical
        to :meth:`run` by the ``repro.state`` first-divergence harness;
        the stop closure below replicates the stepped loop's terminal,
        max-events and stall checks at the same points (after each
        fired event ≡ before the next step).
        """
        self.prepare()
        self._batched = True
        # Flush the trace's deferred-emit buffer once per drained
        # cohort: every event at a timestamp lands in one indexing
        # pass while the cohort is cache-warm, instead of whenever the
        # 8k threshold happens to trip mid-cohort.
        if self.trace.enabled:
            self.sim.cohort_hook = self.trace.flush_cohort
        try:
            if until is not None:
                self.sim.run_batched(until=until, max_events=max_events)
            else:
                fired = 0
                last_progress_count = -1
                last_progress_time = self.sim.now

                def stop() -> bool:
                    # Called once before the first event (the stepped
                    # loop's initial while-test) and after every fired
                    # event thereafter.
                    nonlocal fired, last_progress_count, last_progress_time
                    fired += 1
                    if fired == 1:
                        return self.all_jobs_terminal
                    if max_events is not None and fired - 1 >= max_events:
                        raise SchedulingError(
                            f"exceeded max_events={max_events}; "
                            f"runaway simulation?"
                        )
                    if self.all_jobs_terminal:
                        return True
                    progress = self.progress_count
                    if progress != last_progress_count:
                        last_progress_count = progress
                        last_progress_time = self.sim.now
                    elif self.sim.now - last_progress_time > stall_timeout:
                        self.trace.emit(
                            self.sim.now, "sim.stall",
                            unfinished=len(self.jobs) - self._terminal_count,
                        )
                        return True
                    return False

                self.sim.run_batched(stop=stop)
        finally:
            self._batched = False
            self.sim.cohort_hook = None
        return self.finalize()
