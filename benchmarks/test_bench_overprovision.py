"""Experiment ``exp-overprovision``: Sarood-style over-provisioning.

Budget sweep comparing two ways to honour a strict machine budget:

* *naive*: power only as many nodes as can run uncapped;
* *overprovisioned*: run more nodes, each capped lower, at the
  throughput-optimal operating point.

Shape claim (Sarood et al. [38] report up to ~2x throughput): under
tight budgets the over-provisioned configuration completes the same
workload substantially faster; as the budget approaches full machine
power the two converge.
"""

from __future__ import annotations

import copy

from repro.analysis.report import render_columns
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import OverprovisioningPolicy
from repro.workload.phases import COMPUTE_BOUND

from .conftest import bench_machine, bench_workload, write_artifact

BUDGET_FRACTIONS = (0.4, 0.6, 0.8, 1.0)


class NaiveBudgetPolicy(OverprovisioningPolicy):
    """Honour the budget with uncapped nodes only (the baseline)."""

    name = "naive-budget"

    def solve_operating_point(self):
        machine = self.simulation.machine
        node = machine.nodes[0]
        p_max = node.effective_max_power
        total = len(machine.nodes)
        # n·p_max + (N-n)·p_off <= budget
        n = int((self.budget_watts - node.off_power * total)
                // (p_max - node.off_power))
        n = max(1, min(n, total))
        return n, p_max, float(n)


def _jobs():
    jobs = bench_workload(seed=43, count=100, nodes=48, rate_per_hour=80.0,
                          mean_work_hours=0.4)
    for job in jobs:
        job.profile = COMPUTE_BOUND
        job.nodes = min(job.nodes, 4)  # parallel small jobs: Sarood's regime
        # Uniform work so makespan measures throughput rather than the
        # slowdown of one lognormal straggler.
        job.work_seconds = 1800.0
        job.walltime_request = 4 * 3600.0
    return jobs


def _run(policy_cls, fraction: float):
    machine = bench_machine(48)
    budget = machine.peak_power * fraction
    policy = policy_cls(budget_watts=budget, sensitivity=0.95)
    sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                            copy.deepcopy(_jobs()), policies=[policy],
                            seed=1, cap_watts_for_metrics=budget)
    result = sim.run()
    return result.metrics, policy


def test_bench_overprovisioning_sweep(benchmark, artifact_dir):
    def sweep():
        out = {}
        for fraction in BUDGET_FRACTIONS:
            for cls, label in ((NaiveBudgetPolicy, "naive"),
                               (OverprovisioningPolicy, "overprov")):
                out[(label, fraction)] = _run(cls, fraction)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [label, f"{frac:.0%}", f"{p.active_count}",
         f"{(p.chosen_cap or 0):.0f}", f"{m.makespan / 3600:.2f}",
         f"{m.cap_exceedance_fraction:.1%}"]
        for (label, frac), (m, p) in results.items()
    ]
    write_artifact(
        "exp-overprovision",
        "EXP-OVERPROVISION — budget sweep, naive vs over-provisioned\n\n"
        + render_columns(
            ["mode", "budget", "n_active", "cap[W]", "makespan[h]",
             "time>budget"],
            rows,
        ),
    )

    # Tight budget (40 %): over-provisioning wins clearly.  The
    # theoretical ceiling of this configuration is ~1.2x (score 23 at
    # 43 capped nodes vs 19 uncapped); require a solid share of it.
    assert (results[("naive", 0.4)][0].makespan
            >= 1.10 * results[("overprov", 0.4)][0].makespan)
    # Near the crossover (60 %) it never loses materially.
    assert (results[("overprov", 0.6)][0].makespan
            <= 1.05 * results[("naive", 0.6)][0].makespan)
    # At full budget the two converge (within 10 %).
    naive_full = results[("naive", 1.0)][0].makespan
    over_full = results[("overprov", 1.0)][0].makespan
    assert abs(naive_full - over_full) <= 0.10 * naive_full
    # Budget respected everywhere.
    assert all(m.cap_exceedance_fraction <= 0.05
               for m, _ in results.values())
