"""Experiment ``exp-backfill-depth``: scheduler cost at deep queues.

The tentpole claim of the FreeNodeProfile rewrite: one conservative
backfill pass over a deep pending queue is ≥10× faster than the seed
delta-dict implementation — while returning the exact same decisions
(the equivalence is asserted here on the benchmarked context itself,
on top of the randomized property tests).

The seed implementation re-sorted and re-scanned the whole profile per
candidate start (~O(P·T³) at queue depth P); the profile keeps the
step function materialized, so a pass is one sliding-window-minimum
walk plus an incremental subtraction per reservation.
"""

from __future__ import annotations

import time

from repro.core import (
    ConservativeBackfillScheduler,
    SchedulingContext,
)
from repro.core.reference_backfill import ReferenceConservativeBackfillScheduler
from repro.core.scheduler import RunningJobInfo
from repro.workload import Job

from .conftest import bench_machine, write_artifact


def _deep_context(machine, depth: int) -> SchedulingContext:
    """A congested instant: most of the machine busy, *depth* pending
    jobs nearly all of which end up as reservations."""
    n_nodes = len(machine.nodes)
    now = 10_000.0

    running = []
    node_cursor = 0
    busy_target = n_nodes - max(8, n_nodes // 16)
    i = 0
    while node_cursor < busy_target:
        width = min(1 + (i * 7) % 12, busy_target - node_cursor)
        ids = tuple(range(node_cursor, node_cursor + width))
        node_cursor += width
        job = Job(
            job_id=f"r{i}",
            nodes=width,
            work_seconds=5000.0,
            walltime_request=9000.0,
        )
        job.start(now - 100.0, list(ids))
        for nid in ids:
            machine.node(nid).assign(job.job_id, now - 100.0)
        end = now + 200.0 + (i * 37) % 4000
        running.append(RunningJobInfo(job, ids, end))
        i += 1

    pending = [
        Job(
            job_id=f"p{j}",
            nodes=1 + (j * 13) % (n_nodes // 2),
            work_seconds=500.0,
            walltime_request=600.0 + (j * 101) % 3000,
            submit_time=now - 1.0,
        )
        for j in range(depth)
    ]
    available = [n for n in machine.nodes if n.is_available]
    return SchedulingContext(
        now=now,
        machine=machine,
        pending=pending,
        available=available,
        running=running,
        admit=lambda job: True,
        usable_node_count=n_nodes,
    )


def _decision_key(decisions):
    return [(d.job.job_id, tuple(n.node_id for n in d.nodes)) for d in decisions]


def test_bench_backfill_depth(benchmark, artifact_dir):
    """Conservative backfill at 500 and 1000 pending jobs."""
    fast = ConservativeBackfillScheduler()
    reference = ReferenceConservativeBackfillScheduler()

    # Reference cost + decision equivalence, measured once at depth 500
    # (the seed is too slow to run under the benchmark loop).
    machine = bench_machine(256)
    ctx = _deep_context(machine, depth=500)
    t0 = time.perf_counter()
    ref_decisions = _decision_key(reference.schedule(ctx))
    ref_seconds = time.perf_counter() - t0
    assert _decision_key(fast.schedule(ctx)) == ref_decisions

    # Benchmark the profile-based scheduler at depth 500.
    t0 = time.perf_counter()
    fast_result = benchmark.pedantic(
        fast.schedule, args=(ctx,), rounds=5, iterations=1
    )
    fast_seconds = max((time.perf_counter() - t0) / 5, 1e-9)
    assert _decision_key(fast_result) == ref_decisions
    speedup = ref_seconds / fast_seconds

    # Depth 1000, new implementation only.
    ctx1000 = _deep_context(bench_machine(256), depth=1000)
    t0 = time.perf_counter()
    fast.schedule(ctx1000)
    fast_1000 = time.perf_counter() - t0

    write_artifact(
        "exp-backfill-depth",
        "EXP-BACKFILL-DEPTH — conservative backfill pass cost\n"
        "(256 nodes, congested; one schedule() call)\n\n"
        f"depth  500: seed {ref_seconds * 1e3:9.1f} ms"
        f"   profile {fast_seconds * 1e3:8.2f} ms"
        f"   speedup {speedup:7.1f}x\n"
        f"depth 1000: profile {fast_1000 * 1e3:8.2f} ms\n\n"
        f"decisions identical at depth 500: True\n",
    )

    # The tentpole acceptance bar.
    assert speedup >= 10.0, f"only {speedup:.1f}x over the seed implementation"
