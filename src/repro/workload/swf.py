"""Standard Workload Format (SWF) trace I/O.

The SWF is the lingua franca of the job-scheduling literature the
survey builds on (the Parallel Workloads Archive; Mu'alem & Feitelson's
backfilling study [35] is based on SWF traces).  Supporting it means
real traces can drive every policy in this framework, and generated
workloads can be analysed by external SWF tooling.

Format: one job per line, 18 whitespace-separated fields; ``;`` starts
a header/comment line.  Fields used here (1-based, per the spec):

1. job number          2. submit time          3. wait time
4. run time            5. allocated processors 6. avg CPU time
7. used memory         8. requested processors 9. requested time
10. requested memory   11. status              12. user id
13. group id           14. executable (app)    15. queue
16. partition          17. preceding job       18. think time

Missing values are ``-1``.  On read, requested processors/time fall
back to allocated/actual when absent, matching common practice.
"""

from __future__ import annotations

import io
from typing import Iterable, List, TextIO, Union

from ..errors import TraceFormatError
from .job import Job, JobState

_NUM_FIELDS = 18


def _open_for_read(source: Union[str, TextIO]) -> TextIO:
    if isinstance(source, str):
        return open(source, "r", encoding="utf-8")
    return source


def read_swf(
    source: Union[str, TextIO],
    max_jobs: int = 0,
    cores_per_node: int = 1,
) -> List[Job]:
    """Parse an SWF trace into :class:`Job` objects.

    Parameters
    ----------
    source:
        Path or open text file.
    max_jobs:
        Stop after this many jobs (0 = all).
    cores_per_node:
        SWF counts *processors*; divide by this to obtain whole nodes
        (rounded up), since all surveyed systems allocate whole nodes.
    """
    if cores_per_node <= 0:
        raise TraceFormatError("cores_per_node must be >= 1")
    close = isinstance(source, str)
    fh = _open_for_read(source)
    jobs: List[Job] = []
    try:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(";"):
                continue
            parts = line.split()
            if len(parts) < _NUM_FIELDS:
                raise TraceFormatError(
                    f"line {lineno}: expected {_NUM_FIELDS} fields, got {len(parts)}"
                )
            try:
                values = [float(p) for p in parts[:_NUM_FIELDS]]
            except ValueError as exc:
                raise TraceFormatError(f"line {lineno}: non-numeric field: {exc}") from None

            job_number = int(values[0])
            submit = max(0.0, values[1])
            run_time = values[3]
            alloc_procs = values[4]
            req_procs = values[7] if values[7] > 0 else alloc_procs
            req_time = values[8] if values[8] > 0 else run_time
            user = int(values[11]) if values[11] >= 0 else 0
            app = int(values[13]) if values[13] >= 0 else 0
            queue = int(values[14]) if values[14] >= 0 else 0

            if run_time <= 0 or req_procs <= 0:
                continue  # cancelled-before-start entries carry no work
            nodes = max(1, int(-(-req_procs // cores_per_node)))  # ceil div
            jobs.append(
                Job(
                    job_id=f"swf{job_number}",
                    nodes=nodes,
                    work_seconds=float(run_time),
                    walltime_request=float(max(req_time, run_time)),
                    submit_time=float(submit),
                    user=f"user{user:03d}",
                    app_name=f"app{app}",
                    tag=f"app{app}:{nodes}",
                    queue=f"q{queue}",
                )
            )
            if max_jobs and len(jobs) >= max_jobs:
                break
    finally:
        if close:
            fh.close()
    return jobs


_STATUS = {
    JobState.COMPLETED: 1,
    JobState.KILLED: 5,
    JobState.TIMEOUT: 5,
    JobState.CANCELLED: 0,
    JobState.PENDING: -1,
    JobState.RUNNING: -1,
}


def write_swf(
    jobs: Iterable[Job],
    target: Union[str, TextIO],
    cores_per_node: int = 1,
    header: str = "",
) -> int:
    """Write jobs as an SWF trace; returns the number of lines written.

    Jobs that never started get ``-1`` wait/run fields, per the spec.
    """
    if cores_per_node <= 0:
        raise TraceFormatError("cores_per_node must be >= 1")
    close = isinstance(target, str)
    fh: TextIO = open(target, "w", encoding="utf-8") if isinstance(target, str) else target
    count = 0
    try:
        if header:
            for line in header.splitlines():
                fh.write(f"; {line}\n")
        user_ids: dict = {}
        app_ids: dict = {}
        for i, job in enumerate(jobs, start=1):
            wait = job.wait_time
            run = job.run_time
            user_id = user_ids.setdefault(job.user, len(user_ids) + 1)
            app_id = app_ids.setdefault(job.app_name, len(app_ids) + 1)
            fields = [
                i,
                int(job.submit_time),
                int(wait) if wait is not None else -1,
                int(run) if run is not None else -1,
                job.nodes * cores_per_node if run is not None else -1,
                -1,
                -1,
                job.nodes * cores_per_node,
                int(job.walltime_request),
                -1,
                _STATUS.get(job.state, -1),
                user_id,
                -1,
                app_id,
                1,
                -1,
                -1,
                -1,
            ]
            fh.write(" ".join(str(f) for f in fields) + "\n")
            count += 1
    finally:
        if close:
            fh.close()
    return count


def roundtrip_string(jobs: Iterable[Job], cores_per_node: int = 1) -> str:
    """Render jobs to an SWF string (testing/debug helper)."""
    buf = io.StringIO()
    write_swf(jobs, buf, cores_per_node=cores_per_node)
    return buf.getvalue()
