"""LRZ (SuperMUC) scenario — Table I row 5.

Production: first-run application characterization for frequency,
runtime and energy; administrator-selected scheduling goal (energy to
solution vs. best performance) — the LoadLeveler/LSF energy-aware
scheduling line ([4], [24]).
"""

from __future__ import annotations

from ..cluster.thermal import AmbientModel
from ..core.backfill import EasyBackfillScheduler
from ..core.simulation import ClusterSimulation
from ..policies.energy_tags import EnergyTagPolicy, SchedulingGoal
from ..policies.reporting import EnergyReportingPolicy
from ..units import DAY
from .base import CenterBuild, center_workload, standard_machine, standard_site


def build_simulation(
    seed: int = 0,
    duration: float = 2.0 * DAY,
    nodes: int = 128,
    goal: SchedulingGoal = SchedulingGoal.ENERGY_TO_SOLUTION,
    with_cooling_research: bool = False,
) -> CenterBuild:
    """Assemble the LRZ scenario; *goal* is the admin's selection.

    ``with_cooling_research`` additionally enables the Table-I research
    line — "scheduler may delay jobs when IT infrastructure is
    particularly inefficient" — via
    :class:`~repro.policies.cooling_aware.CoolingAwarePolicy`.
    """
    # SuperMUC: Sandy Bridge thin nodes, warm-water cooled.
    machine = standard_machine(
        "supermuc", nodes=nodes, idle_power=95.0, max_power=340.0, seed=seed,
    )
    site = standard_site(
        "lrz", machine, region="Europe",
        ambient=AmbientModel(mean=9.0, seasonal_amplitude=10.0),
    )
    policies = [EnergyTagPolicy(goal=goal), EnergyReportingPolicy()]
    notes = [f"energy-tag scheduling, goal={goal.value}"]
    if with_cooling_research:
        from ..policies.cooling_aware import CoolingAwarePolicy
        from ..units import HOUR

        policies.insert(0, CoolingAwarePolicy(pue_threshold=1.25,
                                              max_delay=12 * HOUR))
        notes.append("research line: delay jobs while facility PUE > 1.25")
    workload = center_workload("lrz", machine, duration=duration, seed=seed)
    simulation = ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        workload,
        policies=policies,
        site=site,
        seed=seed,
    )
    return CenterBuild("lrz", simulation, notes=notes)
