"""Cabinet (rack) grouping of nodes.

Question 2(c) of the survey asks centers to describe systems "in terms
related to: number of cabinets, nodes, and cores".  Cabinets matter for
EPA JSRM because power distribution and cooling are provisioned per
cabinet, and because some control mechanisms (Cray CAPMC, Fujitsu's
group caps at JCAHPC) actuate at cabinet/group granularity.
"""

from __future__ import annotations

from typing import Iterable, List

from .node import Node


class Cabinet:
    """A rack of nodes sharing power distribution and cooling."""

    def __init__(self, cabinet_id: int, nodes: Iterable[Node]) -> None:
        self.cabinet_id = int(cabinet_id)
        self.nodes: List[Node] = list(nodes)
        for node in self.nodes:
            node.cabinet_id = self.cabinet_id

    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def node_ids(self) -> List[int]:
        """Ids of the member nodes."""
        return [n.node_id for n in self.nodes]

    @property
    def peak_power(self) -> float:
        """Sum of member nodes' variability-adjusted max power, watts."""
        return sum(n.effective_max_power for n in self.nodes)

    @property
    def idle_power(self) -> float:
        """Sum of member nodes' idle power, watts."""
        return sum(n.idle_power for n in self.nodes)
