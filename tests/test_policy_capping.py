"""Tests for static capping, group caps and overprovisioning policies."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.core import ClusterSimulation, EasyBackfillScheduler, FcfsScheduler
from repro.errors import PolicyError
from repro.policies import (
    GroupCapPolicy,
    OverprovisioningPolicy,
    StaticCappingPolicy,
)
from tests.conftest import make_job


def machine16():
    return Machine(MachineSpec(name="m", nodes=16,
                               idle_power=100.0, max_power=400.0))


class TestStaticCapping:
    def test_partition_sizes(self):
        machine = machine16()
        policy = StaticCappingPolicy(cap_watts=270.0, capped_fraction=0.75)
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        assert len(policy.capped_node_ids) == 12
        capped = [machine.node(i) for i in policy.capped_node_ids]
        assert all(n.power_cap == 270.0 for n in capped)
        uncapped = [n for n in machine.nodes if n.node_id not in policy.capped_node_ids]
        assert all(n.power_cap is None for n in uncapped)

    def test_kaust_numbers(self):
        machine = machine16()
        policy = StaticCappingPolicy(cap_watts=270.0, capped_fraction=0.7)
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        assert len(policy.capped_node_ids) == round(0.7 * 16)

    def test_worst_case_power_bound(self):
        machine = machine16()
        policy = StaticCappingPolicy(cap_watts=270.0, capped_fraction=0.5)
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        bound = policy.worst_case_power()
        assert bound == pytest.approx(8 * 270.0 + 8 * 400.0)
        assert bound < machine.peak_power

    def test_hungriest_nodes_capped_first(self):
        machine = machine16()
        machine.node(7).variability = 1.2  # hungriest
        policy = StaticCappingPolicy(cap_watts=270.0, capped_fraction=0.1)
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        assert 7 in policy.capped_node_ids

    def test_cap_below_floor_rejected(self):
        machine = machine16()
        policy = StaticCappingPolicy(cap_watts=50.0, capped_fraction=0.5)
        with pytest.raises(PolicyError):
            ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])

    def test_capped_jobs_run_slower(self):
        from repro.workload.phases import COMPUTE_BOUND

        def run(fraction):
            machine = machine16()
            job = make_job(work=100.0, walltime=10_000.0, profile=COMPUTE_BOUND)
            sim = ClusterSimulation(
                machine, FcfsScheduler(), [job],
                policies=[StaticCappingPolicy(cap_watts=250.0,
                                              capped_fraction=fraction)],
            )
            sim.run()
            return job.run_time

        assert run(1.0) > run(0.0)

    def test_zero_fraction_noop(self):
        machine = machine16()
        policy = StaticCappingPolicy(cap_watts=270.0, capped_fraction=0.0)
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        assert policy.capped_node_ids == []


class TestGroupCaps:
    def _policy(self):
        return GroupCapPolicy(
            {"a": range(0, 8), "b": range(8, 16)},
            caps_watts={"a": 8 * 300.0},
        )

    def test_caps_applied_at_attach(self):
        machine = machine16()
        policy = self._policy()
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        assert machine.node(0).power_cap == pytest.approx(300.0)
        assert machine.node(8).power_cap is None

    def test_set_and_clear_group_cap(self):
        machine = machine16()
        policy = self._policy()
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        policy.set_group_cap("b", 8 * 200.0)
        assert machine.node(8).power_cap == pytest.approx(200.0)
        policy.set_group_cap("a", None)
        assert machine.node(0).power_cap is None

    def test_overlapping_groups_rejected(self):
        with pytest.raises(PolicyError):
            GroupCapPolicy({"a": [0, 1], "b": [1, 2]})

    def test_empty_group_rejected(self):
        with pytest.raises(PolicyError):
            GroupCapPolicy({"a": []})

    def test_unknown_group(self):
        machine = machine16()
        policy = self._policy()
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        with pytest.raises(PolicyError):
            policy.set_group_cap("z", 100.0)

    def test_cap_below_floor_rejected(self):
        machine = machine16()
        policy = self._policy()
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        with pytest.raises(PolicyError):
            policy.set_group_cap("a", 8 * 50.0)

    def test_group_power_measured(self):
        machine = machine16()
        policy = self._policy()
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        # Idle machine: each group draws 8 x idle.
        assert policy.group_power("b") == pytest.approx(8 * 100.0)


class TestOverprovisioning:
    def test_operating_point_tradeoff(self):
        machine = machine16()
        policy = OverprovisioningPolicy(budget_watts=8 * 400.0, sensitivity=0.9)
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        n, cap, score = policy.solve_operating_point()
        # With speed ~ f and power ~ f^2, running more nodes at lower
        # power beats 8 nodes at full power.
        assert n > 8
        assert cap < 400.0
        assert score > 8.0

    def test_generous_budget_uses_all_nodes(self):
        machine = machine16()
        policy = OverprovisioningPolicy(budget_watts=16 * 400.0)
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        n, cap, _ = policy.solve_operating_point()
        assert n == 16
        assert cap == pytest.approx(400.0)

    def test_filter_limits_active_set(self):
        machine = machine16()
        policy = OverprovisioningPolicy(budget_watts=6 * 400.0, sensitivity=1.0)
        ClusterSimulation(machine, FcfsScheduler(), [], policies=[policy])
        pool = policy.filter_nodes(list(machine.nodes), 0.0)
        assert len(pool) == policy.active_count

    def test_throughput_beats_naive_under_budget(self):
        # Same budget, workload of parallel single-node jobs:
        # overprovisioning completes more work per unit time than
        # running fewer uncapped nodes.
        budget = 6 * 400.0

        def run(policies, allowed_nodes):
            machine = machine16()
            jobs = [
                make_job(job_id=f"j{i}", nodes=1, work=600.0, walltime=30_000.0)
                for i in range(32)
            ]
            sim = ClusterSimulation(
                machine, EasyBackfillScheduler(), jobs, policies=policies
            )
            result = sim.run()
            return result.metrics.makespan

        class NaiveLimit(OverprovisioningPolicy):
            """Budget honoured by limiting to 6 uncapped nodes."""

            def solve_operating_point(self):
                return 6, 400.0, 6.0

        over = run([OverprovisioningPolicy(budget_watts=budget,
                                           sensitivity=0.9)], None)
        naive = run([NaiveLimit(budget_watts=budget, sensitivity=0.9)], 6)
        assert over < naive
