"""Property-based tests: event engine ordering invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import Simulator
from repro.simulator.events import EventPriority

event_spec = st.tuples(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    st.sampled_from([EventPriority.STATE, EventPriority.MONITOR,
                     EventPriority.CONTROL, EventPriority.REPORT]),
)


class TestEngineProperties:
    @given(st.lists(event_spec, max_size=200))
    def test_events_fire_in_canonical_order(self, specs):
        sim = Simulator()
        fired = []
        for i, (time, priority) in enumerate(specs):
            sim.at(time, lambda t=time, p=priority, i=i: fired.append((t, p, i)),
                   priority=priority)
        sim.run()
        assert len(fired) == len(specs)
        # (time, priority, insertion order) must be non-decreasing.
        keys = [(t, int(p), i) for t, p, i in fired]
        assert keys == sorted(keys)

    @given(st.lists(event_spec, max_size=200))
    def test_clock_monotone(self, specs):
        sim = Simulator()
        observed = []
        for time, priority in specs:
            sim.at(time, lambda: observed.append(sim.now), priority=priority)
        sim.run()
        assert observed == sorted(observed)

    @given(st.lists(event_spec, min_size=1, max_size=100),
           st.data())
    def test_cancellation_subset(self, specs, data):
        sim = Simulator()
        fired = []
        handles = []
        for i, (time, priority) in enumerate(specs):
            handles.append(
                sim.at(time, lambda i=i: fired.append(i), priority=priority)
            )
        to_cancel = data.draw(
            st.sets(st.integers(0, len(specs) - 1), max_size=len(specs))
        )
        for idx in to_cancel:
            handles[idx].cancel()
        sim.run()
        assert set(fired) == set(range(len(specs))) - to_cancel

    @given(st.floats(min_value=0.1, max_value=1000.0),
           st.floats(min_value=1.0, max_value=10_000.0))
    @settings(max_examples=50)
    def test_periodic_count(self, interval, horizon):
        sim = Simulator()
        count = [0]
        sim.every(interval, lambda: count.__setitem__(0, count[0] + 1))
        sim.run(until=horizon)
        # The exact count is ambiguous near multiples (floor itself is
        # float-sensitive) and repeated addition drifts; check the
        # defining inequalities with one-slot slack instead.
        n = count[0]
        assert (n - 1) * interval <= horizon * (1 + 1e-9)
        assert (n + 1) * interval >= horizon * (1 - 1e-9)


# Strategy biased toward same-instant collisions: few distinct times,
# all four tiers.
_collide_spec = st.tuples(
    st.sampled_from([0.0, 1.0, 1.0, 2.0, 2.0, 2.0, 5.0]),
    st.sampled_from([EventPriority.STATE, EventPriority.MONITOR,
                     EventPriority.CONTROL, EventPriority.REPORT]),
)


def _populate(sim, specs, log, reactions, cancels):
    """Schedule *specs*; event i appends to *log* and may react.

    ``reactions[i]`` (when present) schedules a same-instant event of
    the given tier from inside event i — the pattern run_batched()
    routes through its buckets.  ``cancels[i]`` (when present) cancels
    the handle of a later event j from inside event i.
    """
    handles = {}

    def make_action(i):
        def action():
            log.append(("fire", i, sim.now))
            rp = reactions.get(i)
            if rp is not None:
                sim.at(sim.now, lambda: log.append(("react", i, sim.now)),
                       priority=rp)
            j = cancels.get(i)
            if j is not None:
                handles[j].cancel()
        return action

    for i, (time, priority) in enumerate(specs):
        handles[i] = sim.at(time, make_action(i), priority=priority)
    return handles


class TestBatchedEquivalence:
    """run_batched() is event-for-event identical to run()."""

    @given(st.lists(_collide_spec, max_size=60), st.data())
    @settings(max_examples=200, deadline=None)
    def test_same_firing_sequence(self, specs, data):
        reactions = {}
        cancels = {}
        if specs:
            idx = st.integers(0, len(specs) - 1)
            for i in data.draw(st.sets(idx, max_size=10)):
                reactions[i] = data.draw(st.sampled_from(
                    [EventPriority.STATE, EventPriority.MONITOR,
                     EventPriority.CONTROL, EventPriority.REPORT]))
            for i in data.draw(st.sets(idx, max_size=10)):
                j = data.draw(idx)
                if j != i:
                    cancels[i] = j

        log_step, log_batch = [], []
        a = Simulator()
        _populate(a, specs, log_step, reactions, cancels)
        while a.step():
            pass
        b = Simulator()
        _populate(b, specs, log_batch, reactions, cancels)
        b.run_batched()
        assert log_batch == log_step
        assert b.events_fired == a.events_fired
        assert b.pending == a.pending == 0
        assert b.now == a.now

    @given(st.lists(_collide_spec, min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_tier_order_and_fifo_within_tier(self, specs):
        sim = Simulator()
        log = []
        _populate(sim, specs, log, {}, {})
        sim.run_batched()
        # (time, tier, insertion order) non-decreasing: tiers dispatch
        # STATE -> MONITOR -> CONTROL -> REPORT and FIFO inside a tier.
        keys = [(t, int(specs[i][1]), i) for kind, i, t in log]
        assert keys == sorted(keys)

    @given(st.lists(_collide_spec, min_size=2, max_size=40), st.data())
    @settings(max_examples=100, deadline=None)
    def test_in_batch_cancellation_counters(self, specs, data):
        # An event cancelling a later event in its own cohort: the
        # victim never fires, live drops to zero, and no tombstone is
        # left behind.
        idx = st.integers(0, len(specs) - 1)
        cancels = {}
        for i in data.draw(st.sets(idx, max_size=8)):
            j = data.draw(idx)
            if j != i:
                cancels[i] = j
        sim = Simulator()
        log = []
        _populate(sim, specs, log, {}, cancels)
        sim.run_batched()
        fired = {i for kind, i, t in log if kind == "fire"}
        for i, j in cancels.items():
            if i in fired:
                # The victim may only have fired before its canceller.
                if j in fired:
                    order = [x[1] for x in log]
                    assert order.index(j) < order.index(i)
        assert sim.pending == 0
        assert sim.heap_size == 0
        assert sim.events_fired == len(fired)
