"""Experiment ``exp-emergency``: RIKEN's emergency enforcement stack.

Compares three configurations on a power-spiky workload against a
tight limit: no enforcement, kills only, and the full RIKEN stack
(pre-run prediction gate + kills).  Shape claims: without enforcement
the limit is violated for a large fraction of time; kills restore
compliance at the price of lost jobs; the prediction gate removes most
of the kills.

Ablation (DESIGN.md): estimator-bias sweep shows how prediction error
converts into either vetoes (over-estimation) or kills
(under-estimation).
"""

from __future__ import annotations

import copy

from repro.analysis.report import render_columns
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import EmergencyPowerPolicy
from repro.workload.phases import COMPUTE_BOUND

from .conftest import bench_machine, bench_workload, write_artifact


def _jobs():
    jobs = bench_workload(seed=29, count=120, nodes=48, rate_per_hour=60.0)
    for job in jobs:
        job.profile = COMPUTE_BOUND
    return jobs


def _run(mode: str, bias: float = 1.0):
    machine = bench_machine(48)
    limit = machine.peak_power * 0.7
    policies = []
    if mode != "none":
        def biased(job, now, _machine=machine):
            node = _machine.nodes[0]
            per_node = node.idle_power + (
                (node.max_power - node.idle_power) * job.mean_power_intensity
            )
            return bias * job.nodes * per_node

        policies.append(EmergencyPowerPolicy(
            limit_watts=limit,
            grace_period=120.0,
            check_interval=60.0,
            gate_enabled=(mode == "full"),
            estimator=biased,
        ))
    sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                            copy.deepcopy(_jobs()), policies=policies,
                            seed=1, cap_watts_for_metrics=limit)
    result = sim.run()
    policy = policies[0] if policies else None
    return result.metrics, policy


def test_bench_emergency_modes(benchmark, artifact_dir):
    def sweep():
        return {mode: _run(mode) for mode in ("none", "kills", "full")}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for mode, (metrics, policy) in results.items():
        rows.append([
            mode,
            f"{metrics.cap_exceedance_fraction:.1%}",
            f"{metrics.jobs_killed}",
            f"{policy.vetoes if policy else 0}",
            f"{metrics.jobs_completed}",
        ])
    write_artifact(
        "exp-emergency",
        "EXP-EMERGENCY — RIKEN enforcement stack (limit = 70% of peak)\n\n"
        + render_columns(
            ["mode", "time>limit", "killed", "vetoes", "completed"], rows,
        ),
    )

    none, kills, full = (results[m][0] for m in ("none", "kills", "full"))
    # Unenforced: sustained violation.
    assert none.cap_exceedance_fraction > 0.10
    # Kills restore compliance but destroy work.
    assert kills.cap_exceedance_fraction < none.cap_exceedance_fraction
    assert kills.jobs_killed > 0
    # The prediction gate removes (almost all) kills.
    assert full.jobs_killed <= kills.jobs_killed * 0.5
    assert full.cap_exceedance_fraction <= 0.05


def test_bench_estimator_bias(benchmark, artifact_dir):
    """Ablation: prediction bias -> veto/kill balance."""
    biases = (0.6, 1.0, 1.6)

    def sweep():
        return {b: _run("full", bias=b) for b in biases}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{b:.1f}", f"{m.jobs_killed}", f"{p.vetoes}",
         f"{m.mean_wait:.0f}", f"{m.jobs_completed}"]
        for b, (m, p) in results.items()
    ]
    write_artifact(
        "exp-emergency-bias",
        "EXP-EMERGENCY — estimator bias ablation\n\n"
        + render_columns(
            ["bias", "killed", "vetoes", "wait[s]", "completed"], rows,
        ),
    )
    # Under-estimation (0.6x) lets hungry jobs slip past the gate:
    # at least as many kills as with unbiased estimates.
    assert results[0.6][0].jobs_killed >= results[1.0][0].jobs_killed
    # Over-estimation (1.6x) is more conservative: no more kills than
    # unbiased, and queueing delay does not improve.
    assert results[1.6][0].jobs_killed <= results[1.0][0].jobs_killed
    assert results[1.6][0].mean_wait >= results[1.0][0].mean_wait * 0.95
