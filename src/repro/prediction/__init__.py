"""Prediction substrate: job power, runtime, node temperature.

"A very important aspect for energy and power aware job schedulers
... is knowledge of an application's features before its execution"
(Section VI).  The surveyed approaches: tag/history averaging ([4],
[40]), machine-learning on submission features ([9], [41] — the
CINECA/Bologna line: "scalable power monitoring, used to predict
per-job power use and ... predictive models for node power and
temperature evolution"), and RIKEN's temperature-based pre-run
estimates.
"""

from .features import job_features, FEATURE_NAMES
from .power_predictor import (
    LinearPowerPredictor,
    PredictorMetrics,
    TagHistoryPredictor,
    evaluate_predictor,
)
from .runtime_predictor import UserRuntimePredictor
from .thermal_model import NodeThermalModel

__all__ = [
    "FEATURE_NAMES",
    "LinearPowerPredictor",
    "NodeThermalModel",
    "PredictorMetrics",
    "TagHistoryPredictor",
    "UserRuntimePredictor",
    "evaluate_predictor",
    "job_features",
]
