"""Compute node model with explicit power states.

A node is the unit of allocation and of power control in every
surveyed production deployment: KAUST caps individual nodes at 270 W,
Tokyo Tech boots/shuts down whole nodes to track a facility cap, CEA
shuts nodes down manually to shift budget between systems, Trinity sets
node-level caps through CAPMC.  The state machine below models the
life-cycle those policies exercise, including the boot and shutdown
latencies that make dynamic provisioning a non-trivial control problem
(Tokyo Tech enforces its cap only over a ~30-minute window precisely
because node state changes are slow).
"""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import NodeStateError, PowerCapError
from ..units import check_non_negative, check_positive


class NodeState(enum.Enum):
    """Power/availability state of a node."""

    #: Powered off; draws (almost) nothing; cannot run jobs.
    OFF = "off"
    #: Power-on sequence in progress; draws boot power; cannot run jobs.
    BOOTING = "booting"
    #: Powered on, no job assigned.
    IDLE = "idle"
    #: Powered on and executing (part of) a job.
    BUSY = "busy"
    #: Orderly power-off sequence in progress.
    SHUTTING_DOWN = "shutting_down"
    #: Administratively unavailable (maintenance/failure).
    DOWN = "down"


#: Legal state transitions.  Key: current state; value: allowed targets.
TRANSITIONS = {
    NodeState.OFF: {NodeState.BOOTING, NodeState.DOWN},
    NodeState.BOOTING: {NodeState.IDLE, NodeState.DOWN},
    NodeState.IDLE: {NodeState.BUSY, NodeState.SHUTTING_DOWN, NodeState.DOWN},
    NodeState.BUSY: {NodeState.IDLE, NodeState.DOWN},
    NodeState.SHUTTING_DOWN: {NodeState.OFF, NodeState.DOWN},
    NodeState.DOWN: {NodeState.OFF, NodeState.IDLE},
}

# Backwards-compatible alias (the table predates Machine.transition_bulk
# needing it from outside this module).
_TRANSITIONS = TRANSITIONS


class Node:
    """A single compute node.

    Parameters
    ----------
    node_id:
        Zero-based index, unique within its machine.
    cores:
        Number of CPU cores (allocation granularity is whole nodes, but
        cores scale the power model and feed utilization metrics).
    memory_gb:
        Installed memory; checked against job requests by allocators.
    idle_power:
        Power draw in watts when powered on but idle.
    max_power:
        Power draw in watts at full utilization and maximum frequency,
        *before* manufacturing variability is applied.
    boot_time / shutdown_time:
        Latency of power-state changes, seconds.
    off_power:
        Residual draw when off (BMC etc.); defaults to 5 W.
    """

    __slots__ = (
        "node_id",
        "cores",
        "memory_gb",
        "idle_power",
        "max_power",
        "boot_time",
        "shutdown_time",
        "off_power",
        "state",
        "frequency",
        "max_frequency",
        "min_frequency",
        "power_cap",
        "variability",
        "running_job",
        "cabinet_id",
        "pdu_id",
        "last_state_change",
        "idle_since",
        "power_listener",
    )

    def __init__(
        self,
        node_id: int,
        cores: int = 32,
        memory_gb: float = 128.0,
        idle_power: float = 100.0,
        max_power: float = 350.0,
        boot_time: float = 300.0,
        shutdown_time: float = 120.0,
        off_power: float = 5.0,
        max_frequency: float = 2.4e9,
        min_frequency: float = 1.2e9,
    ) -> None:
        if cores <= 0:
            raise NodeStateError(f"node needs >= 1 core, got {cores}")
        self.node_id = int(node_id)
        self.cores = int(cores)
        self.memory_gb = check_positive("memory_gb", memory_gb)
        self.idle_power = check_positive("idle_power", idle_power)
        self.max_power = check_positive("max_power", max_power)
        if self.max_power < self.idle_power:
            raise NodeStateError(
                f"max_power {max_power} < idle_power {idle_power} on node {node_id}"
            )
        self.boot_time = check_non_negative("boot_time", boot_time)
        self.shutdown_time = check_non_negative("shutdown_time", shutdown_time)
        self.off_power = check_non_negative("off_power", off_power)
        self.max_frequency = check_positive("max_frequency", max_frequency)
        self.min_frequency = check_positive("min_frequency", min_frequency)
        if self.min_frequency > self.max_frequency:
            raise NodeStateError("min_frequency > max_frequency")

        self.state = NodeState.IDLE
        self.frequency = self.max_frequency
        self.power_cap: Optional[float] = None
        self.variability = 1.0
        self.running_job: Optional[str] = None
        self.cabinet_id: Optional[int] = None
        self.pdu_id: Optional[str] = None
        self.last_state_change = 0.0
        self.idle_since: Optional[float] = 0.0
        #: Power-accounting hook: called with ``node_id`` whenever a
        #: field that determines the node's power draw changes (state,
        #: cap, frequency).  Installed by the owning simulation so its
        #: running machine-watts sum can be updated by delta instead of
        #: re-summing every node; None outside a simulation.
        self.power_listener: Optional[callable] = None

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def transition(self, target: NodeState, time: float) -> None:
        """Move to *target* state, validating legality.

        Tracks ``idle_since`` so idle-shutdown policies (Tokyo Tech,
        Mämmelä) can find long-idle nodes.
        """
        allowed = TRANSITIONS[self.state]
        if target not in allowed:
            raise NodeStateError(
                f"node {self.node_id}: illegal transition "
                f"{self.state.value} -> {target.value}"
            )
        self.state = target
        self.last_state_change = time
        self.idle_since = time if target is NodeState.IDLE else None
        if self.power_listener is not None:
            self.power_listener(self.node_id)

    @property
    def is_available(self) -> bool:
        """True when the node can accept a new job right now."""
        return self.state is NodeState.IDLE

    @property
    def is_on(self) -> bool:
        """True when the node consumes operational power."""
        return self.state in (NodeState.IDLE, NodeState.BUSY, NodeState.BOOTING,
                              NodeState.SHUTTING_DOWN)

    # ------------------------------------------------------------------
    # Job binding
    # ------------------------------------------------------------------
    def assign(self, job_id: str, time: float) -> None:
        """Bind a job to this node (IDLE -> BUSY)."""
        if self.state is not NodeState.IDLE:
            raise NodeStateError(
                f"node {self.node_id} cannot accept job {job_id}: "
                f"state={self.state.value}"
            )
        self.running_job = job_id
        self.transition(NodeState.BUSY, time)

    def release(self, time: float) -> None:
        """Unbind the running job (BUSY -> IDLE)."""
        if self.state is not NodeState.BUSY:
            raise NodeStateError(
                f"node {self.node_id} has no job to release (state={self.state.value})"
            )
        self.running_job = None
        self.transition(NodeState.IDLE, time)

    # ------------------------------------------------------------------
    # Power control
    # ------------------------------------------------------------------
    @property
    def effective_max_power(self) -> float:
        """Max power including manufacturing variability."""
        return self.max_power * self.variability

    @property
    def cap_floor(self) -> float:
        """Lowest enforceable cap: idle power (caps below are rejected)."""
        return self.idle_power

    def set_power_cap(self, cap: Optional[float]) -> None:
        """Set (or clear, with ``None``) the node power cap in watts.

        Mirrors the control range of real mechanisms (RAPL / CAPMC):
        a cap below idle power cannot be enforced by frequency control
        alone and is rejected.
        """
        if cap is None:
            self.power_cap = None
        else:
            if cap < self.cap_floor:
                raise PowerCapError(
                    f"node {self.node_id}: cap {cap:.1f} W below enforceable "
                    f"floor {self.cap_floor:.1f} W"
                )
            self.power_cap = float(cap)
        if self.power_listener is not None:
            self.power_listener(self.node_id)

    def set_frequency(self, frequency: float) -> None:
        """Set the operating frequency, clamped to the DVFS range."""
        self.frequency = min(self.max_frequency, max(self.min_frequency, frequency))
        if self.power_listener is not None:
            self.power_listener(self.node_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Node({self.node_id}, state={self.state.value}, "
            f"cap={self.power_cap}, job={self.running_job})"
        )
