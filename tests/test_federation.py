"""Tests for the federated nine-center simulation layer.

Campaign tests run deliberately tiny fleets (two small centers, a few
hours) so tier-1 stays fast; the full nine-site multi-day campaign
lives in ``benchmarks/test_bench_federation.py``.
"""

import math

import pytest

from repro.centers import CENTER_MARKETS, center_market, center_slugs
from repro.errors import ConfigurationError, SurveyError
from repro.federation import (
    FederationCampaign,
    GlobalBroker,
    SiteConfig,
    SiteDirective,
    SiteReport,
    build_site_simulation,
    federation_fingerprint,
    pareto_front,
)
from repro.grid import ElectricityPriceSchedule, RegionMarket
from repro.policies import SiteBudgetPolicy
from repro.state import sim_fingerprint
from repro.units import HOUR


def _report(slug, demand, floor=1000.0, ceiling=10000.0, epoch=0):
    return SiteReport(
        slug=slug,
        epoch=epoch,
        epoch_start=0.0,
        epoch_end=6 * HOUR,
        fingerprint="f" * 8,
        power_times=(),
        power_watts=(),
        energy_joules=0.0,
        demand_watts=demand,
        backlog_jobs=0,
        backlog_nodes=0,
        running_jobs=0,
        completed_jobs=0,
        vetoes=0,
        floor_watts=floor,
        ceiling_watts=ceiling,
    )


def _flat_market(price, carbon=0.3, **kwargs):
    return RegionMarket(
        name=f"m{price}",
        utc_offset_hours=0.0,
        tariff=ElectricityPriceSchedule.flat(price),
        carbon=ElectricityPriceSchedule.flat(carbon),
        **kwargs,
    )


class TestMarketsRegistry:
    def test_every_center_has_a_market(self):
        assert set(CENTER_MARKETS) == set(center_slugs())

    def test_center_market_lookup(self):
        market = center_market("cea")
        assert market.name == "fr-idf"
        with pytest.raises(SurveyError):
            center_market("unknown")

    def test_timezones_stagger_peaks(self):
        # At simulation t=0 (UTC midnight) Japan is mid-morning while
        # New Mexico is mid-afternoon of the previous day: the broker
        # must see genuinely different instantaneous prices.
        prices = {s: m.price_at(0.0) for s, m in CENTER_MARKETS.items()}
        assert len(set(prices.values())) > 3


class TestBrokerAllocation:
    def test_floors_always_granted(self):
        broker = GlobalBroker(
            {"a": _flat_market(0.1), "b": _flat_market(0.3)},
            total_budget_watts=3000.0,
        )
        grants = broker.allocate(
            {"a": _report("a", 9000.0), "b": _report("b", 9000.0)},
            0.0,
            6 * HOUR,
        )
        assert grants["a"] >= 1000.0
        assert grants["b"] >= 1000.0
        assert sum(grants.values()) == pytest.approx(3000.0)

    def test_cheapest_region_covered_first(self):
        broker = GlobalBroker(
            {"cheap": _flat_market(0.05), "dear": _flat_market(0.40)},
            total_budget_watts=8000.0,
        )
        grants = broker.allocate(
            {
                "cheap": _report("cheap", 7000.0),
                "dear": _report("dear", 7000.0),
            },
            0.0,
            6 * HOUR,
        )
        # cheap: floor 1000 -> demand 7000; dear keeps only its floor.
        assert grants["cheap"] == pytest.approx(7000.0)
        assert grants["dear"] == pytest.approx(1000.0)

    def test_spare_headroom_goes_to_cheapest(self):
        broker = GlobalBroker(
            {"cheap": _flat_market(0.05), "dear": _flat_market(0.40)},
            total_budget_watts=15000.0,
        )
        grants = broker.allocate(
            {
                "cheap": _report("cheap", 2000.0),
                "dear": _report("dear", 2000.0),
            },
            0.0,
            6 * HOUR,
        )
        # Demands covered (2000 each), then the remainder fills cheap
        # to its 10 kW ceiling before dear sees any headroom.
        assert grants["cheap"] == pytest.approx(10000.0)
        assert grants["dear"] == pytest.approx(5000.0)

    def test_carbon_weight_flips_ordering(self):
        markets = {
            "dirty": _flat_market(0.10, carbon=1.0),
            "clean": _flat_market(0.12, carbon=0.05),
        }
        reports = {
            "dirty": _report("dirty", 9000.0),
            "clean": _report("clean", 9000.0),
        }
        cost_only = GlobalBroker(markets, total_budget_watts=10000.0)
        carbon_aware = GlobalBroker(
            markets, total_budget_watts=10000.0, carbon_weight=0.5
        )
        g1 = cost_only.allocate(reports, 0.0, HOUR)
        g2 = carbon_aware.allocate(reports, 0.0, HOUR)
        assert g1["dirty"] > g1["clean"]
        assert g2["clean"] > g2["dirty"]

    def test_dr_limit_caps_ceiling(self):
        from repro.grid import DemandResponseEvent

        market = _flat_market(
            0.05, dr_events=(DemandResponseEvent(0.0, 12 * HOUR, 3000.0),)
        )
        broker = GlobalBroker({"a": market}, total_budget_watts=50000.0)
        grants = broker.allocate(
            {"a": _report("a", 9000.0)}, 0.0, 6 * HOUR
        )
        assert grants["a"] == pytest.approx(3000.0)

    def test_sub_floor_budget_scales_pro_rata(self):
        broker = GlobalBroker(
            {"a": _flat_market(0.1), "b": _flat_market(0.2)},
            total_budget_watts=1000.0,
        )
        grants = broker.allocate(
            {
                "a": _report("a", 5000.0, floor=1000.0),
                "b": _report("b", 5000.0, floor=3000.0),
            },
            0.0,
            HOUR,
        )
        assert grants["a"] == pytest.approx(250.0)
        assert grants["b"] == pytest.approx(750.0)

    def test_unknown_site_rejected(self):
        broker = GlobalBroker({"a": _flat_market(0.1)})
        with pytest.raises(ConfigurationError):
            broker.allocate({"zz": _report("zz", 100.0)}, 0.0, HOUR)

    def test_history_recorded(self):
        broker = GlobalBroker({"a": _flat_market(0.1)}, budget_fraction=0.5)
        broker.allocate({"a": _report("a", 100.0, epoch=3)}, 0.0, HOUR)
        assert len(broker.history) == 1
        assert broker.history[0].epoch == 4
        assert broker.history[0].total_budget_watts == pytest.approx(5000.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            GlobalBroker({})
        with pytest.raises(ConfigurationError):
            GlobalBroker({"a": _flat_market(0.1)}, budget_fraction=0.0)
        with pytest.raises(ConfigurationError):
            GlobalBroker({"a": _flat_market(0.1)}, total_budget_watts=-5.0)
        with pytest.raises(ConfigurationError):
            GlobalBroker({"a": _flat_market(0.1)}, carbon_weight=-1.0)


class TestProtocolValidation:
    def test_directive_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            SiteDirective(epoch=-1)
        with pytest.raises(ConfigurationError):
            SiteDirective(epoch=0, budget_watts=0.0)

    def test_site_config_sorts_builder_kwargs(self):
        cfg = SiteConfig(
            slug="cea", builder_kwargs=(("nodes", 8), ("maintenance_hours", 1))
        )
        assert cfg.builder_kwargs[0][0] == "maintenance_hours"

    def test_pareto_front(self):
        rows = [
            {"cost": 1.0, "slow": 5.0},
            {"cost": 2.0, "slow": 2.0},
            {"cost": 3.0, "slow": 3.0},  # dominated by row 1
            {"cost": 0.5, "slow": 9.0},
        ]
        assert pareto_front(rows, ("cost", "slow")) == [0, 1, 3]

    def test_federation_fingerprint_orders_sites(self):
        r1 = _report("a", 1.0)
        r2 = _report("b", 1.0)
        fp = federation_fingerprint({"a": [r1], "b": [r2]})
        assert fp == federation_fingerprint({"b": [r2], "a": [r1]})
        assert fp != federation_fingerprint({"a": [r1]})


class TestSiteBudgetPolicy:
    def _sim(self, limit=math.inf):
        config = SiteConfig(
            slug="cea",
            seed=2,
            horizon=4 * HOUR,
            builder_kwargs=(("nodes", 16), ("shifted_nodes", 4)),
        )
        sim_obj = build_site_simulation(config).simulation
        policy = next(
            p for p in sim_obj.policies if isinstance(p, SiteBudgetPolicy)
        )
        policy.limit_watts = limit
        return sim_obj, policy

    def test_infinite_budget_is_inert(self):
        sim_obj, policy = self._sim()
        sim_obj.run(until=4 * HOUR)
        assert policy.vetoes == 0
        assert all(n.power_cap is None for n in sim_obj.machine.nodes)

    def test_tight_budget_vetoes_and_caps(self):
        sim_obj, policy = self._sim(limit=2000.0)
        sim_obj.run(until=4 * HOUR)
        assert policy.vetoes > 0
        capped = [n for n in sim_obj.machine.nodes if n.power_cap is not None]
        assert capped

    def test_lifting_budget_clears_caps(self):
        sim_obj, policy = self._sim(limit=2000.0)
        sim_obj.prepare()
        sim_obj.sim.run(until=2 * HOUR)
        assert any(n.power_cap is not None for n in sim_obj.machine.nodes)
        policy.limit_watts = math.inf
        sim_obj.sim.run(until=4 * HOUR)
        assert all(n.power_cap is None for n in sim_obj.machine.nodes)

    def test_validation(self):
        with pytest.raises(ValueError):
            SiteBudgetPolicy(limit_watts=0.0)


def _tiny_sites(horizon):
    return [
        SiteConfig(
            slug="cea",
            seed=1,
            horizon=horizon,
            builder_kwargs=(("nodes", 24), ("shifted_nodes", 4)),
        ),
        SiteConfig(
            slug="stfc",
            seed=1,
            horizon=horizon,
            builder_kwargs=(("nodes", 16),),
        ),
    ]


class TestFederationCampaign:
    HORIZON = 4 * HOUR
    EPOCH = 2 * HOUR

    def _campaign(self, **kwargs):
        kwargs.setdefault("sites", _tiny_sites(self.HORIZON))
        kwargs.setdefault("horizon", self.HORIZON)
        kwargs.setdefault("epoch_seconds", self.EPOCH)
        return FederationCampaign(**kwargs)

    def test_deterministic_across_worker_counts(self):
        # The determinism contract: shipping site state between
        # processes as RPST bytes must not change a single bit of the
        # trajectory, so serial and process-sharded campaigns agree.
        r1 = self._campaign(workers=1).run()
        r2 = self._campaign(workers=2).run()
        assert r1.fingerprint == r2.fingerprint
        for slug in r1.sites:
            assert r1.sites[slug].fingerprints == r2.sites[slug].fingerprints
            assert r1.sites[slug].cost == pytest.approx(r2.sites[slug].cost)

    def test_chunked_equals_continuous(self):
        # Epoch-chunked advance through snapshots must land on the same
        # state as one uninterrupted run of the identical stack.
        result = self._campaign(workers=1).run()
        config = _tiny_sites(self.HORIZON)[0]
        sim_obj = build_site_simulation(config).simulation
        sim_obj.prepare()
        sim_obj.sim.run(until=self.HORIZON)
        assert sim_fingerprint(sim_obj) == result.sites["cea"].fingerprints[-1]

    def test_broker_steers_budgets(self):
        broker = GlobalBroker(CENTER_MARKETS, budget_fraction=0.5)
        result = self._campaign(broker=broker, workers=1).run()
        # One allocation per non-final epoch.
        assert len(broker.history) == result.epochs - 1
        # Directives after epoch 0 carry finite budgets.
        for slug, directives in result.directives.items():
            assert math.isinf(directives[0].budget_watts)
            assert all(
                math.isfinite(d.budget_watts) for d in directives[1:]
            )

    def test_broker_off_directives_stay_infinite(self):
        result = self._campaign(workers=1).run()
        for directives in result.directives.values():
            assert all(math.isinf(d.budget_watts) for d in directives)

    def test_final_epoch_carries_metrics(self):
        result = self._campaign(workers=1).run()
        for slug, reports in result.reports.items():
            assert reports[-1].metrics is not None
            assert "mean_bounded_slowdown" in reports[-1].metrics
            assert all(r.metrics is None for r in reports[:-1])

    def test_power_series_tile_without_overlap(self):
        result = self._campaign(workers=1).run()
        for reports in result.reports.values():
            for left, right in zip(reports, reports[1:]):
                # Consecutive epochs share exactly the boundary sample.
                assert left.power_times[-1] == right.power_times[0]

    def test_fork_site_leaves_primary_untouched(self):
        campaign = self._campaign(workers=1, retain_snapshots=True)
        result = campaign.run()
        fork = campaign.fork_site("cea", 0, budget_watts=3000.0)
        # The fork saw a different trajectory...
        assert fork.fingerprint != result.sites["cea"].fingerprints[1]
        # ...but is itself reproducible, and the primary is unchanged.
        assert campaign.fork_site(
            "cea", 0, budget_watts=3000.0
        ).fingerprint == fork.fingerprint
        rerun = self._campaign(workers=1).run()
        assert rerun.fingerprint == result.fingerprint

    def test_score_budgets_returns_curve(self):
        campaign = self._campaign(workers=1, retain_snapshots=True)
        campaign.run()
        rows = campaign.score_budgets("cea", 0, [2000.0, float("inf")])
        assert len(rows) == 2
        assert rows[0][0] == 2000.0
        assert rows[1][1] >= 0.0

    def test_fork_without_retention_rejected(self):
        campaign = self._campaign(workers=1)
        campaign.run()
        with pytest.raises(ConfigurationError):
            campaign.fork_site("cea", 0)

    def test_summary_and_totals(self):
        result = self._campaign(workers=1).run()
        summary = result.summary()
        assert summary["cost"] == pytest.approx(result.total_cost())
        assert summary["cost"] > 0
        assert summary["energy_joules"] > 0
        assert result.total_carbon_kg() > 0

    def test_configuration_validation(self):
        with pytest.raises(ConfigurationError):
            FederationCampaign(sites=[], horizon=HOUR, epoch_seconds=HOUR)
        with pytest.raises(ConfigurationError):
            FederationCampaign(
                sites=_tiny_sites(HOUR) + _tiny_sites(HOUR),
                horizon=HOUR,
                epoch_seconds=HOUR,
            )
        with pytest.raises(ConfigurationError):
            FederationCampaign(horizon=0.0)
        market = {"cea": _flat_market(0.1)}
        with pytest.raises(ConfigurationError):
            FederationCampaign(
                sites=_tiny_sites(HOUR), markets=market,
                horizon=HOUR, epoch_seconds=HOUR,
            )
