"""Property-based tests: power model and budget invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Node
from repro.errors import BudgetError
from repro.power import NodePowerModel, PowerBudget

node_params = st.tuples(
    st.floats(min_value=10.0, max_value=500.0),   # idle
    st.floats(min_value=0.0, max_value=1000.0),   # dynamic span
    st.floats(min_value=0.5e9, max_value=2.0e9),  # f_min
    st.floats(min_value=0.1e9, max_value=2.5e9),  # f_span
)


def build_node(params):
    idle, dyn, f_min, f_span = params
    return Node(0, idle_power=idle, max_power=idle + dyn,
                min_frequency=f_min, max_frequency=f_min + f_span)


class TestPowerModelProperties:
    @given(node_params,
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.5, max_value=3.0))
    def test_busy_power_within_physical_range(self, params, util, sens, alpha):
        node = build_node(params)
        node.assign("j", 0.0)
        model = NodePowerModel(alpha=alpha)
        sample = model.operating_point(node, util, sens)
        assert node.idle_power - 1e-9 <= sample.watts
        assert sample.watts <= node.effective_max_power + 1e-9
        assert 0.0 < sample.speed <= 1.0
        assert 0.0 <= sample.frequency_ratio <= 1.0

    @given(node_params, st.floats(min_value=0.0, max_value=1.0))
    def test_power_monotone_in_utilization(self, params, sens):
        node = build_node(params)
        node.assign("j", 0.0)
        model = NodePowerModel()
        watts = [model.operating_point(node, u, sens).watts
                 for u in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(a <= b + 1e-9 for a, b in zip(watts, watts[1:]))

    @given(node_params,
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=0.0, max_value=1.0))
    def test_cap_respected_or_flagged(self, params, util, cap_frac):
        node = build_node(params)
        node.assign("j", 0.0)
        cap = node.idle_power + cap_frac * (node.max_power - node.idle_power)
        node.set_power_cap(cap)
        model = NodePowerModel()
        sample = model.operating_point(node, util, 1.0)
        assert sample.watts <= cap + 1e-6 or sample.cap_violated

    @given(node_params, st.floats(min_value=0.0, max_value=1.0))
    def test_speed_monotone_in_frequency(self, params, sens):
        node = build_node(params)
        node.assign("j", 0.0)
        model = NodePowerModel()
        speeds = []
        for frac in (0.0, 0.3, 0.6, 1.0):
            node.set_frequency(
                node.min_frequency
                + frac * (node.max_frequency - node.min_frequency)
            )
            speeds.append(model.operating_point(node, 1.0, sens).speed)
        assert all(a <= b + 1e-9 for a, b in zip(speeds, speeds[1:]))


class TestBudgetProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=50))
    def test_reserve_release_never_negative(self, amounts):
        budget = PowerBudget("b", 1000.0)
        reserved = 0.0
        for amount in amounts:
            if budget.can_reserve(amount):
                budget.reserve(amount)
                reserved += amount
            else:
                with pytest.raises(BudgetError):
                    budget.reserve(amount)
            assert 0.0 <= budget.headroom <= 1000.0 + 1e-6
        budget.validate()
        assert budget.reserved == pytest.approx(reserved)

    @given(st.lists(st.floats(min_value=1.0, max_value=400.0),
                    min_size=1, max_size=10))
    @settings(max_examples=50)
    def test_subdivision_never_exceeds_parent(self, limits):
        root = PowerBudget("root", 1000.0)
        created = 0
        for i, limit in enumerate(limits):
            if limit <= root.headroom:
                root.subdivide(f"c{i}", limit)
                created += 1
            else:
                with pytest.raises(BudgetError):
                    root.subdivide(f"c{i}", limit)
        root.validate()
        assert len(root.children) == created
