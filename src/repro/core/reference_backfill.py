"""Reference (seed) backfilling implementations — the executable spec.

These are the original delta-dict implementations of EASY and
conservative backfilling, kept verbatim as the behavioural contract
for the :class:`~repro.core.profile.FreeNodeProfile`-based rewrites in
:mod:`repro.core.backfill`.  They are asymptotically naive —
conservative re-sorts and re-scans the whole profile per candidate
start, O(P·T³) at queue depth P — which is exactly why production code
no longer uses them.  They exist for two purposes:

* the property-based equivalence tests assert, decision for decision,
  that the fast schedulers return what these return;
* the deep-queue benchmarks measure the speedup against them.

Do not "fix" or optimize this module: any intended behaviour change
belongs in :mod:`repro.core.backfill`, with this spec updated in the
same commit and the equivalence tests re-run.
"""

from __future__ import annotations

from typing import List, Tuple

from .scheduler import Scheduler, SchedulingContext, StartDecision


def _release_profile(ctx: SchedulingContext) -> List[Tuple[float, int]]:
    """Sorted (time, nodes_released) list from running jobs' estimates."""
    events: dict = {}
    for info in ctx.running:
        events[info.expected_end] = events.get(info.expected_end, 0) + len(info.node_ids)
    return sorted(events.items())


def _earliest_fit(
    free_now: int,
    releases: List[Tuple[float, int]],
    needed: int,
    now: float,
) -> float:
    """Earliest time *needed* nodes are simultaneously free.

    Walks the (monotone non-decreasing) cumulative release profile.
    Returns ``now`` when the job fits immediately; +inf when it never
    fits (needed exceeds capacity horizon — caller guards that).
    """
    if needed <= free_now:
        return now
    free = free_now
    for time, released in releases:
        free += released
        if free >= needed:
            return time
    return float("inf")


class ReferenceEasyBackfillScheduler(Scheduler):
    """Seed EASY backfilling: one reservation for the head job."""

    name = "easy-reference"

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        decisions: List[StartDecision] = []
        pool = list(ctx.available)
        pending = list(ctx.pending)

        # Phase 1: start jobs in order while they fit and are admitted.
        blocked_idx = None
        for i, job in enumerate(pending):
            if job.nodes <= len(pool) and ctx.admit(job):
                nodes = self._allocate(ctx, job, pool)
                ids = {n.node_id for n in nodes}
                pool = [n for n in pool if n.node_id not in ids]
                decisions.append(StartDecision(job, nodes))
            else:
                blocked_idx = i
                break
        if blocked_idx is None:
            return decisions

        head = pending[blocked_idx]

        # Phase 2: compute the head's shadow time and spare nodes.
        releases = _release_profile(ctx)
        # Nodes already granted this round count as busy until their
        # walltime; fold them into the release profile.
        extra: dict = {}
        for d in decisions:
            end = ctx.now + d.job.walltime_request
            extra[end] = extra.get(end, 0) + len(d.nodes)
        merged = sorted(
            (dict(releases) | {}).items()
        )  # copy of releases as list
        for end, cnt in extra.items():
            merged.append((end, cnt))
        merged.sort()

        shadow = _earliest_fit(len(pool), merged, head.nodes, ctx.now)
        if shadow == float("inf"):
            # Head can never fit (larger than capacity horizon or only
            # blocked by admission) — backfill without a shadow guard is
            # unsafe for the former; guard with capacity check:
            if head.nodes > ctx.usable_node_count:
                shadow = float("inf")  # truly never; others may proceed
            else:
                # Blocked by admission (e.g. power): be conservative,
                # allow only jobs that fit in currently spare nodes.
                shadow = ctx.now

        # Spare nodes at shadow time: free nodes at shadow minus head's.
        free_at_shadow = len(pool)
        for time, released in merged:
            if time <= shadow:
                free_at_shadow += released
        spare = max(0, free_at_shadow - head.nodes)

        # Phase 3: backfill later jobs.
        for job in pending[blocked_idx + 1 :]:
            if job.nodes > len(pool) or not ctx.admit(job):
                continue
            ends_before_shadow = ctx.now + job.walltime_request <= shadow
            fits_spare = job.nodes <= spare
            if ends_before_shadow or fits_spare:
                nodes = self._allocate(ctx, job, pool)
                ids = {n.node_id for n in nodes}
                pool = [n for n in pool if n.node_id not in ids]
                if not ends_before_shadow:
                    spare -= job.nodes
                decisions.append(StartDecision(job, nodes))
        return decisions


class ReferenceConservativeBackfillScheduler(Scheduler):
    """Seed conservative backfilling: delta-dict profile, full rescans."""

    name = "conservative-reference"

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        decisions: List[StartDecision] = []
        pool = list(ctx.available)

        # Free-node profile as step function: list of (time, delta).
        deltas: dict = {}
        for info in ctx.running:
            deltas[info.expected_end] = deltas.get(info.expected_end, 0) + len(info.node_ids)

        def profile_points() -> List[float]:
            return sorted(set([ctx.now] + list(deltas.keys())))

        def free_at(t: float, free_now: int) -> int:
            free = free_now
            for time, delta in deltas.items():
                if time <= t:
                    free += delta
            return free

        free_now = len(pool)
        capacity = ctx.usable_node_count

        for job in ctx.pending:
            if job.nodes > capacity:
                continue  # can never run; do not reserve
            admitted = ctx.admit(job)
            # Earliest start: first profile point where the job fits for
            # its whole duration.
            start = None
            for candidate in profile_points():
                if candidate < ctx.now:
                    continue
                # Fits at candidate and throughout [candidate, end)?
                fits = True
                end = candidate + job.walltime_request
                for point in profile_points():
                    if candidate <= point < end:
                        if free_at(point, free_now) < job.nodes:
                            fits = False
                            break
                if fits and free_at(candidate, free_now) >= job.nodes:
                    start = candidate
                    break
            if start is None:
                # No profile point fits the job (e.g. part of the
                # machine is booting, so free nodes never reach its
                # size).  The profile is constant after its last point,
                # so search forward from there: if the job fits at the
                # tail it can be soundly reserved, otherwise no sound
                # reservation exists — leave the job unreserved (it is
                # retried on later passes as nodes come up) instead of
                # forcing one that drives the free-node profile
                # negative and delays every reservation after it.
                tail = max(profile_points())
                if free_at(tail, free_now) >= job.nodes:
                    start = tail
                else:
                    continue

            if start <= ctx.now and admitted and job.nodes <= len(pool):
                nodes = self._allocate(ctx, job, pool)
                ids = {n.node_id for n in nodes}
                pool = [n for n in pool if n.node_id not in ids]
                free_now -= job.nodes
                end = ctx.now + job.walltime_request
                deltas[end] = deltas.get(end, 0) + job.nodes
                decisions.append(StartDecision(job, nodes))
            else:
                # Reserve: subtract the job's nodes over [start, end).
                start = max(start, ctx.now)
                end = start + job.walltime_request
                deltas[start] = deltas.get(start, 0) - job.nodes
                deltas[end] = deltas.get(end, 0) + job.nodes
        return decisions
