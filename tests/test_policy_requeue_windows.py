"""Tests for requeue-after-kill and reserved job windows."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.errors import PolicyError, SchedulingError
from repro.policies import (
    EmergencyPowerPolicy,
    RequeuePolicy,
    ReservedWindow,
    ReservedWindowPolicy,
)
from repro.units import DAY, HOUR
from repro.workload import JobState
from repro.workload.phases import COMPUTE_BOUND
from tests.conftest import make_job


def machine16():
    return Machine(MachineSpec(name="m", nodes=16,
                               idle_power=100.0, max_power=400.0))


class KillAt(object):
    """Helper policy-free killer via direct scheduling."""

    @staticmethod
    def arm(sim, job_id, at, reason="power emergency"):
        sim.sim.at(at, lambda: sim.kill_job(job_id, reason))


class TestRequeue:
    def test_killed_job_requeued_and_completes(self):
        machine = machine16()
        job = make_job(work=1000.0, walltime=3000.0)
        policy = RequeuePolicy(max_retries=2, delay=30.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        KillAt.arm(sim, job.job_id, at=200.0)
        result = sim.run()
        assert job.state is JobState.KILLED
        assert policy.requeued == 1
        copies = [j for j in result.jobs if j.job_id == "j1-r1"]
        assert len(copies) == 1
        assert copies[0].state is JobState.COMPLETED
        # Without checkpoints the copy redoes all the work.
        assert copies[0].work_seconds == pytest.approx(1000.0)
        assert copies[0].submit_time == pytest.approx(230.0)

    def test_checkpointing_salvages_progress(self):
        machine = machine16()
        job = make_job(work=1000.0, walltime=3000.0)
        policy = RequeuePolicy(max_retries=1, checkpoint_interval=100.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        KillAt.arm(sim, job.job_id, at=450.0)
        result = sim.run()
        copy = next(j for j in result.jobs if j.job_id == "j1-r1")
        # 450 s done at full speed -> checkpoint at 400 s.
        assert copy.work_seconds == pytest.approx(600.0)
        assert policy.work_salvaged == pytest.approx(400.0)

    def test_retry_limit_respected(self):
        machine = machine16()
        job = make_job(work=5000.0, walltime=20_000.0)
        policy = RequeuePolicy(max_retries=1, delay=10.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        # Kill the original AND the first retry.
        KillAt.arm(sim, "j1", at=100.0)
        KillAt.arm(sim, "j1-r1", at=300.0)
        result = sim.run()
        ids = sorted(j.job_id for j in result.jobs)
        assert ids == ["j1", "j1-r1"]  # no -r2
        assert policy.requeued == 1

    def test_reason_filter(self):
        machine = machine16()
        job = make_job(work=1000.0, walltime=3000.0)
        policy = RequeuePolicy(reasons=("power",))
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        KillAt.arm(sim, job.job_id, at=100.0, reason="node failure")
        result = sim.run()
        assert policy.requeued == 0
        assert len(result.jobs) == 1

    def test_completed_jobs_not_requeued(self):
        machine = machine16()
        job = make_job(work=100.0, walltime=500.0)
        policy = RequeuePolicy()
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        result = sim.run()
        assert policy.requeued == 0
        assert len(result.jobs) == 1

    def test_duplicate_resubmit_rejected(self):
        machine = machine16()
        sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                                [make_job()])
        with pytest.raises(SchedulingError):
            sim.resubmit_job(make_job())

    def test_metrics_count_requeued_copies(self):
        machine = machine16()
        job = make_job(work=1000.0, walltime=3000.0)
        policy = RequeuePolicy(max_retries=1)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        KillAt.arm(sim, job.job_id, at=100.0)
        result = sim.run()
        assert result.metrics.jobs_submitted == 2
        assert result.metrics.jobs_completed == 1
        assert result.metrics.jobs_killed == 1

    def test_integration_with_emergency_policy(self):
        # The RIKEN loop with the gate disabled: two jobs that do not
        # fit together produce a kill/requeue storm.  The retry limit
        # bounds the storm, one lineage wins, and the run terminates —
        # a faithful rendition of why the pre-run gate matters.
        machine = machine16()
        jobs = [make_job(job_id=f"j{i}", nodes=8, work=2000.0,
                         walltime=20_000.0, profile=COMPUTE_BOUND,
                         submit=float(i))
                for i in range(2)]
        # One 8-node job draws 8x400 + 8x100 idle = 4000 W; two draw
        # 6400 W.  A 4800 W limit admits one but not both.
        emergency = EmergencyPowerPolicy(
            limit_watts=machine.peak_power * 0.75,
            grace_period=120.0, check_interval=60.0, gate_enabled=False,
        )
        requeue = RequeuePolicy(max_retries=2, reasons=("power",),
                                delay=120.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[emergency, requeue])
        result = sim.run()
        assert emergency.kills >= 1
        assert requeue.requeued >= 1
        # The retry limit bounds the storm: at most 3 instances per base.
        assert len(result.jobs) <= 6
        # At least one lineage completes its work.
        completed_bases = {
            j.job_id.split("-r")[0]
            for j in result.jobs if j.state is JobState.COMPLETED
        }
        assert completed_bases
        # Every instance is terminal (the run did not hang).
        assert all(j.is_terminal for j in result.jobs)

    def test_gate_prevents_the_requeue_storm(self):
        # Same scenario with the prediction gate ON: the second job is
        # vetoed instead of killed; both lineages finish with zero
        # kills — the quantitative argument for RIKEN's pre-run
        # estimates.
        machine = machine16()
        jobs = [make_job(job_id=f"j{i}", nodes=8, work=2000.0,
                         walltime=20_000.0, profile=COMPUTE_BOUND,
                         submit=float(i))
                for i in range(2)]
        emergency = EmergencyPowerPolicy(
            limit_watts=machine.peak_power * 0.75,
            grace_period=120.0, check_interval=60.0, gate_enabled=True,
        )
        requeue = RequeuePolicy(max_retries=2, reasons=("power",))
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[emergency, requeue])
        result = sim.run()
        assert emergency.kills == 0
        assert requeue.requeued == 0
        assert result.metrics.jobs_completed == 2


class TestReservedWindows:
    def test_window_activity_recurrence(self):
        window = ReservedWindow(start=2 * DAY, duration=3 * DAY,
                                period=30 * DAY)
        assert not window.active_at(1 * DAY)
        assert window.active_at(2 * DAY)
        assert window.active_at(4.9 * DAY)
        assert not window.active_at(5.1 * DAY)
        # Next month.
        assert window.active_at(32.5 * DAY)
        assert not window.active_at(36 * DAY)

    def test_large_jobs_wait_for_window(self):
        machine = machine16()
        window = ReservedWindow(start=6 * HOUR, duration=6 * HOUR,
                                period=2 * DAY)
        policy = ReservedWindowPolicy(window, min_nodes=8)
        large = make_job(job_id="large", nodes=8, work=600.0,
                         walltime=3000.0)
        small = make_job(job_id="small", nodes=2, work=600.0,
                         walltime=3000.0, submit=1.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                                [large, small], policies=[policy])
        sim.run()
        assert small.start_time < 6 * HOUR
        assert large.start_time >= 6 * HOUR
        assert policy.held_large > 0

    def test_exclusive_window_holds_small_jobs(self):
        machine = machine16()
        window = ReservedWindow(start=0.0, duration=6 * HOUR,
                                period=2 * DAY)
        policy = ReservedWindowPolicy(window, min_nodes=8, exclusive=True)
        small = make_job(job_id="small", nodes=2, work=600.0,
                         walltime=3000.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [small],
                                policies=[policy])
        sim.run()
        assert small.start_time >= 6 * HOUR
        assert policy.held_small > 0

    def test_non_exclusive_window_allows_small(self):
        machine = machine16()
        window = ReservedWindow(start=0.0, duration=6 * HOUR,
                                period=2 * DAY)
        policy = ReservedWindowPolicy(window, min_nodes=8, exclusive=False)
        small = make_job(job_id="small", nodes=2, work=600.0,
                         walltime=3000.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [small],
                                policies=[policy])
        sim.run()
        assert small.start_time == 0.0

    def test_queue_based_class(self):
        machine = machine16()
        from repro.core import QueueConfig

        window = ReservedWindow(start=6 * HOUR, duration=6 * HOUR,
                                period=2 * DAY)
        policy = ReservedWindowPolicy(window, reserved_queue="capability",
                                      exclusive=False)
        job = make_job(nodes=2, work=600.0, walltime=3000.0,
                       queue="capability")
        sim = ClusterSimulation(
            machine, EasyBackfillScheduler(), [job], policies=[policy],
            queue_configs=[QueueConfig("default"),
                           QueueConfig("capability", priority=5)],
        )
        sim.run()
        assert job.start_time >= 6 * HOUR

    def test_validation(self):
        window = ReservedWindow(start=0.0, duration=DAY)
        with pytest.raises(PolicyError):
            ReservedWindowPolicy(window)

    def test_riken_scenario_with_window(self):
        from repro.centers import build_center_simulation

        window = ReservedWindow(start=6 * HOUR, duration=12 * HOUR,
                                period=2 * DAY)
        build = build_center_simulation(
            "riken", seed=3, duration=18 * HOUR, nodes=48,
            reserved_window=window,
        )
        result = build.simulation.run()
        large = [j for j in result.jobs if j.queue == "large"
                 and j.start_time is not None]
        assert large, "scenario should start some large jobs"
        assert all(j.start_time >= 6 * HOUR for j in large)
