"""Fair-share scheduling and prediction-assisted backfilling.

Survey Q3(d) lists *fairness* among the scheduling goals centers
optimize for; every surveyed production scheduler (SLURM, PBS Pro,
LSF, LoadLeveler, MOAB) implements decay-based fair-share.  And the
backfilling literature's follow-up result (Tsafrir et al., building on
[35]) is that replacing user walltime requests with *learned runtime
predictions* in backfill decisions improves packing — while keeping
the request as the hard kill limit, so reservations remain safe.

Both are provided here as drop-in schedulers:

* :class:`FairShareScheduler` — EASY backfilling over a fair-share
  priority order (decayed node-seconds per user);
* :class:`PredictiveEasyScheduler` — EASY whose shadow/backfill
  arithmetic uses a runtime predictor's estimates.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..prediction.runtime_predictor import UserRuntimePredictor
from ..units import check_positive
from ..workload.job import Job
from .backfill import EasyBackfillScheduler, _earliest_fit
from .scheduler import NodePool, SchedulingContext, StartDecision


class FairShareScheduler(EasyBackfillScheduler):
    """EASY backfilling over a decayed-usage fair-share order.

    Each user accumulates node-seconds; usage decays exponentially
    with half-life ``half_life``.  Scheduling order is ascending decayed
    usage (lightest user first), with submit time as tie-break.  Feed
    usage via :meth:`record_usage` (the simulation's job-end hook) or
    attach :class:`FairShareAccountingPolicy`.
    """

    name = "fairshare"

    def __init__(self, half_life: float = 7 * 86400.0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.half_life = check_positive("half_life", half_life)
        self._usage: Dict[str, float] = {}
        self._usage_time: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def decayed_usage(self, user: str, now: float) -> float:
        """Current decayed node-seconds of *user*."""
        usage = self._usage.get(user, 0.0)
        if usage <= 0.0:
            return 0.0
        age = now - self._usage_time.get(user, now)
        return usage * math.pow(0.5, age / self.half_life)

    def record_usage(self, user: str, node_seconds: float, now: float) -> None:
        """Charge *node_seconds* to *user* at time *now*."""
        current = self.decayed_usage(user, now)
        self._usage[user] = current + node_seconds
        self._usage_time[user] = now

    # ------------------------------------------------------------------
    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        ordered = sorted(
            ctx.pending,
            key=lambda j: (self.decayed_usage(j.user, ctx.now),
                           j.submit_time, j.job_id),
        )
        reordered = SchedulingContext(
            now=ctx.now,
            machine=ctx.machine,
            pending=ordered,
            available=ctx.available,
            running=ctx.running,
            admit=ctx.admit,
            usable_node_count=ctx.usable_node_count,
        )
        return super().schedule(reordered)


class PredictiveEasyScheduler(EasyBackfillScheduler):
    """EASY backfilling with predicted runtimes in the packing math.

    The *hard* walltime limit stays the user request (jobs are still
    killed there), but shadow-time and ends-before-shadow tests use
    ``predictor.predict(job)`` — systematically smaller, so more
    backfill opportunities are found.  Predictions below actual
    runtimes can delay the head job's start (the known, measured,
    usually-worthwhile trade; Tsafrir et al.).
    """

    name = "predictive-easy"

    def __init__(self, predictor: Optional[UserRuntimePredictor] = None,
                 **kwargs) -> None:
        super().__init__(**kwargs)
        self.predictor = predictor or UserRuntimePredictor()

    def _estimate(self, job: Job) -> float:
        return self.predictor.predict(job)

    def _estimated_end(self, job: Job, now: float) -> float:
        """Predicted end of a *running* job, with Tsafrir correction.

        A job that has already outlived its prediction gets a bumped
        estimate (elapsed x 1.5) instead of "any moment now" — naive
        expired predictions make the shadow time wildly optimistic and
        let backfill repeatedly delay the head job.
        """
        start = job.start_time if job.start_time is not None else now
        predicted = start + self._estimate(job)
        if predicted <= now:
            elapsed = now - start
            predicted = start + min(1.5 * elapsed + 60.0,
                                    job.walltime_request)
            predicted = max(predicted, now + 1.0)
        return predicted

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        decisions: List[StartDecision] = []
        pool = NodePool(ctx.available)
        pending = list(ctx.pending)

        blocked_idx = None
        for i, job in enumerate(pending):
            if job.nodes <= len(pool) and ctx.admit(job):
                nodes = self._allocate(ctx, job, pool)
                pool.remove_ids(n.node_id for n in nodes)
                decisions.append(StartDecision(job, nodes))
            else:
                blocked_idx = i
                break
        if blocked_idx is None:
            return decisions

        head = pending[blocked_idx]
        # Release profile from *predicted* remaining runtimes.
        events: dict = {}
        for info in ctx.running:
            predicted_end = self._estimated_end(info.job, ctx.now)
            events[predicted_end] = events.get(predicted_end, 0) + len(info.node_ids)
        for d in decisions:
            end = ctx.now + self._estimate(d.job)
            events[end] = events.get(end, 0) + len(d.nodes)
        releases = sorted(events.items())

        shadow = _earliest_fit(len(pool), releases, head.nodes, ctx.now)
        if shadow == float("inf"):
            shadow = ctx.now if head.nodes <= ctx.usable_node_count else float("inf")

        free_at_shadow = len(pool)
        for time, released in releases:
            if time <= shadow:
                free_at_shadow += released
        spare = max(0, free_at_shadow - head.nodes)

        for job in pending[blocked_idx + 1 :]:
            if job.nodes > len(pool) or not ctx.admit(job):
                continue
            ends_before_shadow = ctx.now + self._estimate(job) <= shadow
            fits_spare = job.nodes <= spare
            if ends_before_shadow or fits_spare:
                nodes = self._allocate(ctx, job, pool)
                pool.remove_ids(n.node_id for n in nodes)
                if not ends_before_shadow:
                    spare -= job.nodes
                decisions.append(StartDecision(job, nodes))
        return decisions


# ----------------------------------------------------------------------
# Wiring helpers (policies that feed the schedulers)
# ----------------------------------------------------------------------
from ..core.epa import FunctionalCategory  # noqa: E402
from ..policies.base import Policy  # noqa: E402


class FairShareAccountingPolicy(Policy):
    """Feeds finished jobs' usage into a :class:`FairShareScheduler`."""

    name = "fairshare-accounting"

    def __init__(self, scheduler: FairShareScheduler) -> None:
        super().__init__()
        self.scheduler = scheduler

    def on_job_end(self, job: Job, now: float) -> None:
        node_seconds = job.node_seconds
        if node_seconds:
            self.scheduler.record_usage(job.user, node_seconds, now)

    def epa_components(self):
        return [(
            "fairshare-accounting",
            FunctionalCategory.RESOURCE_MONITORING,
            f"decayed per-user usage (half-life "
            f"{self.scheduler.half_life / 86400:.1f} d)",
        )]


class RuntimeLearningPolicy(Policy):
    """Feeds finished jobs into a :class:`UserRuntimePredictor`."""

    name = "runtime-learning"

    def __init__(self, predictor: UserRuntimePredictor) -> None:
        super().__init__()
        self.predictor = predictor

    def on_job_end(self, job: Job, now: float) -> None:
        self.predictor.observe(job)

    def epa_components(self):
        return [(
            "runtime-learning",
            FunctionalCategory.RESOURCE_MONITORING,
            "per-user walltime-accuracy ratios from finished jobs",
        )]
