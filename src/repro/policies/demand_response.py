"""Demand-response-aware scheduling.

Connects a :class:`~repro.grid.events.GridEventSchedule` to the
machine: during a DR window the policy (a) vetoes job starts that
would push power above the event limit, and (b) sheds idle nodes if
the measured power exceeds it.  Between events it restores normal
operation.  This is the scheduler-side half of the ESP interaction the
survey's motivation section describes.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cluster.node import NodeState
from ..core.epa import FunctionalCategory
from ..grid.events import GridEventSchedule
from ..units import check_positive
from ..workload.job import Job
from .base import Policy, _idle_rank


class DemandResponsePolicy(Policy):
    """Honor demand-response events from the grid.

    Parameters
    ----------
    schedule:
        The DR event schedule.
    check_interval:
        Control-loop period, seconds.
    """

    name = "demand-response"

    def __init__(
        self,
        schedule: GridEventSchedule,
        check_interval: float = 300.0,
        cap_during_events: bool = True,
    ) -> None:
        super().__init__()
        self.schedule = schedule
        self.control_interval = check_positive("check_interval", check_interval)
        self.cap_during_events = cap_during_events
        self.vetoes = 0
        self.sheds = 0
        self._caps_applied = False

    # ------------------------------------------------------------------
    def _job_delta(self, job: Job) -> float:
        node = self.simulation.machine.nodes[0]
        return job.nodes * (node.max_power - node.idle_power) * job.mean_power_intensity

    def admit(self, job: Job, now: float) -> bool:
        event = self.schedule.active_event(now)
        if event is None:
            # Don't start a long job that would straddle an imminent
            # event if it alone would break the event's limit.
            upcoming = self.schedule.next_event(now)
            if upcoming is not None and now + job.walltime_request > upcoming.start:
                if self._job_delta(job) > upcoming.limit_watts:
                    self.vetoes += 1
                    return False
            return True
        if self.simulation.machine_power() + self._job_delta(job) > event.limit_watts:
            self.vetoes += 1
            return False
        return True

    def on_tick(self, now: float) -> None:
        event = self.schedule.active_event(now)
        machine = self.simulation.machine
        rm = self.simulation.rm
        if event is None:
            if self._caps_applied:
                rm.set_power_cap(machine.nodes, None)
                self._caps_applied = False
            return
        # Fine-grained lever: cap powered nodes so even the carried-over
        # jobs fit the DR limit (the "fine and coarse grained power
        # management" of the survey's motivation).
        if self.cap_during_events:
            powered = [n for n in machine.nodes if n.is_on]
            if powered:
                per_node = event.limit_watts / len(powered)
                floor = max(n.cap_floor for n in powered)
                rm.set_power_cap(powered, max(per_node, floor))
                self._caps_applied = True
        power = self.simulation.machine_power()
        if power <= event.limit_watts:
            return
        excess = power - event.limit_watts
        idle = sorted(
            machine.nodes_in_state(NodeState.IDLE),
            key=_idle_rank,
        )
        shed = 0.0
        to_stop = []
        for node in idle:
            if shed >= excess:
                break
            to_stop.append(node)
            shed += node.idle_power
        if to_stop:
            self.sheds += self.simulation.rm.shutdown_nodes(to_stop)

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "dr-listener",
                FunctionalCategory.POWER_MONITORING,
                f"{len(self.schedule)} scheduled demand-response events",
            ),
            (
                "dr-enforcement",
                FunctionalCategory.POWER_CONTROL,
                "veto starts and shed idle nodes during DR windows",
            ),
        ]
