"""EPA JSRM core: job scheduling and resource management.

The paper's subject matter (Section II-A): a *job scheduler* decides
which pending jobs to place next onto computational nodes; a *resource
manager* has the privileged ability to control resources (nodes, power
caps, frequencies, even facility actuation).  This package provides
both, their coupling (the EPA coordinator of Figure 1), the queue and
allocation machinery, and the metrics every evaluation reports.
"""

from .queue import JobQueue, QueueConfig
from .scheduler import (
    FcfsScheduler,
    NodePool,
    Scheduler,
    SchedulingContext,
    StartDecision,
)
from .profile import FreeNodeProfile
from .backfill import ConservativeBackfillScheduler, EasyBackfillScheduler
from .reference_backfill import (
    ReferenceConservativeBackfillScheduler,
    ReferenceEasyBackfillScheduler,
)
from .allocator import (
    Allocator,
    FirstFitAllocator,
    LowPowerAllocator,
    TopologyAwareAllocator,
)
from .resource_manager import ResourceManager
from .epa import EpaCoordinator, FunctionalCategory
from .metrics import MetricsReport, compute_metrics
from .simulation import ClusterSimulation, SimulationResult
from .multi import BudgetCoordinator, MachineSlice, SiteSimulation
from .fairshare import (
    FairShareAccountingPolicy,
    FairShareScheduler,
    PredictiveEasyScheduler,
    RuntimeLearningPolicy,
)

__all__ = [
    "Allocator",
    "BudgetCoordinator",
    "ClusterSimulation",
    "MachineSlice",
    "SiteSimulation",
    "ConservativeBackfillScheduler",
    "EasyBackfillScheduler",
    "EpaCoordinator",
    "FairShareAccountingPolicy",
    "FairShareScheduler",
    "FcfsScheduler",
    "FreeNodeProfile",
    "NodePool",
    "ReferenceConservativeBackfillScheduler",
    "ReferenceEasyBackfillScheduler",
    "FirstFitAllocator",
    "PredictiveEasyScheduler",
    "RuntimeLearningPolicy",
    "FunctionalCategory",
    "JobQueue",
    "LowPowerAllocator",
    "MetricsReport",
    "QueueConfig",
    "ResourceManager",
    "Scheduler",
    "SchedulingContext",
    "SimulationResult",
    "StartDecision",
    "TopologyAwareAllocator",
    "compute_metrics",
]
