"""The nine centers' survey responses (Tables I and II, transcribed).

Every :class:`~repro.survey.model.Activity` below corresponds to one
cell entry of Table I or Table II of the paper, tagged with taxonomy
techniques and named partners.  The two identified-but-not-
participating centers appear anonymously (the paper does not name
them) so the Section-III selection funnel (11 identified -> 9
participating) is reproducible.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import SurveyError
from .model import Activity, CenterProfile, MaturityStage, SurveyResponse
from .taxonomy import Technique

_R = MaturityStage.RESEARCH
_T = MaturityStage.TECH_DEV
_P = MaturityStage.PRODUCTION


# ----------------------------------------------------------------------
# Center profiles (Section III + Figure 2 geography)
# ----------------------------------------------------------------------
_PROFILES: List[CenterProfile] = [
    CenterProfile("riken", "RIKEN", "Japan", "Asia", 34.65, 135.22,
                  "national lab", "K computer"),
    CenterProfile("tokyotech", "Tokyo Institute of Technology", "Japan",
                  "Asia", 35.61, 139.68, "academic", "TSUBAME"),
    CenterProfile("cea", "CEA", "France", "Europe", 48.71, 2.16,
                  "national lab", "Curie"),
    CenterProfile("kaust", "KAUST", "Saudi Arabia", "Middle East",
                  22.31, 39.10, "academic", "Shaheen (Cray XC40)"),
    CenterProfile("lrz", "LRZ", "Germany", "Europe", 48.26, 11.67,
                  "academic", "SuperMUC"),
    CenterProfile("stfc", "STFC", "United Kingdom", "Europe", 53.34, -2.64,
                  "national lab", "Scafell Pike / Hartree systems"),
    CenterProfile("trinity", "Trinity (LANL+Sandia)", "United States",
                  "North America", 35.88, -106.30, "national lab",
                  "Trinity (Cray XC40)"),
    CenterProfile("cineca", "CINECA", "Italy", "Europe", 44.49, 11.34,
                  "academic", "Eurora / Marconi"),
    CenterProfile("jcahpc", "JCAHPC (U.Tsukuba + U.Tokyo)", "Japan", "Asia",
                  35.90, 139.94, "joint", "Oakforest-PACS"),
]

#: The two centers that met the criteria but declined (anonymous).
IDENTIFIED_NOT_PARTICIPATING: List[CenterProfile] = [
    CenterProfile("anon-a", "Identified center A (declined)", "undisclosed",
                  "North America", 40.0, -100.0, "national lab",
                  "undisclosed", participated=False),
    CenterProfile("anon-b", "Identified center B (declined)", "undisclosed",
                  "Asia", 35.0, 110.0, "academic", "undisclosed",
                  participated=False),
]

PARTICIPATING_CENTERS: List[str] = [p.slug for p in _PROFILES]


# ----------------------------------------------------------------------
# Activities (Tables I and II)
# ----------------------------------------------------------------------
_ACTIVITIES: List[Activity] = [
    # ---------------- RIKEN (Table I) ----------------
    Activity("riken", _R,
             "Integrating job scheduler info with decision to use grid vs. "
             "gas turbine energy",
             frozenset({Technique.GRID_INTEGRATION}),),
    Activity("riken", _T,
             "Power-aware job scheduling for Post-K, with Fujitsu",
             frozenset({Technique.POWER_AWARE_SCHEDULING,
                        Technique.VENDOR_COPRODUCT}),
             ("Fujitsu",)),
    Activity("riken", _P,
             "3 days for large jobs each month",
             frozenset({Technique.RESERVED_LARGE_JOB_WINDOWS}),),
    Activity("riken", _P,
             "Automated emergency job killing if power limit exceeded",
             frozenset({Technique.EMERGENCY_KILL}),),
    Activity("riken", _P,
             "Pre-run estimate of power usage of each job, based on "
             "temperature",
             frozenset({Technique.POWER_PREDICTION,
                        Technique.RUNTIME_ESTIMATION}),),

    # ---------------- Tokyo Tech (Table I) ----------------
    Activity("tokyotech", _R,
             "Activities to facilitate Production Development",
             frozenset(),),
    Activity("tokyotech", _R,
             "Analyze collected power and energy info archived long term "
             "and use for EPA scheduling",
             frozenset({Technique.LONG_TERM_ARCHIVE,
                        Technique.ENERGY_AWARE_SCHEDULING}),),
    Activity("tokyotech", _T,
             "Inter-system power capping: TSUBAME2 and TSUBAME3 will need "
             "to share the facility power budget",
             frozenset({Technique.INTER_SYSTEM_BUDGET,
                        Technique.SYSTEM_CAPPING}),),
    Activity("tokyotech", _T,
             "Gives users mark on how well they used power and energy",
             frozenset({Technique.USER_EFFICIENCY_MARKS}),),
    Activity("tokyotech", _P,
             "Resource manager dynamically boots or shuts down nodes to "
             "stay under power cap (summer only, enforced over ~30 min "
             "window); interacts with job scheduler to avoid killing jobs; "
             "NEC implemented, works cooperatively with PBS Pro",
             frozenset({Technique.DYNAMIC_CAP_TRACKING,
                        Technique.VENDOR_COPRODUCT}),
             ("NEC", "Altair (PBS Pro)")),
    Activity("tokyotech", _P,
             "Resource manager shuts down nodes that have been idle for a "
             "long time",
             frozenset({Technique.IDLE_SHUTDOWN}),),
    Activity("tokyotech", _P,
             "Uses virtual machines to split compute nodes (complicates "
             "physical node shutdown)",
             frozenset({Technique.VIRTUALIZATION}),),
    Activity("tokyotech", _P,
             "Energy use provided to users at end of every job",
             frozenset({Technique.ENERGY_REPORTS}),),

    # ---------------- CEA (Table I) ----------------
    Activity("cea", _R,
             "Investigating how to use and apply mpi_yield_when_idle",
             frozenset({Technique.ENERGY_AWARE_SCHEDULING}),),
    Activity("cea", _R,
             "Investigating with BULL power capping and DVFS",
             frozenset({Technique.DVFS_CONTROL, Technique.SYSTEM_CAPPING}),
             ("BULL",)),
    Activity("cea", _T,
             "Together with BULL developing power adaptive scheduling in "
             "SLURM",
             frozenset({Technique.POWER_AWARE_SCHEDULING,
                        Technique.VENDOR_COPRODUCT}),
             ("BULL", "SchedMD (SLURM)")),
    Activity("cea", _T,
             "Developing 'layout logic' in SLURM: tell what PDUs/Chillers a "
             "node or rack depends on and avoid scheduling jobs on them "
             "when maintenance",
             frozenset({Technique.LAYOUT_AWARE_SCHEDULING}),
             ("SchedMD (SLURM)",)),
    Activity("cea", _P,
             "Manually shutting down nodes to shift power budget between "
             "systems",
             frozenset({Technique.MANUAL_SHUTDOWN,
                        Technique.INTER_SYSTEM_BUDGET}),),

    # ---------------- KAUST (Table I) ----------------
    Activity("kaust", _R,
             "Monitoring and managing power usage under data center power "
             "and cooling limits",
             frozenset({Technique.CONTINUOUS_MONITORING,
                        Technique.COOLING_AWARE}),),
    Activity("kaust", _T,
             "Analyzing and detecting most power hungry applications in "
             "production; developing optimal power limit constraint "
             "strategy for users on Shaheen Cray XC40",
             frozenset({Technique.APP_CHARACTERIZATION,
                        Technique.POWER_PREDICTION}),),
    Activity("kaust", _P,
             "Static power capping via Cray CAPMC: 30% of nodes run "
             "uncapped, 70% run with 270 W power cap",
             frozenset({Technique.STATIC_NODE_CAPPING}),
             ("Cray",)),
    Activity("kaust", _P,
             "Using SLURM Dynamic Power Management (SDPM) that interfaces "
             "with Cray CAPMC (KAUST worked with SchedMD to develop SDPM)",
             frozenset({Technique.POWER_AWARE_SCHEDULING,
                        Technique.SYSTEM_CAPPING,
                        Technique.VENDOR_COPRODUCT}),
             ("SchedMD (SLURM)", "Cray")),

    # ---------------- LRZ (Table I) ----------------
    Activity("lrz", _R,
             "Investigating merging SLURM and GEOPM for system energy & "
             "power control",
             frozenset({Technique.POWER_AWARE_SCHEDULING}),
             ("SchedMD (SLURM)", "Intel (GEOPM)")),
    Activity("lrz", _R,
             "Investigating scheduling for power instead of energy",
             frozenset({Technique.POWER_AWARE_SCHEDULING}),),
    Activity("lrz", _R,
             "Linking job scheduler with IT infrastructure + cooling; "
             "scheduler may delay jobs when IT infrastructure is "
             "particularly inefficient",
             frozenset({Technique.COOLING_AWARE,
                        Technique.ENERGY_AWARE_SCHEDULING}),),
    Activity("lrz", _T,
             "Working on adding energy-aware scheduling capabilities to "
             "SLURM, similar to what they have with LoadLeveler today",
             frozenset({Technique.ENERGY_AWARE_SCHEDULING}),
             ("SchedMD (SLURM)",)),
    Activity("lrz", _P,
             "First time new app runs: characterized for frequency, "
             "runtime and energy",
             frozenset({Technique.APP_CHARACTERIZATION}),),
    Activity("lrz", _P,
             "Administrator selects job scheduling goal, energy to "
             "solution or best performance",
             frozenset({Technique.ENERGY_AWARE_SCHEDULING,
                        Technique.DVFS_CONTROL}),),
    Activity("lrz", _P,
             "LRZ worked with IBM on energy-aware scheduling support in "
             "LoadLeveler, now ported to LSF",
             frozenset({Technique.ENERGY_AWARE_SCHEDULING,
                        Technique.VENDOR_COPRODUCT}),
             ("IBM",)),

    # ---------------- STFC (Table II) ----------------
    Activity("stfc", _R,
             "IBM/LSF energy-aware scheduling is experimented with on "
             "small-scale (360 node) system",
             frozenset({Technique.ENERGY_AWARE_SCHEDULING}),
             ("IBM",)),
    Activity("stfc", _R,
             "Programmable interface (PowerAPI-based) for application "
             "power measurements of code segments (with interface to JSRM)",
             frozenset({Technique.SEGMENT_MEASUREMENT}),
             ("Sandia (Power API)",)),
    Activity("stfc", _R,
             "Investigation of power aware policies using higher level "
             "abstractions, e.g., GEOPM and Job Scheduler",
             frozenset({Technique.POWER_AWARE_SCHEDULING}),
             ("Intel (GEOPM)",)),
    Activity("stfc", _T,
             "Deployment of reporting tool for user power consumption at "
             "the job level (fine as well as coarse granularity)",
             frozenset({Technique.ENERGY_REPORTS}),),
    Activity("stfc", _P,
             "Continuously collecting power and energy system monitoring "
             "info: data center, machine, and job levels",
             frozenset({Technique.CONTINUOUS_MONITORING,
                        Technique.LONG_TERM_ARCHIVE}),),

    # ---------------- Trinity / LANL+Sandia (Table II) ----------------
    Activity("trinity", _R,
             "Analyzing power system monitoring info to assess potential "
             "of EPA scheduling; gather traces for evaluating EPA "
             "approaches",
             frozenset({Technique.CONTINUOUS_MONITORING,
                        Technique.LONG_TERM_ARCHIVE}),),
    Activity("trinity", _T,
             "EPA job scheduling support developed with Adaptive Inc. for "
             "MOAB/Torque, interfaces with Cray CAPMC and Power API; "
             "Trinity is now using SLURM, but MOAB work remains available",
             frozenset({Technique.POWER_AWARE_SCHEDULING,
                        Technique.VENDOR_COPRODUCT}),
             ("Adaptive Computing (MOAB)", "Cray")),
    Activity("trinity", _T,
             "Developed Power API implementation with Cray, utilized by "
             "MOAB/Torque for EPA job scheduling",
             frozenset({Technique.SEGMENT_MEASUREMENT,
                        Technique.VENDOR_COPRODUCT}),
             ("Cray", "Sandia (Power API)")),
    Activity("trinity", _P,
             "Cray CAPMC power capping infrastructure, out-of-band "
             "control, administrator ability to set system-wide and "
             "node-level power caps (available on all Cray XC systems)",
             frozenset({Technique.SYSTEM_CAPPING,
                        Technique.STATIC_NODE_CAPPING,
                        Technique.MANUAL_EMERGENCY}),
             ("Cray",)),

    # ---------------- CINECA (Table II) ----------------
    Activity("cineca", _R,
             "Scalable power monitoring, used to predict per-job power use "
             "and to generate predictive models for node power and "
             "temperature evolution (with University of Bologna)",
             frozenset({Technique.CONTINUOUS_MONITORING,
                        Technique.POWER_PREDICTION,
                        Technique.TEMPERATURE_MODELING}),
             ("University of Bologna",)),
    Activity("cineca", _T,
             "Developing together with E4 EPA job scheduling support in "
             "SLURM; also tracking EPA SLURM work being done by BULL and "
             "SchedMD",
             frozenset({Technique.POWER_AWARE_SCHEDULING,
                        Technique.VENDOR_COPRODUCT}),
             ("E4", "SchedMD (SLURM)", "BULL")),
    Activity("cineca", _P,
             "EPA job scheduling on Eurora system (now decommissioned) "
             "using PBSPro, collaboration with Altair",
             frozenset({Technique.ENERGY_AWARE_SCHEDULING,
                        Technique.VENDOR_COPRODUCT}),
             ("Altair (PBS Pro)",)),

    # ---------------- JCAHPC (Table II) ----------------
    Activity("jcahpc", _R,
             "Activities to facilitate Production Development",
             frozenset(),),
    Activity("jcahpc", _P,
             "Ability to set power caps for groups of nodes via the "
             "resource manager (Fujitsu proprietary product)",
             frozenset({Technique.GROUP_CAPPING,
                        Technique.VENDOR_COPRODUCT}),
             ("Fujitsu",)),
    Activity("jcahpc", _P,
             "Manual emergency response, admin sets power cap",
             frozenset({Technique.MANUAL_EMERGENCY}),),
    Activity("jcahpc", _P,
             "Delivering post-job energy use reports to users",
             frozenset({Technique.ENERGY_REPORTS}),),
]

#: Response page counts: the paper says 8-17 pages per center.
_PAGES: Dict[str, int] = {
    "riken": 14, "tokyotech": 17, "cea": 12, "kaust": 11, "lrz": 15,
    "stfc": 10, "trinity": 13, "cineca": 9, "jcahpc": 8,
}


# ----------------------------------------------------------------------
# Accessors
# ----------------------------------------------------------------------
def all_center_slugs() -> List[str]:
    """Slugs of the nine participating centers, table order."""
    return list(PARTICIPATING_CENTERS)


def center_profile(slug: str) -> CenterProfile:
    """Profile of one center (participating or identified)."""
    for profile in _PROFILES + IDENTIFIED_NOT_PARTICIPATING:
        if profile.slug == slug:
            return profile
    raise SurveyError(f"unknown center {slug!r}")


def survey_responses() -> List[SurveyResponse]:
    """The nine full survey responses, in table order."""
    out = []
    for profile in _PROFILES:
        activities = tuple(a for a in _ACTIVITIES if a.center == profile.slug)
        out.append(
            SurveyResponse(profile, activities, _PAGES[profile.slug])
        )
    return out


def response_for(slug: str) -> SurveyResponse:
    """One center's survey response."""
    for response in survey_responses():
        if response.profile.slug == slug:
            return response
    raise SurveyError(f"no survey response for {slug!r}")
