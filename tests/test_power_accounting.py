"""Incremental machine power accounting vs the ground-truth full sum.

``ClusterSimulation.machine_power()`` maintains a running watts total
updated by per-node deltas (nodes mark themselves dirty through their
``power_listener`` hook on state/cap/frequency changes; the simulation
marks job (un)binding itself).  Every test here mutates the machine
through a different control surface and asserts the accumulator equals
a freshly computed all-nodes sum.
"""

from __future__ import annotations

import pytest

from repro.cluster import Machine, MachineSpec, NodeState
from repro.core import ClusterSimulation, FcfsScheduler
from repro.policies.dvfs_budget import DvfsBudgetPolicy
from repro.power.capmc import Capmc
from tests.conftest import make_job


def full_sum(csim: ClusterSimulation) -> float:
    """Ground truth: re-derive the machine draw node by node."""
    return sum(
        csim._node_operating_point(n).watts for n in csim.machine.nodes
    )


def fresh(jobs=(), nodes=16, **kwargs):
    machine = Machine(MachineSpec(name="acc", nodes=nodes, nodes_per_cabinet=4))
    return ClusterSimulation(machine, FcfsScheduler(), list(jobs), **kwargs)


class TestIncrementalPowerAccounting:
    def test_initial_sum_matches(self):
        csim = fresh()
        assert csim.machine_power() == pytest.approx(full_sum(csim))

    def test_rm_power_caps_tracked(self):
        csim = fresh()
        csim.machine_power()  # seed the accumulator
        csim.rm.set_power_cap(csim.machine.nodes[:5], 120.0)
        assert csim.machine_power() == pytest.approx(full_sum(csim))
        csim.rm.set_power_cap(csim.machine.nodes[:5], None)
        assert csim.machine_power() == pytest.approx(full_sum(csim))

    def test_rm_frequency_tracked(self):
        csim = fresh()
        csim.machine_power()
        node = csim.machine.nodes[0]
        csim.rm.set_frequency(csim.machine.nodes[:3], node.min_frequency)
        assert csim.machine_power() == pytest.approx(full_sum(csim))

    def test_boot_and_shutdown_cycle_tracked(self, sim=None):
        csim = fresh()
        csim.machine_power()
        nodes = csim.machine.nodes[:4]
        csim.rm.shutdown_nodes(nodes)
        assert csim.machine_power() == pytest.approx(full_sum(csim))
        csim.sim.run(until=1000.0)  # let the shutdowns complete
        assert nodes[0].state is NodeState.OFF
        assert csim.machine_power() == pytest.approx(full_sum(csim))
        csim.rm.boot_nodes(nodes)
        assert csim.machine_power() == pytest.approx(full_sum(csim))
        csim.sim.run(until=2000.0)
        assert nodes[0].state is NodeState.IDLE
        assert csim.machine_power() == pytest.approx(full_sum(csim))

    def test_drain_undrain_tracked(self):
        csim = fresh()
        csim.machine_power()
        node = csim.machine.nodes[7]
        csim.rm.drain_node(node)
        assert csim.machine_power() == pytest.approx(full_sum(csim))
        csim.rm.undrain_node(node)
        assert csim.machine_power() == pytest.approx(full_sum(csim))

    def test_out_of_band_capmc_tracked(self):
        # Capmc writes node caps directly, bypassing the RM — the node
        # hook must still catch it.
        csim = fresh()
        csim.machine_power()
        capmc = Capmc(csim.machine, csim.power_model)
        capmc.set_node_cap(range(6), 150.0)
        assert csim.machine_power() == pytest.approx(full_sum(csim))
        capmc.set_system_cap(16 * 200.0)
        assert csim.machine_power() == pytest.approx(full_sum(csim))

    def test_job_lifecycle_tracked(self):
        job = make_job(job_id="a", nodes=4, work=100.0, walltime=200.0)
        csim = fresh([job])
        csim.prepare()
        csim.sim.run(until=50.0)  # job running
        assert csim.machine_power() == pytest.approx(full_sum(csim))
        csim.sim.run(until=500.0)  # job finished, nodes idle again
        assert csim.machine_power() == pytest.approx(full_sum(csim))

    def test_accumulator_consistent_through_full_run(self):
        jobs = [
            make_job(job_id=f"j{i}", nodes=1 + i % 4, work=50.0 + 10 * i,
                     walltime=400.0, submit=float(5 * i))
            for i in range(12)
        ]
        csim = fresh(jobs, policies=[DvfsBudgetPolicy(budget_watts=2500.0)])
        csim.run()
        assert csim.machine_power() == pytest.approx(full_sum(csim))

    def test_invalidate_power_cache_after_oob_mutation(self):
        csim = fresh()
        before = csim.machine_power()
        # Mutating power-model inputs directly (no hook fires) leaves
        # the accumulator stale until explicitly invalidated.
        for node in csim.machine.nodes:
            node.idle_power = node.idle_power * 1.5
        assert csim.machine_power() == pytest.approx(before)  # stale
        csim.invalidate_power_cache()
        assert csim.machine_power() == pytest.approx(full_sum(csim))
        assert csim.machine_power() == pytest.approx(before * 1.5)

    def test_dirty_order_independence(self):
        # Same mutations in different orders must converge to the same
        # total (dirty nodes are folded in sorted id order).
        def run(order):
            csim = fresh()
            csim.machine_power()
            for nid in order:
                csim.rm.set_power_cap([csim.machine.nodes[nid]], 130.0 + nid)
            return csim.machine_power()

        assert run([1, 5, 3]) == pytest.approx(run([3, 1, 5]))
