"""RAPL-style running-average power limiting.

Intel's Running Average Power Limit (David et al., ISLPED'10, cited as
[13]) enforces a *time-window averaged* power limit in hardware: short
excursions above the limit are allowed as long as the average over the
window stays at or below it.  Several surveyed works combine RAPL with
job scheduling ([8], [17] — Ellsworth's dynamic power sharing).

:class:`RaplDomain` tracks a power-sample history per node and answers
the question the enforcement logic needs: *given the recent history,
how much may this node draw right now without breaking the windowed
limit?*
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..errors import PowerCapError
from ..units import check_positive


class RaplDomain:
    """A windowed power limit over one node (package) domain.

    Parameters
    ----------
    limit_watts:
        The running-average limit, or ``None`` for unlimited.
    window_seconds:
        Averaging window length (real RAPL windows are milliseconds to
        seconds; scheduler-level emulations use tens of seconds).
    """

    def __init__(self, limit_watts: Optional[float] = None, window_seconds: float = 10.0) -> None:
        self.window_seconds = check_positive("window_seconds", window_seconds)
        self.limit_watts: Optional[float] = None
        if limit_watts is not None:
            self.set_limit(limit_watts)
        # (timestamp, watts) samples, oldest first.
        self._samples: Deque[Tuple[float, float]] = deque()

    def set_limit(self, limit_watts: Optional[float]) -> None:
        """Install (or clear, with None) the running-average limit."""
        if limit_watts is not None and limit_watts <= 0:
            raise PowerCapError(f"RAPL limit must be > 0, got {limit_watts}")
        self.limit_watts = limit_watts

    # ------------------------------------------------------------------
    def record(self, time: float, watts: float) -> None:
        """Record an observed power sample and age out old ones."""
        self._samples.append((float(time), float(watts)))
        horizon = time - self.window_seconds
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def window_energy(self, now: float) -> float:
        """Energy recorded in the trailing window, joules.

        Sample-and-hold integration over [now - W, now]; time before
        the first recorded sample contributes nothing (the energy-bank
        view of RAPL: the window's budget is ``L x W`` joules).
        """
        if not self._samples:
            return 0.0
        start = now - self.window_seconds
        energy = 0.0
        samples = list(self._samples)
        for i, (t, w) in enumerate(samples):
            seg_start = max(t, start)
            seg_end = samples[i + 1][0] if i + 1 < len(samples) else now
            seg_end = max(seg_end, seg_start)
            energy += w * (seg_end - seg_start)
        return energy

    def window_average(self, now: float) -> float:
        """Running-average power over the *full* window length.

        This is the quantity RAPL enforces: recorded energy divided by
        the window length W, so a short burst inside an otherwise quiet
        window is cheap — the defining difference from a static cap.
        """
        return self.window_energy(now) / self.window_seconds

    def allowance(self, now: float) -> float:
        """Constant draw sustainable to the end of the current window.

        With budget ``L x W`` joules and *E* already spent over the
        covered portion of length *D*, the remaining ``W - D`` seconds
        may draw ``(L x W - E)/(W - D)`` watts.  Once the window is
        fully covered the steady-state allowance is ``L + (L - avg)``
        (credit from a quiet recent past, debt from a loud one).
        Unlimited domains return infinity.
        """
        if self.limit_watts is None:
            return float("inf")
        budget = self.limit_watts * self.window_seconds
        energy = self.window_energy(now)
        if not self._samples:
            return self.limit_watts
        window_start = now - self.window_seconds
        covered = now - max(self._samples[0][0], window_start)
        remaining = self.window_seconds - covered
        if remaining <= 1e-9:
            avg = self.window_average(now)
            return max(0.0, 2.0 * self.limit_watts - avg)
        return max(0.0, (budget - energy) / remaining)

    def compliant(self, now: float) -> bool:
        """True if the running window average is within the limit."""
        if self.limit_watts is None:
            return True
        return self.window_average(now) <= self.limit_watts * (1.0 + 1e-9)
