"""Workload statistics — the Q3(e) percentile tables.

Survey Q3(e): "what is the minimum, median, maximum, and 10th, 25th,
75th, and 90th percentile job size and wallclock time?"  These helpers
compute exactly that table for any job collection, plus the snapshot
and backlog summaries of Q3(a)-(c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence

import numpy as np

from ..units import DAY
from ..workload.job import Job, JobState

#: The exact percentile set of Q3(e).
Q3E_PERCENTILES = (10, 25, 75, 90)


@dataclass(frozen=True)
class PercentileTable:
    """Q3(e)-style summary of one quantity."""

    quantity: str
    minimum: float
    p10: float
    p25: float
    median: float
    p75: float
    p90: float
    maximum: float

    def as_row(self) -> Dict[str, float]:
        """Flat dict keyed like the survey question."""
        return {
            "min": self.minimum,
            "p10": self.p10,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "p90": self.p90,
            "max": self.maximum,
        }


def _table(quantity: str, values: Sequence[float]) -> PercentileTable:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return PercentileTable(quantity, *([0.0] * 7))
    p10, p25, p75, p90 = (float(np.percentile(arr, p)) for p in Q3E_PERCENTILES)
    return PercentileTable(
        quantity,
        float(arr.min()),
        p10,
        p25,
        float(np.median(arr)),
        p75,
        p90,
        float(arr.max()),
    )


def percentile_table(jobs: Iterable[Job]) -> Dict[str, PercentileTable]:
    """Q3(e) tables: job size (nodes) and wallclock time (actual runtime
    where known, else the work estimate)."""
    jobs = list(jobs)
    sizes = [float(j.nodes) for j in jobs]
    times = [
        float(j.run_time) if j.run_time is not None else float(j.work_seconds)
        for j in jobs
    ]
    return {
        "job_size_nodes": _table("job_size_nodes", sizes),
        "wallclock_seconds": _table("wallclock_seconds", times),
    }


def workload_summary(jobs: Iterable[Job], span: float) -> Dict[str, float]:
    """Q3(a)-(c): snapshot-style counts and throughput."""
    jobs = list(jobs)
    completed = [j for j in jobs if j.state is JobState.COMPLETED]
    return {
        "jobs_total": float(len(jobs)),
        "jobs_completed": float(len(completed)),
        "jobs_per_month": len(completed) / (span / (30 * DAY)) if span > 0 else 0.0,
        "mean_size_nodes": float(np.mean([j.nodes for j in jobs])) if jobs else 0.0,
        "mean_work_hours": (
            float(np.mean([j.work_seconds for j in jobs])) / 3600.0 if jobs else 0.0
        ),
        "capability_fraction": (
            sum(1 for j in jobs if j.nodes >= max(1, max(j.nodes for j in jobs) // 4))
            / len(jobs)
            if jobs
            else 0.0
        ),
    }
