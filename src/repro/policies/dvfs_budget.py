"""DVFS power budgeting — Etinski et al. ([18], [19]).

"Etinski et al. ... extends the standard job scheduling algorithm with
power budgeting capability through DVFS": when starting a job would
exceed the machine power budget at nominal frequency, the job is
started anyway — at a reduced frequency whose predicted power fits the
remaining headroom.  Only if even the minimum frequency does not fit
is the start vetoed (the job waits).

This trades a *known, bounded* slowdown for shorter queue waits under
a budget — the crossover the `exp-dvfs` bench sweeps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.node import Node
from ..core.epa import FunctionalCategory
from ..power.dvfs import FrequencyLadder
from ..units import check_positive
from ..workload.job import Job
from .base import Policy


class DvfsBudgetPolicy(Policy):
    """Start jobs at the highest frequency fitting the power budget.

    Parameters
    ----------
    budget_watts:
        Machine power budget.
    ladder:
        Admissible frequencies; defaults to 6 steps over the node range.
    min_speed:
        Jobs are never started below this predicted relative speed
        (guards against walltime blowups); 0 disables the guard.
    """

    name = "dvfs-budget"

    def __init__(
        self,
        budget_watts: float,
        ladder: Optional[FrequencyLadder] = None,
        min_speed: float = 0.0,
    ) -> None:
        super().__init__()
        self.budget_watts = check_positive("budget_watts", budget_watts)
        self.ladder = ladder
        self.min_speed = float(min_speed)
        self.slowed_starts = 0
        self.vetoes = 0

    def on_attach(self) -> None:
        if self.ladder is None:
            node = self.simulation.machine.nodes[0]
            self.ladder = FrequencyLadder.linear(
                node.min_frequency, node.max_frequency, steps=6
            )

    # ------------------------------------------------------------------
    def _job_draw_at(self, job: Job, freq: float) -> float:
        """Predicted extra draw of the job at *freq* (idle already paid)."""
        model = self.simulation.power_model
        node = self.simulation.machine.nodes[0]
        ratio = freq / node.max_frequency
        per_node = model.power_at_ratio(node, ratio, job.mean_power_intensity)
        return job.nodes * (per_node - node.idle_power)

    def _pick_frequency(self, job: Job, now: float) -> Optional[float]:
        """Highest ladder frequency fitting the headroom, or None."""
        headroom = self.budget_watts - self.simulation.machine_power()
        model = self.simulation.power_model
        node = self.simulation.machine.nodes[0]
        mirror = self.simulation.power_vector
        if mirror is not None:
            # Evaluate the whole ladder in one kernel (descending, so
            # argmax picks the highest admissible frequency) against
            # the reference node's row.
            freqs = np.asarray(self.ladder.frequencies, dtype=float)[::-1]
            row = mirror.rows_for([node.node_id])
            rows = np.broadcast_to(row, freqs.shape)
            per_node = mirror.power_at_ratio(
                rows, freqs / node.max_frequency, job.mean_power_intensity
            )
            draws = job.nodes * (per_node - node.idle_power)
            speeds = np.maximum(
                1e-9,
                1.0
                - min(1.0, max(0.0, job.mean_sensitivity))
                * (1.0 - np.clip(freqs / node.max_frequency, 0.0, 1.0)),
            )
            admissible = (draws <= headroom) & (speeds >= self.min_speed)
            if not admissible.any():
                return None
            return float(freqs[int(np.argmax(admissible))])
        for freq in reversed(self.ladder.frequencies):
            if self._job_draw_at(job, freq) <= headroom:
                ratio = freq / node.max_frequency
                speed = model.speed_at_ratio(ratio, job.mean_sensitivity)
                if speed >= self.min_speed:
                    return freq
        return None

    # ------------------------------------------------------------------
    def admit(self, job: Job, now: float) -> bool:
        if self._pick_frequency(job, now) is None:
            self.vetoes += 1
            return False
        return True

    def configure_start(self, job: Job, nodes: Sequence[Node], now: float) -> None:
        freq = self._pick_frequency(job, now)
        if freq is None:
            freq = self.ladder.f_min
        self.simulation.rm.set_frequency(nodes, freq)
        job.assigned_frequency = freq
        if freq < self.ladder.f_max:
            self.slowed_starts += 1
            # Extend the walltime limit to match the frequency (as the
            # Etinski scheme and LSF EAS do), so budgeting does not
            # convert into walltime kills.
            ratio = freq / nodes[0].max_frequency
            speed = self.simulation.power_model.speed_at_ratio(
                ratio, job.mean_sensitivity
            )
            if speed < 1.0:
                job.walltime_request = job.walltime_request / speed

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "dvfs-budgeting",
                FunctionalCategory.POWER_CONTROL,
                f"start jobs at reduced frequency under "
                f"{self.budget_watts / 1e3:.0f} kW budget",
            )
        ]
