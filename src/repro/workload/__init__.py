"""Workload substrate: jobs, applications and trace generation.

Survey question 3 defines exactly the statistical envelope we model —
job counts, sizes, runtimes, queue backlog, throughput, the
capability-vs-capacity split, and the size/walltime percentile tables
of Q3(e).  This package provides the job model (including moldable
configurations and compute/memory/communication phases), a synthetic
application catalog with per-application frequency sensitivity (the
LRZ characterization target), configurable workload generators with
per-center presets, and Standard Workload Format (SWF) trace I/O.
"""

from .job import Job, JobState, MoldableConfig
from .phases import Phase, PhaseProfile, COMPUTE_BOUND, MEMORY_BOUND, COMM_BOUND, BALANCED
from .apps import Application, ApplicationCatalog, default_catalog
from .generator import WorkloadGenerator, WorkloadSpec
from .presets import center_workload_spec, CENTER_WORKLOADS
from .swf import read_swf, write_swf

__all__ = [
    "Application",
    "ApplicationCatalog",
    "BALANCED",
    "CENTER_WORKLOADS",
    "COMM_BOUND",
    "COMPUTE_BOUND",
    "Job",
    "JobState",
    "MEMORY_BOUND",
    "MoldableConfig",
    "Phase",
    "PhaseProfile",
    "WorkloadGenerator",
    "WorkloadSpec",
    "center_workload_spec",
    "default_catalog",
    "read_swf",
    "write_swf",
]
