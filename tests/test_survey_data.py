"""Tests for the survey data model, questionnaire and center data."""

import pytest

from repro.errors import SurveyError
from repro.survey import (
    IDENTIFIED_NOT_PARTICIPATING,
    MaturityStage,
    QUESTIONNAIRE,
    Technique,
    center_profile,
    survey_responses,
)
from repro.survey.data import response_for
from repro.survey.questionnaire import question, themes
from repro.survey.taxonomy import TECHNIQUE_IMPLEMENTATIONS


class TestQuestionnaire:
    def test_eight_questions(self):
        assert len(QUESTIONNAIRE) == 8
        assert [q.number for q in QUESTIONNAIRE] == list(range(1, 9))

    def test_sub_items_match_paper(self):
        assert len(question(2).sub_items) == 3  # a, b, c
        assert len(question(3).sub_items) == 5  # a-e
        assert len(question(5).sub_items) == 3
        assert len(question(8).sub_items) == 2

    def test_q3e_names_percentiles(self):
        (_, text) = question(3).sub_items[4]
        for token in ("10th", "25th", "75th", "90th"):
            assert token in text

    def test_every_question_has_rationale(self):
        assert all(q.rationale for q in QUESTIONNAIRE)

    def test_themes_unique(self):
        assert len(set(themes())) == 8

    def test_unknown_question(self):
        with pytest.raises(KeyError):
            question(9)


class TestCenterData:
    def test_nine_participants(self):
        responses = survey_responses()
        assert len(responses) == 9
        slugs = [r.profile.slug for r in responses]
        assert slugs == [
            "riken", "tokyotech", "cea", "kaust", "lrz",
            "stfc", "trinity", "cineca", "jcahpc",
        ]

    def test_two_declined(self):
        assert len(IDENTIFIED_NOT_PARTICIPATING) == 2
        assert all(not p.participated for p in IDENTIFIED_NOT_PARTICIPATING)

    def test_all_have_production_deployment(self):
        # Section V: "all sites have some type of production deployment".
        for response in survey_responses():
            assert response.by_stage(MaturityStage.PRODUCTION), (
                f"{response.profile.slug} missing production activities"
            )

    def test_response_pages_in_paper_range(self):
        pages = [r.response_pages for r in survey_responses()]
        assert min(pages) == 8
        assert max(pages) == 17

    def test_profile_lookup(self):
        riken = center_profile("riken")
        assert riken.country == "Japan"
        assert riken.region == "Asia"
        with pytest.raises(SurveyError):
            center_profile("nowhere")

    def test_response_lookup(self):
        response = response_for("kaust")
        assert response.profile.flagship_system.startswith("Shaheen")
        with pytest.raises(SurveyError):
            response_for("nowhere")

    def test_kaust_static_capping_row(self):
        kaust = response_for("kaust")
        production = kaust.by_stage(MaturityStage.PRODUCTION)
        descriptions = " ".join(a.description for a in production)
        assert "270 W" in descriptions
        assert "70%" in descriptions
        assert Technique.STATIC_NODE_CAPPING in kaust.production_techniques()

    def test_tokyotech_window_row(self):
        tokyo = response_for("tokyotech")
        descriptions = " ".join(
            a.description for a in tokyo.by_stage(MaturityStage.PRODUCTION)
        )
        assert "30 min" in descriptions
        assert Technique.DYNAMIC_CAP_TRACKING in tokyo.production_techniques()
        assert Technique.IDLE_SHUTDOWN in tokyo.production_techniques()

    def test_riken_emergency_row(self):
        riken = response_for("riken")
        assert Technique.EMERGENCY_KILL in riken.production_techniques()
        assert Technique.GRID_INTEGRATION in riken.techniques()

    def test_partners_deduplicated(self):
        cea = response_for("cea")
        partners = cea.partners()
        assert len(partners) == len(set(partners))
        assert "BULL" in partners

    def test_every_technique_has_implementation(self):
        for technique in Technique:
            assert technique in TECHNIQUE_IMPLEMENTATIONS

    def test_implementation_modules_importable(self):
        import importlib

        for module_name in set(TECHNIQUE_IMPLEMENTATIONS.values()):
            importlib.import_module(module_name)

    def test_regions_match_figure2(self):
        regions = {r.profile.region for r in survey_responses()}
        assert regions == {"Asia", "Europe", "North America", "Middle East"}
