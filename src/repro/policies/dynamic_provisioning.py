"""Windowed power-cap tracking by node provisioning — Tokyo Tech.

Table I, Tokyo Tech production: "Resource manager dynamically boots or
shuts down nodes to stay under power cap (summer only, enforced over
~30 min window).  Interacts with job scheduler to avoid killing jobs."

The control problem: keep the *window-averaged* machine power at or
below a cap by changing how many nodes are powered, never by killing
work.  Levers, in order: (1) veto job starts that would break the cap,
(2) shut down idle nodes when the window average trends high, (3) boot
nodes back when there is both queue demand and power headroom.
The seasonal predicate comes from the site's ambient model.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cluster.node import NodeState
from ..core.epa import FunctionalCategory
from ..units import check_positive
from ..workload.job import Job
from .base import Policy, _idle_rank


class DynamicProvisioningPolicy(Policy):
    """Keep windowed machine power under a cap via boot/shutdown.

    Parameters
    ----------
    cap_watts:
        The power cap to track.
    window:
        Enforcement window, seconds (paper: ~30 minutes).
    summer_only:
        If True (the Tokyo Tech configuration), the cap is enforced
        only while the site's ambient model reports summer; requires
        the simulation to carry a site.
    check_interval:
        Control-loop period.
    headroom_fraction:
        Boot new nodes only while the window average is below
        ``cap · headroom_fraction`` (hysteresis against thrash).
    """

    name = "dynamic-provisioning"

    def __init__(
        self,
        cap_watts: float,
        window: float = 1800.0,
        summer_only: bool = False,
        check_interval: float = 120.0,
        headroom_fraction: float = 0.9,
    ) -> None:
        super().__init__()
        self.cap_watts = check_positive("cap_watts", cap_watts)
        self.window = check_positive("window", window)
        self.summer_only = summer_only
        self.control_interval = check_positive("check_interval", check_interval)
        self.headroom_fraction = check_positive("headroom_fraction", headroom_fraction)
        self.veto_count = 0

    # ------------------------------------------------------------------
    def _active(self, now: float) -> bool:
        if not self.summer_only:
            return True
        site = self.simulation.site
        if site is None:
            return True
        return site.ambient.is_summer(now)

    def _job_power_delta(self, job: Job) -> float:
        """Worst-case extra power of starting *job* (idle -> busy)."""
        machine = self.simulation.machine
        # Use the machine's average node as the estimate basis.
        sample = machine.nodes[0]
        dyn = (sample.max_power - sample.idle_power) * job.mean_power_intensity
        return job.nodes * dyn

    # ------------------------------------------------------------------
    def admit(self, job: Job, now: float) -> bool:
        if not self._active(now):
            return True
        current = self.simulation.machine_power()
        if current + self._job_power_delta(job) > self.cap_watts:
            self.veto_count += 1
            return False
        return True

    def on_tick(self, now: float) -> None:
        if not self._active(now):
            return
        meter = self.simulation.meter
        rm = self.simulation.rm
        machine = self.simulation.machine
        avg = meter.window_average(self.window)

        if avg > self.cap_watts:
            # Over the windowed cap: shed idle nodes (never kill jobs).
            excess = avg - self.cap_watts
            idle = sorted(
                machine.nodes_in_state(NodeState.IDLE),
                key=_idle_rank,
            )
            shed = 0.0
            to_stop = []
            for node in idle:
                if shed >= excess:
                    break
                to_stop.append(node)
                shed += node.idle_power
            rm.shutdown_nodes(to_stop)
            return

        # Under the cap.  First: if the head of the queue is
        # power-blocked, shed idle nodes it does not need — trading
        # idle draw for job headroom is the whole point of using the
        # node count as the power lever.
        pending = self.simulation.queue.pending()
        if pending:
            head = pending[0]
            instant = self.simulation.machine_power()
            shortfall = instant + self._job_power_delta(head) - self.cap_watts
            idle = sorted(
                machine.nodes_in_state(NodeState.IDLE),
                key=_idle_rank,
            )
            surplus = len(idle) - head.nodes
            if shortfall > 0 and surplus > 0:
                shed = 0.0
                to_stop = []
                for node in idle[:surplus]:
                    if shed >= shortfall:
                        break
                    to_stop.append(node)
                    shed += node.idle_power
                rm.shutdown_nodes(to_stop)
                return

        if avg < self.cap_watts * self.headroom_fraction:
            # Headroom: boot nodes back if the queue wants them.  The
            # affordability check uses *instantaneous* power, not the
            # (lagging) window average — budgeting boots against the
            # average causes boot/shed thrash at long windows.
            demand = sum(j.nodes for j in pending[:16])
            idle_count = len(machine.nodes_in_state(NodeState.IDLE))
            booting = len(machine.nodes_in_state(NodeState.BOOTING))
            deficit = demand - idle_count - booting
            if deficit > 0:
                sample = machine.nodes[0]
                instant = self.simulation.machine_power()
                budget = self.cap_watts * self.headroom_fraction - instant
                affordable = int(budget // max(sample.idle_power, 1.0))
                if affordable > 0:
                    off = sorted(rm.off_nodes(), key=lambda n: n.node_id)
                    rm.boot_nodes(off[: min(deficit, affordable)])

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        season = "summer-only" if self.summer_only else "year-round"
        return [
            (
                "dynamic-provisioning",
                FunctionalCategory.POWER_CONTROL,
                f"track {self.cap_watts / 1e3:.0f} kW cap over "
                f"{self.window / 60:.0f} min window by boot/shutdown ({season})",
            ),
            (
                "provisioning-admission",
                FunctionalCategory.RESOURCE_CONTROL,
                "veto job starts that would break the cap",
            ),
        ]
