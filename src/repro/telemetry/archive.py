"""Long-term telemetry archive with tiered downsampling.

Tokyo Tech's research item: "Analyze collected power and energy info
archived long term and use for EPA scheduling."  Archiving years of
second-resolution samples is infeasible, so real archives downsample
with age.  This archive keeps three tiers — raw, minute means, hour
means — each with a retention horizon, and answers range queries from
the finest tier that still covers the range.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..units import check_positive


@dataclass
class _Tier:
    resolution: float
    retention: float
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    # accumulation state for downsampling
    bucket_start: Optional[float] = None
    bucket_sum: float = 0.0
    bucket_count: int = 0


class LongTermArchive:
    """Three-tier downsampling archive for one signal.

    Parameters
    ----------
    raw_retention:
        Seconds of raw samples kept (default 1 day).
    minute_retention / hour_retention:
        Retention of the 60 s and 3600 s mean tiers.
    """

    def __init__(
        self,
        raw_retention: float = 86400.0,
        minute_retention: float = 30 * 86400.0,
        hour_retention: float = 3 * 365 * 86400.0,
    ) -> None:
        check_positive("raw_retention", raw_retention)
        if not (raw_retention <= minute_retention <= hour_retention):
            raise ConfigurationError(
                "retentions must be ordered raw <= minute <= hour"
            )
        self.raw = _Tier(resolution=0.0, retention=raw_retention)
        self.minute = _Tier(resolution=60.0, retention=minute_retention)
        self.hour = _Tier(resolution=3600.0, retention=hour_retention)
        self._last_time: Optional[float] = None

    # ------------------------------------------------------------------
    def record(self, time: float, value: float) -> None:
        """Append one sample (times must be non-decreasing)."""
        if self._last_time is not None and time < self._last_time:
            raise ConfigurationError(
                f"archive samples must be time-ordered ({time} < {self._last_time})"
            )
        self._last_time = time
        self.raw.times.append(time)
        self.raw.values.append(value)
        for tier in (self.minute, self.hour):
            self._feed_tier(tier, time, value)
        self._expire(time)

    def _feed_tier(self, tier: _Tier, time: float, value: float) -> None:
        bucket = (time // tier.resolution) * tier.resolution
        if tier.bucket_start is None:
            tier.bucket_start = bucket
        if bucket != tier.bucket_start:
            if tier.bucket_count:
                tier.times.append(tier.bucket_start)
                tier.values.append(tier.bucket_sum / tier.bucket_count)
            tier.bucket_start = bucket
            tier.bucket_sum = 0.0
            tier.bucket_count = 0
        tier.bucket_sum += value
        tier.bucket_count += 1

    def _expire(self, now: float) -> None:
        for tier in (self.raw, self.minute, self.hour):
            horizon = now - tier.retention
            cut = bisect.bisect_left(tier.times, horizon)
            if cut:
                del tier.times[:cut]
                del tier.values[:cut]

    def flush(self) -> None:
        """Close any open downsampling buckets (end of simulation)."""
        for tier in (self.minute, self.hour):
            if tier.bucket_count:
                tier.times.append(tier.bucket_start)
                tier.values.append(tier.bucket_sum / tier.bucket_count)
                tier.bucket_start = None
                tier.bucket_sum = 0.0
                tier.bucket_count = 0

    # ------------------------------------------------------------------
    def query(self, start: float, end: float) -> Tuple[np.ndarray, np.ndarray]:
        """Samples in [start, end) from the finest tier covering start."""
        for tier in (self.raw, self.minute, self.hour):
            if tier.times and tier.times[0] <= start:
                return self._slice(tier, start, end)
        # Nothing covers the start; fall back to the coarsest non-empty.
        for tier in (self.hour, self.minute, self.raw):
            if tier.times:
                return self._slice(tier, start, end)
        return np.array([]), np.array([])

    @staticmethod
    def _slice(tier: _Tier, start: float, end: float) -> Tuple[np.ndarray, np.ndarray]:
        lo = bisect.bisect_left(tier.times, start)
        hi = bisect.bisect_left(tier.times, end)
        return np.asarray(tier.times[lo:hi]), np.asarray(tier.values[lo:hi])

    def mean_over(self, start: float, end: float) -> float:
        """Mean of the archived signal over [start, end)."""
        _, values = self.query(start, end)
        return float(values.mean()) if values.size else 0.0
