"""Requeue-after-kill and reserved job windows.

Two operational behaviours from Table I that complete the RIKEN row:

* **Requeue**: centers that kill jobs for power emergencies (or lose
  them to node failures) requeue them — from scratch, or from a
  checkpoint if the application writes them.  :class:`RequeuePolicy`
  resubmits killed jobs as fresh copies, optionally crediting
  checkpointed progress.
* **Reserved windows**: "3 days for large jobs each month" — during a
  reserved window only jobs of the designated class (queue or minimum
  size) may start; outside it, large jobs wait.
  :class:`ReservedWindowPolicy` implements both directions of the
  gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.allocator import check_pool
from ..core.epa import FunctionalCategory
from ..errors import AllocationError, PolicyError
from ..units import DAY, check_non_negative, check_positive
from ..workload.job import Job, JobState
from .base import Policy


class RequeuePolicy(Policy):
    """Resubmit killed jobs as fresh copies.

    Parameters
    ----------
    max_retries:
        Per-original-job resubmission limit.
    checkpoint_interval:
        If set, applications checkpoint this often: the requeued copy
        carries only the work since the last checkpoint.  ``None``
        models restart-from-scratch.
    reasons:
        Only kills whose reason contains one of these substrings are
        requeued (default: all kills).
    delay:
        Seconds between the kill and the resubmission.
    """

    name = "requeue"

    def __init__(
        self,
        max_retries: int = 2,
        checkpoint_interval: Optional[float] = None,
        reasons: Tuple[str, ...] = (),
        delay: float = 60.0,
    ) -> None:
        super().__init__()
        if max_retries < 1:
            raise PolicyError("max_retries must be >= 1")
        self.max_retries = int(max_retries)
        if checkpoint_interval is not None:
            check_positive("checkpoint_interval", checkpoint_interval)
        self.checkpoint_interval = checkpoint_interval
        self.reasons = tuple(reasons)
        self.delay = check_non_negative("delay", delay)
        self.requeued = 0
        self.work_salvaged = 0.0
        #: Kills not requeued because the surviving machine can never
        #: fit the job again (nodes drained/failed below its size).
        self.dropped = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _retry_index(job_id: str) -> Tuple[str, int]:
        """Split ``base-rN`` ids into (base, N)."""
        if "-r" in job_id:
            base, _, suffix = job_id.rpartition("-r")
            if suffix.isdigit():
                return base, int(suffix)
        return job_id, 0

    def _matches_reason(self, reason: str) -> bool:
        if not self.reasons:
            return True
        return any(token in reason for token in self.reasons)

    def _remaining_work(self, job: Job) -> float:
        """Work the requeued copy must redo."""
        run = job.run_time or 0.0
        done = min(run, job.work_seconds)  # conservative: speed <= 1
        if self.checkpoint_interval is None:
            return job.work_seconds
        checkpointed = (done // self.checkpoint_interval) * self.checkpoint_interval
        self.work_salvaged += checkpointed
        return max(1.0, job.work_seconds - checkpointed)

    def on_job_end(self, job: Job, now: float) -> None:
        if job.state is not JobState.KILLED:
            return
        if not self._matches_reason(job.kill_reason):
            return
        base, retry = self._retry_index(job.job_id)
        if retry >= self.max_retries:
            return
        # Capacity sanity before resubmitting: a copy wider than the
        # surviving machine would sit in the queue forever (nodes may
        # have been drained or failed since the original started).
        nodes = job.nodes
        work = None
        walltime = job.walltime_request
        try:
            check_pool(self.simulation.usable_node_count, nodes)
        except AllocationError as exc:
            # The structured shortfall tells us how much capacity is
            # left: fall back to a moldable configuration that fits
            # it, or drop the job instead of queueing it unrunnably.
            fitting = [
                cfg for cfg in job.moldable if cfg.nodes <= exc.available
            ]
            if not fitting:
                self.dropped += 1
                return
            chosen = min(fitting, key=lambda c: (c.work_seconds, c.nodes))
            nodes = chosen.nodes
            # A reshaped restart redoes the chosen configuration's full
            # work (checkpoints of the old shape do not transfer).
            work = chosen.work_seconds
            scale = chosen.work_seconds / job.work_seconds
            walltime = max(chosen.work_seconds, job.walltime_request * scale)
        copy = Job(
            job_id=f"{base}-r{retry + 1}",
            nodes=nodes,
            work_seconds=self._remaining_work(job) if work is None else work,
            walltime_request=walltime,
            submit_time=now + self.delay,
            user=job.user,
            profile=job.profile,
            app_name=job.app_name,
            tag=job.tag,
            memory_gb_per_node=job.memory_gb_per_node,
            priority=job.priority,
            queue=job.queue,
            moldable=job.moldable,
        )
        self.simulation.resubmit_job(copy)
        self.requeued += 1

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        mode = ("checkpointed" if self.checkpoint_interval is not None
                else "from scratch")
        return [(
            "requeue",
            FunctionalCategory.RESOURCE_CONTROL,
            f"resubmit killed jobs {mode}, up to {self.max_retries} retries",
        )]


@dataclass(frozen=True)
class ReservedWindow:
    """One recurring reserved period."""

    start: float          # first window's opening time, seconds
    duration: float       # window length, seconds
    period: float = 30 * DAY  # recurrence (RIKEN: monthly)

    def active_at(self, time: float) -> bool:
        """True while a window occurrence is in force."""
        if time < self.start:
            return False
        phase = (time - self.start) % self.period
        return phase < self.duration


class ReservedWindowPolicy(Policy):
    """Dedicate recurring windows to a class of jobs.

    RIKEN: "3 days for large jobs each month."  During a window, only
    *large* jobs (>= ``min_nodes`` or in ``reserved_queue``) may start;
    outside the window, those jobs are held.  Small jobs fill the rest
    of the month.

    Parameters
    ----------
    window:
        The recurring reservation.
    min_nodes:
        Jobs at least this large belong to the reserved class.
    reserved_queue:
        Alternatively (or additionally), jobs in this queue belong to
        the reserved class.
    exclusive:
        If True (RIKEN's arrangement), small jobs may NOT start inside
        the window either — it is dedicated capability time.
    """

    name = "reserved-windows"

    def __init__(
        self,
        window: ReservedWindow,
        min_nodes: int = 0,
        reserved_queue: str = "",
        exclusive: bool = True,
    ) -> None:
        super().__init__()
        if min_nodes <= 0 and not reserved_queue:
            raise PolicyError("need min_nodes or reserved_queue")
        self.window = window
        self.min_nodes = int(min_nodes)
        self.reserved_queue = reserved_queue
        self.exclusive = exclusive
        self.held_large = 0
        self.held_small = 0

    def _is_reserved_class(self, job: Job) -> bool:
        if self.min_nodes > 0 and job.nodes >= self.min_nodes:
            return True
        return bool(self.reserved_queue) and job.queue == self.reserved_queue

    def admit(self, job: Job, now: float) -> bool:
        in_window = self.window.active_at(now)
        if self._is_reserved_class(job):
            if not in_window:
                self.held_large += 1
            return in_window
        if in_window and self.exclusive:
            self.held_small += 1
            return False
        return True

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [(
            "reserved-windows",
            FunctionalCategory.RESOURCE_CONTROL,
            f"{self.window.duration / DAY:.0f}-day reserved period every "
            f"{self.window.period / DAY:.0f} days for the large-job class",
        )]
