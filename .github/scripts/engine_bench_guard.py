"""Fail CI when a batched engine path loses its measured advantage.

Compares the freshly produced ``benchmarks/out/BENCH_engine.json``
against the committed baseline in ``benchmarks/baseline/``.  Wall
clocks on shared CI runners are noisy, so the guard compares *speedup
ratios* (batched vs scalar on the same host), not absolute seconds:
for every section present in both files, the fresh speedup must be at
least ``(1 - TOLERANCE)`` of the committed one.

Usage: python .github/scripts/engine_bench_guard.py [fresh] [baseline]
"""

from __future__ import annotations

import json
import pathlib
import sys

TOLERANCE = 0.20  # fail when the batched path regresses by more than 20%


def main() -> int:
    fresh_path = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1 else "benchmarks/out/BENCH_engine.json"
    )
    base_path = pathlib.Path(
        sys.argv[2]
        if len(sys.argv) > 2
        else "benchmarks/baseline/BENCH_engine.json"
    )
    fresh = json.loads(fresh_path.read_text())
    baseline = json.loads(base_path.read_text())

    failures = []
    checked = 0
    for section, base in sorted(baseline.items()):
        base_speedup = base.get("speedup")
        if base_speedup is None or section not in fresh:
            continue
        got = fresh[section].get("speedup")
        if got is None:
            failures.append(f"{section}: fresh run recorded no speedup")
            continue
        checked += 1
        floor = base_speedup * (1.0 - TOLERANCE)
        verdict = "ok" if got >= floor else "REGRESSED"
        print(
            f"{section}: speedup {got:.2f}x vs baseline {base_speedup:.2f}x "
            f"(floor {floor:.2f}x) — {verdict}"
        )
        if got < floor:
            failures.append(
                f"{section}: {got:.2f}x < {floor:.2f}x "
                f"(baseline {base_speedup:.2f}x - {TOLERANCE:.0%})"
            )

    if not checked:
        print("no overlapping speedup sections — nothing to guard", file=sys.stderr)
        return 1
    if failures:
        print("\nbatched-path regression:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"{checked} section(s) within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
