"""Experiment ``exp-centers``: the capability matrix, executed.

Runs all nine center scenarios side by side (same seed, same simulated
span, scaled machines) and prints the comparative table the survey
could not include: what each center's production policy stack actually
does to utilization, waiting, power and energy.  The assertions pin
the per-center signatures from Tables I/II.
"""

from __future__ import annotations

from repro.analysis.report import render_columns
from repro.centers import build_center_simulation, center_slugs
from repro.units import HOUR

from .conftest import write_artifact


def test_bench_all_centers(benchmark, artifact_dir):
    def run_all():
        out = {}
        for slug in center_slugs():
            build = build_center_simulation(slug, seed=13,
                                            duration=4 * HOUR, nodes=48)
            result = build.simulation.run()
            out[slug] = (build, result)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for slug, (build, result) in results.items():
        m = result.metrics
        rows.append([
            slug,
            f"{m.jobs_completed}/{m.jobs_submitted}",
            f"{m.utilization:.2f}",
            f"{m.mean_wait:.0f}",
            f"{m.average_power_watts / 1e3:.1f}",
            f"{m.peak_power_watts / 1e3:.1f}",
            f"{m.total_energy_joules / 3.6e6:.1f}",
            f"{m.jobs_killed}",
        ])
    write_artifact(
        "exp-centers",
        "EXP-CENTERS — the nine scenarios executed "
        "(48 nodes, 4 simulated hours, seed 13)\n\n"
        + render_columns(
            ["center", "done", "util", "wait[s]", "avg kW", "peak kW",
             "kWh", "killed"],
            rows,
        )
        + "\n\nScenario notes:\n"
        + "\n".join(
            f"  {slug}: {'; '.join(build.notes)}"
            for slug, (build, _r) in results.items()
        ),
    )

    # Per-center signatures (Tables I/II).
    for slug, (build, result) in results.items():
        m = result.metrics
        assert m.jobs_completed >= 0.5 * m.jobs_submitted, slug

    # Tokyo Tech: cooperative — never kills.
    assert results["tokyotech"][1].metrics.jobs_killed == 0
    # KAUST: 70% of nodes capped at 270 W.
    kaust_machine = results["kaust"][0].simulation.machine
    assert sum(1 for n in kaust_machine.nodes if n.power_cap == 270.0) \
        == round(0.7 * len(kaust_machine))
    # STFC: monitoring only — nothing capped, nothing powered down.
    stfc = results["stfc"][0].simulation
    assert all(n.power_cap is None for n in stfc.machine.nodes)
    # JCAHPC: every node under a group cap.
    jcahpc = results["jcahpc"][0].simulation
    assert all(n.power_cap is not None for n in jcahpc.machine.nodes)
    # RIKEN: the emergency limit is armed below peak.
    riken_policies = results["riken"][0].simulation.policies
    assert riken_policies[0].limit_watts < \
        results["riken"][0].simulation.machine.peak_power
