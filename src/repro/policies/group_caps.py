"""Group power caps — JCAHPC's production deployment.

Table II, JCAHPC: "Ability to set power caps for groups of nodes via
the resource manager (Fujitsu proprietary product)" plus "Manual
emergency response, admin sets power cap."  Groups are named node-id
sets; a group cap divides evenly among the group's nodes (that is what
the Fujitsu mechanism enforces at the hardware level).  The admin
emergency path is the :meth:`set_group_cap` method, callable at any
simulated time (see also :class:`~repro.policies.manual.ManualActionPolicy`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..core.epa import FunctionalCategory
from ..errors import PolicyError
from .base import Policy


class GroupCapPolicy(Policy):
    """Named node groups with per-group power caps.

    Parameters
    ----------
    groups:
        Mapping of group name to node-id iterable.  Groups must be
        disjoint.
    caps_watts:
        Initial per-group total caps (may be partial; uncapped groups
        run free until :meth:`set_group_cap` is called).
    """

    name = "group-caps"

    def __init__(
        self,
        groups: Dict[str, Iterable[int]],
        caps_watts: Optional[Dict[str, float]] = None,
    ) -> None:
        super().__init__()
        self.groups: Dict[str, List[int]] = {
            name: sorted(int(i) for i in ids) for name, ids in groups.items()
        }
        seen: set = set()
        for name, ids in self.groups.items():
            if not ids:
                raise PolicyError(f"group {name!r} is empty")
            overlap = seen & set(ids)
            if overlap:
                raise PolicyError(f"group {name!r} overlaps others on nodes {sorted(overlap)}")
            seen |= set(ids)
        self.caps_watts: Dict[str, float] = dict(caps_watts or {})
        self.cap_changes = 0

    def on_attach(self) -> None:
        machine = self.simulation.machine
        for name, ids in self.groups.items():
            for nid in ids:
                machine.node(nid)  # validates existence
        for name, cap in list(self.caps_watts.items()):
            self.set_group_cap(name, cap)

    # ------------------------------------------------------------------
    def set_group_cap(self, group: str, cap_watts: Optional[float]) -> None:
        """Set (or clear) the total cap of *group*, split per node."""
        if group not in self.groups:
            raise PolicyError(f"unknown group {group!r}")
        machine = self.simulation.machine
        ids = self.groups[group]
        nodes = [machine.node(nid) for nid in ids]
        if cap_watts is None:
            self.simulation.rm.set_power_cap(nodes, None)
            self.caps_watts.pop(group, None)
        else:
            per_node = cap_watts / len(nodes)
            floor = max(n.cap_floor for n in nodes)
            if per_node < floor:
                raise PolicyError(
                    f"group {group!r}: cap {cap_watts:.0f} W gives "
                    f"{per_node:.1f} W/node, below floor {floor:.1f} W"
                )
            self.simulation.rm.set_power_cap(nodes, per_node)
            self.caps_watts[group] = cap_watts
        self.cap_changes += 1

    def group_power(self, group: str) -> float:
        """Measured instantaneous power of *group*, watts."""
        if group not in self.groups:
            raise PolicyError(f"unknown group {group!r}")
        machine = self.simulation.machine
        total = 0.0
        for nid in self.groups[group]:
            node = machine.node(nid)
            total += self.simulation._node_operating_point(node).watts
        return total

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "group-caps",
                FunctionalCategory.POWER_CONTROL,
                f"{len(self.groups)} node groups with admin-settable caps",
            )
        ]
