"""Thermal environment: ambient temperature and cooling efficiency.

Three surveyed behaviours hinge on the thermal environment:

* Tokyo Tech enforces its power cap *in summer only* — ambient drives
  the facility's effective power headroom;
* RIKEN pre-estimates each job's power "based on temperature";
* LRZ investigates delaying jobs "when IT infrastructure is
  particularly inefficient" — cooling efficiency varies with outdoor
  conditions (free cooling in winter, chillers in summer).

:class:`AmbientModel` produces a deterministic seasonal + diurnal
temperature signal with optional noise; :class:`CoolingModel` maps
ambient temperature to a coefficient of performance (COP) and thus to
the facility overhead watts per IT watt.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..units import DAY, check_positive

#: Days per (model) year; calendar precision is irrelevant here.
YEAR_DAYS = 365.0


class AmbientModel:
    """Seasonal + diurnal ambient (outdoor) temperature, Celsius.

    ``T(t) = mean + seasonal·sin(2π(d - phase)/365) + diurnal·sin(2π h/24 - π/2) + noise``

    where *d* is the day of year and *h* the hour of day of simulated
    time *t* (t=0 is midnight, January 1).  The diurnal term peaks at
    14:00, roughly matching real daily cycles.
    """

    def __init__(
        self,
        mean: float = 12.0,
        seasonal_amplitude: float = 10.0,
        diurnal_amplitude: float = 4.0,
        phase_days: float = 105.0,
        noise_std: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.mean = float(mean)
        self.seasonal_amplitude = float(seasonal_amplitude)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.phase_days = float(phase_days)
        self.noise_std = float(noise_std)
        self._rng = rng

    def temperature(self, time: float) -> float:
        """Ambient temperature at simulated *time* (seconds)."""
        day = (time / DAY) % YEAR_DAYS
        hour = (time % DAY) / 3600.0
        t = self.mean
        t += self.seasonal_amplitude * math.sin(
            2.0 * math.pi * (day - self.phase_days) / YEAR_DAYS
        )
        t += self.diurnal_amplitude * math.sin(2.0 * math.pi * hour / 24.0 - math.pi / 2.0)
        if self.noise_std > 0.0 and self._rng is not None:
            t += float(self._rng.normal(0.0, self.noise_std))
        return t

    def is_summer(self, time: float) -> bool:
        """True during the warm half-season (day 152..243 ~= Jun-Aug).

        Tokyo Tech's dynamic capping is "summer only"; this predicate is
        what that policy consults.
        """
        day = (time / DAY) % YEAR_DAYS
        return 152.0 <= day < 244.0


class CoolingModel:
    """Cooling overhead as a function of ambient temperature.

    The coefficient of performance degrades linearly with ambient
    temperature between a free-cooling regime and a worst-case regime:

    * at or below ``free_cooling_below`` °C: ``cop_max`` (cheap cooling),
    * at or above ``design_ambient`` °C: ``cop_min`` (struggling chillers).

    Facility overhead power for an IT load L is ``L / cop(T)``; the
    instantaneous PUE is therefore ``1 + 1/cop(T)``.
    """

    def __init__(
        self,
        cop_max: float = 8.0,
        cop_min: float = 2.5,
        free_cooling_below: float = 8.0,
        design_ambient: float = 32.0,
    ) -> None:
        self.cop_max = check_positive("cop_max", cop_max)
        self.cop_min = check_positive("cop_min", cop_min)
        if self.cop_min > self.cop_max:
            raise ValueError("cop_min must be <= cop_max")
        self.free_cooling_below = float(free_cooling_below)
        self.design_ambient = float(design_ambient)
        if self.design_ambient <= self.free_cooling_below:
            raise ValueError("design_ambient must exceed free_cooling_below")

    def cop(self, ambient_c: float) -> float:
        """Coefficient of performance at the given ambient temperature."""
        if ambient_c <= self.free_cooling_below:
            return self.cop_max
        if ambient_c >= self.design_ambient:
            return self.cop_min
        frac = (ambient_c - self.free_cooling_below) / (
            self.design_ambient - self.free_cooling_below
        )
        return self.cop_max + frac * (self.cop_min - self.cop_max)

    def overhead_watts(self, it_watts: float, ambient_c: float) -> float:
        """Facility overhead (cooling) power for an IT load, watts."""
        if it_watts <= 0.0:
            return 0.0
        return it_watts / self.cop(ambient_c)

    def pue(self, ambient_c: float) -> float:
        """Instantaneous power usage effectiveness at this ambient."""
        return 1.0 + 1.0 / self.cop(ambient_c)
