"""RIKEN (K computer) scenario — Table I row 1.

Production: reserved large-job days each month; automated emergency
job killing if the power limit is exceeded; pre-run temperature-based
power estimates.  Research: grid vs. gas-turbine supply decision
(exercised by the `exp-demand-response` bench via
:mod:`repro.grid.supply`).
"""

from __future__ import annotations

from typing import Optional

from ..cluster.thermal import AmbientModel
from ..core.backfill import EasyBackfillScheduler
from ..core.queue import QueueConfig
from ..core.simulation import ClusterSimulation
from ..policies.emergency import EmergencyPowerPolicy
from ..policies.reporting import EnergyReportingPolicy
from ..policies.requeue import RequeuePolicy, ReservedWindow, ReservedWindowPolicy
from ..units import DAY
from .base import CenterBuild, center_workload, standard_machine, standard_site


def build_simulation(
    seed: int = 0,
    duration: float = 2.0 * DAY,
    nodes: int = 128,
    power_limit_fraction: float = 0.85,
    reserved_window: Optional[ReservedWindow] = None,
) -> CenterBuild:
    """Assemble the RIKEN scenario.

    The emergency limit defaults to 85 % of machine peak — tight enough
    that the prediction gate and (rarely) the killer engage.  Pass a
    :class:`ReservedWindow` to enable the monthly large-job days gate
    (off by default: short scenario runs would otherwise hold all
    large jobs until a window that never opens in-run).
    """
    # K computer: SPARC64 VIIIfx nodes, modest per-node power, torus.
    machine = standard_machine(
        "k-computer", nodes=nodes, idle_power=60.0, max_power=180.0,
        interconnect="torus3d", seed=seed,
    )
    site = standard_site(
        "riken", machine, region="Asia",
        ambient=AmbientModel(mean=15.0, seasonal_amplitude=10.0),
    )
    limit = machine.peak_power * power_limit_fraction
    queues = [
        QueueConfig("default", priority=0),
        # The capability class: large jobs get their own queue.
        QueueConfig("large", priority=10, max_nodes=None),
    ]
    workload = center_workload("riken", machine, duration=duration, seed=seed)
    for job in workload:
        if job.nodes >= max(2, len(machine) // 4):
            job.queue = "large"
    policies = [
        EmergencyPowerPolicy(limit_watts=limit, grace_period=300.0),
        # Killed jobs are requeued from scratch (no system checkpoints
        # on the K computer's emergency path).
        RequeuePolicy(max_retries=1, reasons=("power",)),
        EnergyReportingPolicy(),
    ]
    notes = [
        f"emergency limit {limit / 1e3:.0f} kW "
        f"({power_limit_fraction:.0%} of peak)",
        "power-killed jobs requeued once",
    ]
    if reserved_window is not None:
        policies.insert(0, ReservedWindowPolicy(
            reserved_window, reserved_queue="large", exclusive=True,
        ))
        notes.append(
            f"{reserved_window.duration / DAY:.0f}-day large-job window "
            f"every {reserved_window.period / DAY:.0f} days"
        )
    simulation = ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        workload,
        policies=policies,
        queue_configs=queues,
        site=site,
        seed=seed,
        cap_watts_for_metrics=limit,
    )
    return CenterBuild("riken", simulation, notes=notes)
