"""Power metering and energy integration.

STFC's production capability is "continuously collecting power and
energy system monitoring info, data center, machine, and job levels";
every other surveyed control loop (Tokyo Tech's windowed cap, RIKEN's
emergency kill) consumes such measurements.  A :class:`PowerMeter`
samples a power source periodically on the simulator, keeps the full
time series, and integrates energy with the trapezoidal rule.
"""

from __future__ import annotations

import bisect
from typing import Callable, Optional, Tuple

import numpy as np

from ..buffers import sample_buffer, series_view
from ..compat import trapezoid
from ..simulator.engine import Simulator
from ..simulator.events import EventPriority
from ..simulator.trace import TraceRecorder
from ..units import check_positive


class PowerMeter:
    """Periodic sampler of one power signal.

    Parameters
    ----------
    sim:
        The simulator to schedule sampling on.
    source:
        Zero-argument callable returning the instantaneous power in
        watts (e.g. ``capmc.get_power`` or a job's node-sum).
    interval:
        Sampling period in seconds.
    name:
        Identifier used in trace records (``power.sample`` category).
    trace:
        Optional trace recorder to mirror samples into.
    """

    def __init__(
        self,
        sim: Simulator,
        source: Callable[[], float],
        interval: float = 60.0,
        name: str = "machine",
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.sim = sim
        self.source = source
        self.interval = check_positive("interval", interval)
        self.name = name
        self.trace = trace
        # C-double buffers: one sample is appended per interval for the
        # whole simulation, so storage compactness matters (8 bytes vs
        # a boxed float each) and appends stay allocation-light.
        self._times = sample_buffer()
        self._watts = sample_buffer()
        self._energy_joules = 0.0
        self._handle = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic sampling (takes an immediate first sample)."""
        self.sample()
        self._handle = self.sim.every(
            self.interval,
            self.sample,
            priority=EventPriority.MONITOR,
            name=f"meter:{self.name}",
        )

    def stop(self) -> None:
        """Stop sampling; the series and energy remain queryable."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def sample(self) -> float:
        """Take one sample now; returns the measured watts.

        A sample at the timestamp of the previous sample *replaces* it
        (e.g. ``finalize()`` sampling right after a periodic sample at
        the same instant), and the trapezoid already integrated up to
        that timestamp is corrected for the new endpoint value — the
        series never holds two samples at one time, which would skew
        the energy integral.
        """
        watts = float(self.source())
        now = self.sim.now
        if self._times and now > self._times[-1]:
            # Trapezoidal energy between the previous and this sample.
            dt = now - self._times[-1]
            self._energy_joules += 0.5 * (self._watts[-1] + watts) * dt
        if self._times and now == self._times[-1]:
            if len(self._times) > 1:
                dt = self._times[-1] - self._times[-2]
                self._energy_joules += 0.5 * (watts - self._watts[-1]) * dt
            self._watts[-1] = watts
        else:
            self._times.append(now)
            self._watts.append(watts)
        if self.trace is not None:
            self.trace.emit(now, "power.sample", meter=self.name, watts=watts)
        return watts

    def record_batch(self, times: np.ndarray, watts: np.ndarray) -> None:
        """Append many pre-measured samples in one call.

        The bulk twin of :meth:`sample` for cohort-batched producers
        and checkpoint restore: *times* must be strictly increasing
        and lie strictly after the last recorded sample.  Energy is
        integrated with the same trapezoidal rule, vectorized over the
        whole batch (including the junction with the existing series);
        the reduction order differs from the incremental loop, so the
        accumulated energy may differ in the last ulp — callers that
        need bit-exact continuity (checkpoint restore) overwrite
        :attr:`energy_joules` from their own record afterwards.
        """
        t = np.ascontiguousarray(times, dtype=np.float64)
        w = np.ascontiguousarray(watts, dtype=np.float64)
        if t.ndim != 1 or t.shape != w.shape:
            raise ValueError(
                f"times/watts must be matching 1-d arrays, got {t.shape} vs {w.shape}"
            )
        if t.size == 0:
            return
        if np.any(np.diff(t) <= 0.0):
            raise ValueError("batch times must be strictly increasing")
        if self._times:
            if t[0] <= self._times[-1]:
                raise ValueError(
                    f"batch starts at {t[0]}, not after last sample "
                    f"at {self._times[-1]}"
                )
            tt = np.concatenate(([self._times[-1]], t))
            ww = np.concatenate(([self._watts[-1]], w))
        else:
            tt, ww = t, w
        if tt.size >= 2:
            self._energy_joules += float(trapezoid(ww, tt))
        # array('d') bulk append straight from the float64 buffers.
        self._times.frombytes(t.tobytes())
        self._watts.frombytes(w.tobytes())

    # ------------------------------------------------------------------
    @property
    def energy_joules(self) -> float:
        """Energy integrated so far, joules."""
        return self._energy_joules

    @property
    def num_samples(self) -> int:
        """Number of samples recorded."""
        return len(self._times)

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """The sampled (times, watts) series as numpy arrays."""
        return series_view(self._times), series_view(self._watts)

    def peak_watts(self) -> float:
        """Maximum sampled power (0 with no samples)."""
        return max(self._watts) if self._watts else 0.0

    def average_watts(self) -> float:
        """Time-weighted average power over the sampled span."""
        if len(self._times) < 2:
            return self._watts[0] if self._watts else 0.0
        span = self._times[-1] - self._times[0]
        return self._energy_joules / span if span > 0 else self._watts[-1]

    def window_average(self, window: float) -> float:
        """Time-weighted average over the trailing *window* seconds.

        This is the quantity Tokyo Tech's enforcement loop watches: the
        cap must hold "over a ~30 min window", not instant by instant.
        Only the trailing slice is touched (control loops call this
        every tick over ever-growing histories).
        """
        if not self._times:
            return 0.0
        start = self._times[-1] - window
        lo = bisect.bisect_left(self._times, start)
        if len(self._times) - lo < 2:
            return float(self._watts[-1])
        tt = np.asarray(self._times[lo:])
        ww = np.asarray(self._watts[lo:])
        energy = float(trapezoid(ww, tt))
        span = float(tt[-1] - tt[0])
        return energy / span if span > 0 else float(ww[-1])

    def exceedance_fraction(self, limit: float, rel_tol: float = 1e-6) -> float:
        """Fraction of samples above *limit* (cap violations).

        A sample counts as exceeding only when it is more than
        ``limit · rel_tol`` above the limit, so caps enforced exactly
        at the limit do not register as violations through float
        round-off.
        """
        if not self._watts:
            return 0.0
        threshold = limit * (1.0 + rel_tol)
        above = sum(1 for w in self._watts if w > threshold)
        return above / len(self._watts)
