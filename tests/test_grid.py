"""Tests for the ESP/grid substrate."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.grid import (
    DemandResponseEvent,
    DualSourceSupply,
    ElectricityPriceSchedule,
    ElectricityServiceProvider,
    GridEventSchedule,
    RegionMarket,
)
from repro.units import DAY, HOUR


class TestPriceSchedule:
    def test_flat(self):
        schedule = ElectricityPriceSchedule.flat(0.10)
        assert schedule.price_at(0.0) == 0.10
        assert schedule.price_at(13 * HOUR) == 0.10

    def test_day_night(self):
        schedule = ElectricityPriceSchedule.day_night(0.20, 0.08)
        assert schedule.price_at(3 * HOUR) == 0.08
        assert schedule.price_at(12 * HOUR) == 0.20
        assert schedule.price_at(23 * HOUR) == 0.08

    def test_wraps_across_days(self):
        schedule = ElectricityPriceSchedule.day_night(0.20, 0.08)
        assert schedule.price_at(26 * HOUR) == schedule.price_at(2 * HOUR)

    def test_gap_rejected(self):
        with pytest.raises(ConfigurationError):
            ElectricityPriceSchedule(((0.0, 10.0, 0.1), (11.0, 24.0, 0.1)))

    def test_partial_coverage_rejected(self):
        with pytest.raises(ConfigurationError):
            ElectricityPriceSchedule(((0.0, 20.0, 0.1),))

    def test_negative_price_rejected(self):
        with pytest.raises(ConfigurationError):
            ElectricityPriceSchedule(((0.0, 24.0, -0.1),))


class TestEsp:
    def test_cost_of_series(self):
        esp = ElectricityServiceProvider(ElectricityPriceSchedule.flat(0.10))
        # 1000 W for 2 hours = 2 kWh at 0.10 = 0.20.
        cost = esp.cost_of([0.0, HOUR, 2 * HOUR], [1000.0, 1000.0, 1000.0])
        assert cost == pytest.approx(0.20)

    def test_demand_penalty(self):
        esp = ElectricityServiceProvider(
            ElectricityPriceSchedule.flat(0.10),
            demand_limit_watts=500.0,
            penalty_per_kwh=1.0,
        )
        cost = esp.cost_of([0.0, HOUR], [1000.0, 1000.0])
        # 1 kWh at 0.10 + 0.5 kWh excess at 1.0.
        assert cost == pytest.approx(0.10 + 0.50)

    def test_mismatched_lengths_rejected(self):
        esp = ElectricityServiceProvider(ElectricityPriceSchedule.flat(0.1))
        with pytest.raises(ConfigurationError):
            esp.cost_of([0.0], [1.0, 2.0])


class TestGridEvents:
    def test_active_and_next(self):
        events = GridEventSchedule([
            DemandResponseEvent(100.0, 200.0, 1000.0),
            DemandResponseEvent(300.0, 400.0, 2000.0),
        ])
        assert events.active_event(150.0).limit_watts == 1000.0
        assert events.active_event(250.0) is None
        assert events.next_event(250.0).start == 300.0
        assert events.next_event(500.0) is None

    def test_limit_at(self):
        events = GridEventSchedule([DemandResponseEvent(0.0, 10.0, 500.0)])
        assert events.limit_at(5.0) == 500.0
        assert events.limit_at(20.0) == float("inf")
        assert events.limit_at(20.0, default=9.0) == 9.0

    def test_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            GridEventSchedule([
                DemandResponseEvent(0.0, 100.0, 1.0),
                DemandResponseEvent(50.0, 150.0, 1.0),
            ])

    def test_event_validation(self):
        with pytest.raises(ConfigurationError):
            DemandResponseEvent(10.0, 5.0, 100.0)
        with pytest.raises(ConfigurationError):
            DemandResponseEvent(0.0, 10.0, 0.0)


class TestDualSourceSupply:
    def _supply(self, turbine_cost):
        return DualSourceSupply(
            ElectricityPriceSchedule.day_night(0.30, 0.05),
            turbine_capacity_watts=5000.0,
            turbine_cost_per_kwh=turbine_cost,
        )

    def test_turbine_wins_at_peak(self):
        supply = self._supply(turbine_cost=0.15)
        decision = supply.decide(12 * HOUR, 4000.0)  # daytime: grid 0.30
        assert decision.turbine_watts == 4000.0
        assert decision.grid_watts == 0.0

    def test_grid_wins_at_night(self):
        supply = self._supply(turbine_cost=0.15)
        decision = supply.decide(2 * HOUR, 4000.0)  # night: grid 0.05
        assert decision.grid_watts == 4000.0
        assert decision.turbine_watts == 0.0

    def test_turbine_capacity_limits(self):
        supply = self._supply(turbine_cost=0.01)
        decision = supply.decide(12 * HOUR, 8000.0)
        assert decision.turbine_watts == 5000.0
        assert decision.grid_watts == 3000.0
        assert decision.total_watts == 8000.0

    def test_cost_accounting(self):
        supply = self._supply(turbine_cost=0.15)
        decision = supply.decide(12 * HOUR, 2000.0)
        assert decision.cost_per_hour == pytest.approx(2.0 * 0.15)

    def test_daily_cost_integrates_tariff(self):
        cheap_turbine = self._supply(turbine_cost=0.01).daily_cost(1000.0)
        no_turbine = DualSourceSupply(
            ElectricityPriceSchedule.day_night(0.30, 0.05),
            turbine_capacity_watts=0.0,
            turbine_cost_per_kwh=0.01,
        ).daily_cost(1000.0)
        assert cheap_turbine < no_turbine

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DualSourceSupply(ElectricityPriceSchedule.flat(0.1), -1.0, 0.1)
        supply = self._supply(0.1)
        with pytest.raises(ConfigurationError):
            supply.decide(0.0, -5.0)

    def test_daily_cost_sampling_grid(self):
        # Day band [8, 20) aligns with both the 2-hour (samples=12) and
        # the half-hour (samples=48) grids, so the Riemann sum is exact
        # and must match the analytic integral: with the turbine (0.15)
        # undercutting the day tariff (0.30) and the grid winning at
        # night (0.05), 1 kW costs 12h*0.15 + 12h*0.05 = 2.40 per day.
        supply = DualSourceSupply(
            ElectricityPriceSchedule.day_night(0.30, 0.05, 8.0, 20.0),
            turbine_capacity_watts=5000.0,
            turbine_cost_per_kwh=0.15,
        )
        expected = 12 * 0.15 + 12 * 0.05
        assert supply.daily_cost(1000.0, samples=12) == pytest.approx(expected)
        assert supply.daily_cost(1000.0, samples=48) == pytest.approx(expected)

    def test_daily_cost_small_sample_counts_span_the_day(self):
        # The pre-fix bug: samples != 24 walked 1-hour steps and only
        # covered the first `samples` hours.  With a day band starting
        # at hour 8, samples=4 (6-hour steps at hours 0/6/12/18) must
        # still see the day tariff.
        supply = DualSourceSupply(
            ElectricityPriceSchedule.day_night(0.30, 0.05, 8.0, 20.0),
            turbine_capacity_watts=0.0,
            turbine_cost_per_kwh=1.0,
        )
        cost = supply.daily_cost(1000.0, samples=4)
        # hours 0 and 6 are night; 12 and 18 are day; each weighted 6 h.
        assert cost == pytest.approx(6 * (2 * 0.05 + 2 * 0.30))

    def test_daily_cost_rejects_zero_samples(self):
        supply = self._supply(0.1)
        with pytest.raises(ConfigurationError):
            supply.daily_cost(1000.0, samples=0)


class TestVectorizedPricing:
    def test_prices_at_matches_scalar(self):
        schedule = ElectricityPriceSchedule.day_night(0.23, 0.11, 6.5, 19.25)
        rng = np.random.default_rng(7)
        times = rng.uniform(0.0, 3 * DAY, size=400)
        vector = schedule.prices_at(times)
        scalar = [schedule.price_at(t) for t in times]
        assert vector.tolist() == scalar

    def test_prices_at_band_boundaries(self):
        schedule = ElectricityPriceSchedule.day_night(0.2, 0.1, 7.0, 21.0)
        times = [0.0, 7 * HOUR, 21 * HOUR, 24 * HOUR, 31 * HOUR]
        assert schedule.prices_at(times).tolist() == [
            0.1, 0.2, 0.1, 0.1, 0.2,
        ]

    def test_hour_24_wraps_to_zero(self):
        schedule = ElectricityPriceSchedule.day_night(0.2, 0.1)
        assert schedule.price_at(24 * HOUR) == schedule.price_at(0.0)
        assert schedule.prices_at([24 * HOUR])[0] == 0.1

    def test_average_price_exact(self):
        schedule = ElectricityPriceSchedule.day_night(0.2, 0.1, 7.0, 21.0)
        daily_mean = (14 * 0.2 + 10 * 0.1) / 24.0
        assert schedule.average_price(0.0, DAY) == pytest.approx(daily_mean)
        # A window entirely inside one band is flat.
        assert schedule.average_price(8 * HOUR, 9 * HOUR) == pytest.approx(0.2)
        # Whole-day multiples collapse to the daily mean.
        assert schedule.average_price(0.0, 3 * DAY) == pytest.approx(daily_mean)

    def test_average_price_multi_day_window(self):
        schedule = ElectricityPriceSchedule.day_night(0.2, 0.1, 7.0, 21.0)
        # [12h, 36h): 9 day-hours + 10 night-hours + 5 day-hours.
        expected = (14 * 0.2 + 10 * 0.1) / 24.0
        assert schedule.average_price(
            12 * HOUR, 36 * HOUR
        ) == pytest.approx(expected)

    def test_average_price_rejects_empty_window(self):
        schedule = ElectricityPriceSchedule.flat(0.1)
        with pytest.raises(ConfigurationError):
            schedule.average_price(HOUR, HOUR)

    def test_cost_of_matches_scalar_reference(self):
        esp = ElectricityServiceProvider(
            ElectricityPriceSchedule.day_night(0.25, 0.08, 7.5, 20.0),
            demand_limit_watts=900.0,
            penalty_per_kwh=0.5,
        )
        rng = np.random.default_rng(11)
        times = np.sort(rng.uniform(0.0, 2 * DAY, size=120))
        watts = rng.uniform(0.0, 2000.0, size=120)
        assert esp.cost_of(times, watts) == pytest.approx(
            esp.cost_of_scalar(times, watts), rel=1e-12
        )

    def test_cost_of_unlimited_demand_skips_penalty(self):
        base = ElectricityServiceProvider(ElectricityPriceSchedule.flat(0.1))
        penal = ElectricityServiceProvider(
            ElectricityPriceSchedule.flat(0.1), penalty_per_kwh=5.0
        )
        times = [0.0, HOUR, 2 * HOUR]
        watts = [500.0, 1500.0, 800.0]
        assert penal.cost_of(times, watts) == pytest.approx(
            base.cost_of(times, watts)
        )


@st.composite
def _tilings(draw):
    cuts = draw(
        st.lists(
            st.floats(0.5, 23.5, allow_nan=False, allow_infinity=False),
            min_size=0,
            max_size=6,
            unique=True,
        )
    )
    edges = [0.0] + sorted(cuts) + [24.0]
    prices = draw(
        st.lists(
            st.floats(0.01, 1.0, allow_nan=False, allow_infinity=False),
            min_size=len(edges) - 1,
            max_size=len(edges) - 1,
        )
    )
    return tuple(
        (edges[i], edges[i + 1], prices[i]) for i in range(len(edges) - 1)
    )


class TestTilingProperties:
    @given(_tilings())
    @settings(max_examples=60, deadline=None)
    def test_valid_tilings_accepted_and_consistent(self, bands):
        schedule = ElectricityPriceSchedule(bands)
        for start, end, price in bands:
            mid = 0.5 * (start + end) * HOUR
            assert schedule.price_at(mid) == price
            assert schedule.prices_at([mid])[0] == price
        daily = sum((e - s) * p for s, e, p in bands) / 24.0
        assert schedule.average_price(0.0, DAY) == pytest.approx(daily)

    @given(_tilings())
    @settings(max_examples=40, deadline=None)
    def test_gapped_tilings_rejected(self, bands):
        if len(bands) < 2:
            return
        start, end, price = bands[-1]
        shrunk = bands[:-1] + ((0.5 * (start + end), end, price),)
        with pytest.raises(ConfigurationError):
            ElectricityPriceSchedule(shrunk)

    @given(_tilings())
    @settings(max_examples=40, deadline=None)
    def test_overlapping_tilings_rejected(self, bands):
        if len(bands) < 2:
            return
        start, end, price = bands[0]
        grown = ((start, min(end + 1.0, 24.0), price),) + bands[1:]
        with pytest.raises(ConfigurationError):
            ElectricityPriceSchedule(grown)


class TestRegionMarket:
    def _market(self, offset=9.0):
        return RegionMarket(
            name="test-region",
            utc_offset_hours=offset,
            tariff=ElectricityPriceSchedule.day_night(0.2, 0.1, 7.0, 21.0),
            carbon=ElectricityPriceSchedule.day_night(0.5, 0.3, 7.0, 21.0),
            dr_events=(DemandResponseEvent(10 * HOUR, 12 * HOUR, 4000.0),),
        )

    def test_timezone_shift(self):
        market = self._market(offset=9.0)
        # Simulation midnight UTC is 09:00 local — already daytime.
        assert market.price_at(0.0) == 0.2
        assert market.price_at(13 * HOUR) == 0.1  # 22:00 local

    def test_cost_and_carbon_shifted(self):
        market = self._market(offset=9.0)
        esp = ElectricityServiceProvider(
            ElectricityPriceSchedule.day_night(0.2, 0.1, 7.0, 21.0)
        )
        times = [0.0, HOUR, 2 * HOUR]
        watts = [1000.0, 1000.0, 1000.0]
        shifted = [t + 9 * HOUR for t in times]
        assert market.cost_of(times, watts) == pytest.approx(
            esp.cost_of(shifted, watts)
        )
        assert market.carbon_of(times, watts) == pytest.approx(2 * 0.5)

    def test_mean_price_window(self):
        market = self._market(offset=0.0)
        assert market.mean_price(8 * HOUR, 9 * HOUR) == pytest.approx(0.2)
        assert market.mean_carbon(0.0, HOUR) == pytest.approx(0.3)

    def test_dr_limit_window_overlap(self):
        market = self._market()
        assert market.dr_limit(0.0, 5 * HOUR) == float("inf")
        assert market.dr_limit(11 * HOUR, 13 * HOUR) == 4000.0
        assert market.dr_limit(9 * HOUR, 10 * HOUR) == float("inf")

    def test_offset_validation(self):
        with pytest.raises(ConfigurationError):
            RegionMarket(
                name="bad",
                utc_offset_hours=20.0,
                tariff=ElectricityPriceSchedule.flat(0.1),
                carbon=ElectricityPriceSchedule.flat(0.1),
            )

    def test_pickle_roundtrip(self):
        market = self._market()
        clone = pickle.loads(pickle.dumps(market))
        times = [0.0, HOUR, 2 * HOUR]
        watts = [800.0, 900.0, 700.0]
        assert clone.cost_of(times, watts) == market.cost_of(times, watts)
        assert clone.dr_limit(10.5 * HOUR, 11 * HOUR) == 4000.0
