"""Feature extraction from job submissions.

Only information available *at submission time* may be used (the whole
point of pre-run prediction): requested nodes, requested walltime, the
queue, and the user/tag identity.  Identities enter as stable hashes
so the regression can pick up per-community offsets without a learned
embedding.
"""

from __future__ import annotations

import hashlib
import math
from typing import List

import numpy as np

from ..workload.job import Job

#: Order of features produced by :func:`job_features`.
FEATURE_NAMES: List[str] = [
    "intercept",
    "log2_nodes",
    "log_walltime",
    "user_hash",
    "tag_hash",
    "queue_hash",
]


def _unit_hash(text: str) -> float:
    """Deterministic hash of *text* into [0, 1)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:4], "little") / 2**32


def job_features(job: Job) -> np.ndarray:
    """Submission-time feature vector of one job (see FEATURE_NAMES)."""
    return np.array(
        [
            1.0,
            math.log2(max(job.nodes, 1)),
            math.log(max(job.walltime_request, 1.0)),
            _unit_hash(job.user),
            _unit_hash(job.tag or job.app_name),
            _unit_hash(job.queue),
        ]
    )


def feature_matrix(jobs) -> np.ndarray:
    """Stack feature vectors for a job collection (n_jobs x n_features)."""
    return np.vstack([job_features(j) for j in jobs]) if jobs else np.empty((0, len(FEATURE_NAMES)))
