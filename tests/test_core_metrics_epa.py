"""Tests for metrics computation and the EPA coordinator."""

import pytest

from repro.core import MetricsReport, compute_metrics
from repro.core.epa import EpaCoordinator, FunctionalCategory
from repro.power import PowerMeter
from repro.simulator import Simulator
from repro.units import DAY
from tests.conftest import make_job


def finished_job(job_id, nodes, submit, start, end, energy=0.0):
    job = make_job(job_id=job_id, nodes=nodes, work=end - start,
                   walltime=(end - start) * 2, submit=submit)
    job.start(start, list(range(nodes)))
    job.complete(end)
    job.energy_joules = energy
    return job


class TestComputeMetrics:
    def test_empty(self):
        report = compute_metrics([], total_nodes=10)
        assert report.jobs_submitted == 0
        assert report.utilization == 0.0

    def test_basic_counts(self):
        jobs = [finished_job("a", 2, 0, 10, 110),
                finished_job("b", 4, 5, 10, 60)]
        killed = make_job(job_id="k", nodes=1)
        killed.start(0.0, [0])
        killed.kill(50.0, "x")
        report = compute_metrics(jobs + [killed], total_nodes=8)
        assert report.jobs_submitted == 3
        assert report.jobs_completed == 2
        assert report.jobs_killed == 1

    def test_utilization(self):
        # One job using all nodes for the whole span.
        job = finished_job("a", 4, 0, 0, 100)
        report = compute_metrics([job], total_nodes=4, span=100.0)
        assert report.utilization == pytest.approx(1.0)

    def test_wait_statistics(self):
        jobs = [finished_job(f"j{i}", 1, 0, wait, wait + 10)
                for i, wait in enumerate([0, 10, 20, 30, 40])]
        report = compute_metrics(jobs, total_nodes=4)
        assert report.mean_wait == pytest.approx(20.0)
        assert report.median_wait == pytest.approx(20.0)

    def test_throughput_per_day(self):
        jobs = [finished_job("a", 1, 0, 0, 100)]
        report = compute_metrics(jobs, total_nodes=1, span=DAY)
        assert report.throughput_per_day == pytest.approx(1.0)

    def test_meter_integration(self):
        sim = Simulator()
        meter = PowerMeter(sim, lambda: 100.0, interval=10.0)
        meter.start()
        sim.run(until=100.0)
        meter.stop()
        meter.sample()
        job = finished_job("a", 1, 0, 0, 100)
        report = compute_metrics([job], total_nodes=1, meter=meter,
                                 cap_watts=50.0)
        assert report.total_energy_joules == pytest.approx(10_000.0)
        assert report.cap_exceedance_fraction == 1.0
        assert report.energy_per_job_joules == pytest.approx(10_000.0)

    def test_energy_fallback_to_job_accounting(self):
        job = finished_job("a", 1, 0, 0, 100, energy=500.0)
        report = compute_metrics([job], total_nodes=1)
        assert report.total_energy_joules == 500.0

    def test_as_dict_roundtrip(self):
        report = MetricsReport(jobs_completed=5)
        report.extra["custom"] = 1.0
        flat = report.as_dict()
        assert flat["jobs_completed"] == 5
        assert flat["custom"] == 1.0

    def test_mwh_property(self):
        report = MetricsReport(total_energy_joules=3.6e9)
        assert report.total_energy_mwh == pytest.approx(1.0)


class TestEpaCoordinator:
    def test_empty_not_complete(self):
        epa = EpaCoordinator()
        assert not epa.is_complete
        assert all(not v for v in epa.coverage().values())

    def test_full_coverage(self):
        epa = EpaCoordinator()
        for i, category in enumerate(FunctionalCategory):
            epa.register(f"c{i}", category)
        assert epa.is_complete

    def test_by_category_grouping(self):
        epa = EpaCoordinator()
        epa.register("meter", FunctionalCategory.POWER_MONITORING, "machine power")
        epa.register("capper", FunctionalCategory.POWER_CONTROL)
        groups = epa.by_category()
        assert [c.name for c in groups[FunctionalCategory.POWER_MONITORING]] == ["meter"]
        assert groups[FunctionalCategory.RESOURCE_CONTROL] == []
