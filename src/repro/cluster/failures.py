"""Node failure injection.

Production EPA JSRM operates on machines where nodes fail; RIKEN's
emergency killing and Tokyo Tech's cooperative provisioning both have
to coexist with ordinary hardware attrition.  The injector draws
exponential inter-failure times per the fleet MTBF, fails a random
powered node (killing whatever ran there), holds it DOWN for a repair
time, then returns it to service.  Deterministic under the seeded RNG
streams, so failure scenarios replay exactly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from ..simulator.events import EventPriority
from ..units import check_positive
from .node import NodeState

if TYPE_CHECKING:  # pragma: no cover
    from ..core.simulation import ClusterSimulation


class FailureInjector:
    """Inject random node failures into a running simulation.

    Parameters
    ----------
    simulation:
        The simulation to disturb.
    node_mtbf:
        Mean time between failures *per node*, seconds.  The fleet
        failure rate is ``len(machine) / node_mtbf``.
    repair_time:
        Seconds a failed node stays DOWN before returning.
    rng:
        Random stream (defaults to the simulation's "failures" stream).
    """

    def __init__(
        self,
        simulation: "ClusterSimulation",
        node_mtbf: float,
        repair_time: float = 4.0 * 3600.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.simulation = simulation
        self.node_mtbf = check_positive("node_mtbf", node_mtbf)
        self.repair_time = check_positive("repair_time", repair_time)
        self.rng = rng if rng is not None else simulation.rng.stream("failures")
        self.failures = 0
        self.jobs_lost = 0
        self._armed = False

    @property
    def fleet_rate(self) -> float:
        """Failures per second across the whole machine."""
        return len(self.simulation.machine) / self.node_mtbf

    def arm(self) -> None:
        """Start injecting (idempotent)."""
        if self._armed:
            return
        self._armed = True
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = float(self.rng.exponential(1.0 / self.fleet_rate))
        self.simulation.sim.after(
            gap, self._fail_one, priority=EventPriority.STATE,
            name="node-failure",
        )

    def _fail_one(self) -> None:
        machine = self.simulation.machine
        candidates = [
            n for n in machine.nodes
            if n.state in (NodeState.IDLE, NodeState.BUSY)
        ]
        if candidates:
            node = candidates[int(self.rng.integers(0, len(candidates)))]
            now = self.simulation.sim.now
            victim = self.simulation.execution_on(node.node_id)
            if node.state is NodeState.BUSY and victim is not None:
                # The job dies with the node.
                if self.simulation.kill_job(victim.job.job_id, "node failure"):
                    self.jobs_lost += 1
            # kill_job released the node to IDLE; take it DOWN.
            if node.state is NodeState.IDLE:
                self.simulation.rm.drain_node(node)
                self.failures += 1
                self.simulation.trace.emit(now, "node.failure",
                                           node=node.node_id)
                self.simulation.sim.after(
                    self.repair_time, self._repair, node,
                    priority=EventPriority.STATE, name="node-repair",
                )
        self._schedule_next()

    def _repair(self, node) -> None:
        if node.state is NodeState.DOWN:
            self.simulation.rm.undrain_node(node)
            self.simulation.trace.emit(
                self.simulation.sim.now, "node.repair", node=node.node_id
            )
