"""Multi-channel telemetry sampling.

A :class:`TelemetrySampler` polls any number of named channels (each a
zero-argument callable) on one period and keeps per-channel series.
It is the generalization of :class:`~repro.power.meter.PowerMeter`
to arbitrary signals: node temperatures, queue depth, facility PUE —
whatever a policy or analysis wants to watch.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..buffers import sample_buffer, series_view
from ..errors import ConfigurationError
from ..simulator.engine import Simulator
from ..simulator.events import EventPriority
from ..units import check_positive


@dataclass
class Channel:
    """One named telemetry signal."""

    name: str
    source: Callable[[], float]
    unit: str = ""
    # C-double buffers (see repro.buffers): compact per-sample storage
    # with the same append/len/index surface as the old lists.
    times: array = field(default_factory=sample_buffer)
    values: array = field(default_factory=sample_buffer)

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, values) as numpy arrays."""
        return series_view(self.times), series_view(self.values)

    def latest(self) -> Optional[float]:
        """Most recent value, or None before the first sample."""
        return self.values[-1] if self.values else None

    def mean(self) -> float:
        """Arithmetic mean of samples (0 with no samples)."""
        return float(np.mean(self.values)) if self.values else 0.0


class TelemetrySampler:
    """Poll registered channels on a fixed period."""

    def __init__(self, sim: Simulator, interval: float = 60.0) -> None:
        self.sim = sim
        self.interval = check_positive("interval", interval)
        self.channels: Dict[str, Channel] = {}
        self._handle = None

    def add_channel(self, name: str, source: Callable[[], float], unit: str = "") -> Channel:
        """Register a channel; returns it for direct series access."""
        if name in self.channels:
            raise ConfigurationError(f"duplicate telemetry channel {name!r}")
        channel = Channel(name, source, unit)
        self.channels[name] = channel
        return channel

    def sample(self) -> None:
        """Poll every channel once.

        A poll at the timestamp of a channel's previous sample replaces
        that sample instead of appending a duplicate timestamp (e.g. a
        final flush coinciding with the periodic tick), keeping each
        series strictly increasing in time for integration/resampling.
        """
        now = self.sim.now
        for channel in self.channels.values():
            value = float(channel.source())
            if channel.times and channel.times[-1] == now:
                channel.values[-1] = value
            else:
                channel.times.append(now)
                channel.values.append(value)

    def start(self) -> None:
        """Begin periodic sampling (immediate first sample)."""
        self.sample()
        self._handle = self.sim.every(
            self.interval, self.sample, priority=EventPriority.MONITOR,
            name="telemetry",
        )

    def stop(self) -> None:
        """Stop sampling; series remain queryable."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # -- state capture (for samplers attached to a simulation as a
    # component): channel sources are callables the factory rebuilds;
    # only the collected series cross the checkpoint.
    def __repro_getstate__(self) -> dict:
        return {
            "channels": {
                name: (list(ch.times), list(ch.values))
                for name, ch in self.channels.items()
            }
        }

    def __repro_setstate__(self, state: dict) -> None:
        for name, (times, values) in state["channels"].items():
            channel = self.channels.get(name)
            if channel is None:
                continue
            channel.times = sample_buffer()
            channel.values = sample_buffer()
            channel.times.extend(times)
            channel.values.extend(values)
