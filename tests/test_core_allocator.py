"""Tests for node allocators."""

import pytest

from repro.cluster import Machine, MachineSpec
from repro.cluster.topology import build_fat_tree
from repro.core import FirstFitAllocator, LowPowerAllocator, TopologyAwareAllocator
from repro.errors import AllocationError


@pytest.fixture
def topo_machine():
    spec = MachineSpec(name="m", nodes=32, nodes_per_cabinet=8)
    return Machine(spec, topology=build_fat_tree(32, arity=8))


class TestFirstFit:
    def test_picks_lowest_ids(self, small_machine):
        nodes = FirstFitAllocator().select(
            small_machine, small_machine.available_nodes, 4
        )
        assert [n.node_id for n in nodes] == [0, 1, 2, 3]

    def test_insufficient_raises(self, small_machine):
        with pytest.raises(AllocationError):
            FirstFitAllocator().select(small_machine, small_machine.nodes[:2], 4)

    def test_zero_count_raises(self, small_machine):
        with pytest.raises(AllocationError):
            FirstFitAllocator().select(small_machine, small_machine.nodes, 0)


class TestLowPower:
    def test_prefers_efficient_nodes(self, small_machine):
        small_machine.node(5).variability = 0.8
        small_machine.node(9).variability = 0.85
        nodes = LowPowerAllocator().select(
            small_machine, small_machine.available_nodes, 2
        )
        assert {n.node_id for n in nodes} == {5, 9}

    def test_tie_breaks_on_id(self, small_machine):
        nodes = LowPowerAllocator().select(
            small_machine, small_machine.available_nodes, 3
        )
        assert [n.node_id for n in nodes] == [0, 1, 2]


class TestTopologyAware:
    def test_compact_placement(self, topo_machine):
        allocator = TopologyAwareAllocator()
        nodes = allocator.select(topo_machine, topo_machine.available_nodes, 4)
        cost = topo_machine.topology.placement_cost([n.node_id for n in nodes])
        # 4 nodes fit inside one leaf switch: cost 2 (all pairs 2 hops).
        assert cost == pytest.approx(2.0)

    def test_beats_random_scatter(self, topo_machine):
        allocator = TopologyAwareAllocator()
        chosen = allocator.select(topo_machine, topo_machine.available_nodes, 8)
        compact_cost = topo_machine.topology.placement_cost(
            [n.node_id for n in chosen]
        )
        scattered = [topo_machine.node(i) for i in (0, 5, 10, 15, 20, 25, 30, 31)]
        scattered_cost = topo_machine.topology.placement_cost(
            [n.node_id for n in scattered]
        )
        assert compact_cost <= scattered_cost

    def test_fragmented_pool_greedy_fallback(self, topo_machine):
        # Only every other node is free: no contiguous window exists.
        pool = [n for n in topo_machine.nodes if n.node_id % 2 == 0]
        allocator = TopologyAwareAllocator()
        nodes = allocator.select(topo_machine, pool, 4)
        assert len(nodes) == 4
        assert len({n.node_id for n in nodes}) == 4

    def test_machine_without_topology_falls_back(self, small_machine):
        allocator = TopologyAwareAllocator()
        nodes = allocator.select(small_machine, small_machine.available_nodes, 4)
        assert [n.node_id for n in nodes] == [0, 1, 2, 3]

    def test_single_node(self, topo_machine):
        nodes = TopologyAwareAllocator().select(
            topo_machine, topo_machine.available_nodes, 1
        )
        assert len(nodes) == 1
