"""Figure 2: the geographic distribution of the participating centers.

"These span the geographic regions of Asia, Europe and the United
States" (Section III; KAUST sits in the Middle East on the map).  We
reproduce the figure as data — map points with coordinates — plus the
regional aggregation, and an ASCII-art world map for terminal output.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from .data import survey_responses


class Region(enum.Enum):
    """Regions used by the paper's geographic framing."""

    ASIA = "Asia"
    EUROPE = "Europe"
    NORTH_AMERICA = "North America"
    MIDDLE_EAST = "Middle East"


@dataclass(frozen=True)
class MapPoint:
    """One marker of Figure 2."""

    slug: str
    name: str
    country: str
    region: str
    latitude: float
    longitude: float


def map_points() -> List[MapPoint]:
    """The nine Figure-2 markers, table order."""
    return [
        MapPoint(
            r.profile.slug,
            r.profile.name,
            r.profile.country,
            r.profile.region,
            r.profile.latitude,
            r.profile.longitude,
        )
        for r in survey_responses()
    ]


def regional_distribution() -> Dict[str, int]:
    """Center count per region (the quantitative content of Fig. 2)."""
    counts: Dict[str, int] = {}
    for point in map_points():
        counts[point.region] = counts.get(point.region, 0) + 1
    return counts


def countries() -> Dict[str, int]:
    """Center count per country."""
    counts: Dict[str, int] = {}
    for point in map_points():
        counts[point.country] = counts.get(point.country, 0) + 1
    return counts


def ascii_map(width: int = 72, height: int = 20) -> str:
    """Equirectangular ASCII map with center markers (1-9).

    Markers are numbered in table order; collisions show the first.
    """
    grid = [[" "] * width for _ in range(height)]
    legend: List[str] = []
    for i, point in enumerate(map_points(), start=1):
        x = int((point.longitude + 180.0) / 360.0 * (width - 1))
        y = int((90.0 - point.latitude) / 180.0 * (height - 1))
        x = min(width - 1, max(0, x))
        y = min(height - 1, max(0, y))
        if grid[y][x] == " ":
            grid[y][x] = str(i)
        legend.append(f"  {i}. {point.name} ({point.country}, {point.region})")
    border = "+" + "-" * width + "+"
    rows = [border] + ["|" + "".join(row) + "|" for row in grid] + [border]
    return "\n".join(rows + ["Participating centers:"] + legend)
