"""Experiment harness: run, compare and report policy evaluations."""

from .stats import percentile_table, PercentileTable, workload_summary
from .runner import ExperimentRunner, Variant, VariantResult
from .compare import relative_change, compare_metrics
from .report import (
    format_quantity,
    render_columns,
    render_dict_table,
    render_sparkline,
)

__all__ = [
    "ExperimentRunner",
    "PercentileTable",
    "Variant",
    "VariantResult",
    "compare_metrics",
    "format_quantity",
    "percentile_table",
    "relative_change",
    "render_columns",
    "render_dict_table",
    "render_sparkline",
    "workload_summary",
]
