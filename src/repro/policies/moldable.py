"""Moldable-job shaping — Patki et al. (HPDC'15, [37]) and related.

"Many approaches take advantage of 'moldable jobs', i.e., jobs which
can run with different configurations (number of nodes, cores or
threads).  Given the current power consumption and power budget, the
best configuration is chosen for each job before its start."

This policy reshapes moldable jobs at scheduling time: it picks the
configuration with the best expected turnaround that fits the free
nodes and (optionally) the remaining power headroom.  Non-moldable
jobs pass through untouched.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.allocator import check_pool
from ..core.epa import FunctionalCategory
from ..errors import AllocationError
from ..workload.job import Job
from .base import Policy


class MoldablePolicy(Policy):
    """Choose moldable configurations against free nodes and power.

    Parameters
    ----------
    budget_watts:
        Optional machine power budget; configurations whose estimated
        draw would break it are skipped.
    prefer_speed:
        If True, among feasible configurations pick the one with the
        shortest estimated runtime (more nodes); otherwise pick the
        most node-efficient one (fewest node-seconds).
    """

    name = "moldable"

    def __init__(
        self,
        budget_watts: Optional[float] = None,
        prefer_speed: bool = True,
    ) -> None:
        super().__init__()
        self.budget_watts = budget_watts
        self.prefer_speed = prefer_speed
        self.reshaped = 0
        #: Shaping attempts where even the smallest configuration
        #: exceeds the machine's usable capacity (reshaping cannot
        #: make the job schedulable).
        self.infeasible = 0

    # ------------------------------------------------------------------
    def _estimated_draw(self, nodes: int, intensity: float) -> float:
        sample = self.simulation.machine.nodes[0]
        dyn = (sample.max_power - sample.idle_power) * intensity
        return nodes * dyn

    def select_configuration(self, job: Job, now: float) -> Job:
        if not job.moldable or job.start_time is not None:
            return job
        free = sum(1 for n in self.simulation.machine.nodes if n.is_available)
        headroom = None
        if self.budget_watts is not None:
            headroom = self.budget_watts - self.simulation.machine_power()

        feasible = []
        for cfg in job.moldable:
            if cfg.nodes > free:
                continue
            if headroom is not None:
                if self._estimated_draw(cfg.nodes, job.mean_power_intensity) > headroom:
                    continue
            feasible.append(cfg)
        if not feasible:
            # Nothing fits right now; fall back to the smallest config so
            # the job eventually becomes schedulable — but only if that
            # config can *ever* run (the structured shortfall from the
            # capacity check distinguishes "congested now" from "wider
            # than the surviving machine", where reshaping is futile).
            smallest = min(job.moldable, key=lambda c: c.nodes)
            try:
                check_pool(self.simulation.usable_node_count, smallest.nodes)
            except AllocationError:
                self.infeasible += 1
                return job
            if smallest.nodes != job.nodes:
                self._reshape(job, smallest.nodes, smallest.work_seconds)
            return job

        if self.prefer_speed:
            chosen = min(feasible, key=lambda c: (c.work_seconds, c.nodes))
        else:
            chosen = min(feasible, key=lambda c: (c.nodes * c.work_seconds, c.nodes))
        if chosen.nodes != job.nodes:
            self._reshape(job, chosen.nodes, chosen.work_seconds)
        return job

    def _reshape(self, job: Job, nodes: int, work: float) -> None:
        # Keep the walltime request proportional to the work change so
        # scheduler estimates stay conservative.
        scale = work / job.work_seconds
        job.nodes = nodes
        job.work_seconds = work
        job.walltime_request = max(work, job.walltime_request * scale)
        self.reshaped += 1
        # The mutation changes the queue's sort key inputs and SoA
        # columns; without this the memoized pending() order (and the
        # JobTable mirror) serve stale values until the next
        # submit/remove.
        queue = self.simulation.queue
        if job.job_id in queue:
            queue.notify_job_changed(job.job_id)

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "moldable-shaper",
                FunctionalCategory.RESOURCE_CONTROL,
                "pick moldable configuration vs free nodes and power headroom",
            )
        ]
