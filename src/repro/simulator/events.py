"""Event types for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  The priority tier
exists because several things can legitimately happen at the same
simulated instant — a job finishing, the power meter sampling, the
scheduler reacting — and the outcome must not depend on insertion
order.  The tiers below encode the canonical ordering used throughout
the framework: state changes happen first, then monitoring observes
them, then control reacts, then bookkeeping runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Tie-break tiers for events at equal simulation time.

    Lower values run first.  The ordering mirrors the monitor/control
    split of Figure 1 in the paper: the physical state of the machine
    settles before telemetry samples it, and telemetry samples before
    the scheduler or any EPA policy reacts to the sample.
    """

    #: Physical/system state transitions (job end, node boot complete).
    STATE = 0
    #: Telemetry sampling and aggregation.
    MONITOR = 10
    #: Scheduler passes and EPA policy decisions.
    CONTROL = 20
    #: Metrics, reporting and other observers.
    REPORT = 30

    #: Default tier for user callbacks.
    DEFAULT = 20


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Instances are created by :class:`~repro.simulator.engine.Simulator`;
    user code normally only sees the opaque
    :class:`~repro.simulator.engine.EventHandle`.

    ``slots=True`` matters here: the engine allocates and compares one
    Event per scheduled callback, so dropping the per-instance dict
    shrinks the hot loop on both execution paths.
    """

    time: float
    priority: int
    seq: int
    action: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)
    #: Set by the engine once the event has been popped for execution.
    #: Lets a late cancel() (e.g. from within the event's own action)
    #: be a no-op for the engine's live/tombstone bookkeeping.
    done: bool = field(compare=False, default=False)
    #: True while the event sits in a run_batched() same-instant bucket
    #: instead of the heap (cancellation accounting differs there).
    in_bucket: bool = field(compare=False, default=False)

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.action(*self.args)
