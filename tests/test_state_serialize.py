"""Tests for the RPST checkpoint container (repro.state.serialize)."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.errors import StateError
from repro.state import (
    STATE_SCHEMA_VERSION,
    SimState,
    diff_states,
    from_bytes,
    load_state,
    save_state,
    state_digest,
    to_bytes,
)


def make_state(data) -> SimState:
    return SimState(schema=STATE_SCHEMA_VERSION, repro_version="test", data=data)


class TestRoundTrip:
    def test_scalars_and_containers(self):
        data = {
            "none": None,
            "flag": True,
            "count": 42,
            "ratio": 0.1 + 0.2,
            "text": "hello",
            "inf": float("inf"),
            "ninf": float("-inf"),
            "tup": (1, 2.5, "x"),
            "nested": {"a": [1, 2, {"b": (3,)}]},
            "ints": {"__weird": 1},
        }
        st = make_state(data)
        back = from_bytes(to_bytes(st))
        assert diff_states(st, back) == []
        assert back.schema == STATE_SCHEMA_VERSION
        assert back.repro_version == "test"

    def test_nan_round_trips(self):
        st = make_state({"x": float("nan")})
        back = from_bytes(to_bytes(st))
        assert math.isnan(back.data["x"])

    def test_numpy_arrays(self):
        data = {
            "f64": np.linspace(0.0, 1.0, 17),
            "i64": np.arange(9, dtype=np.int64).reshape(3, 3),
            "u8": np.array([0, 255], dtype=np.uint8),
            "boolean": np.array([True, False, True]),
            "empty": np.zeros(0),
        }
        back = from_bytes(to_bytes(make_state(data)))
        for key, arr in data.items():
            out = back.data[key]
            assert out.dtype == arr.dtype
            assert out.shape == arr.shape
            assert np.array_equal(out, arr)

    def test_restored_arrays_are_writable_copies(self):
        back = from_bytes(to_bytes(make_state({"a": np.arange(4.0)})))
        back.data["a"][0] = 99.0  # must not raise (no read-only frombuffer view)

    def test_sets_and_nonstring_keys(self):
        data = {
            "s": {3, 1, 2},
            "fs": frozenset({"b", "a"}),
            "by_id": {1: "one", 2: "two"},
            "mixed": {(0, 1): 5.0},
        }
        back = from_bytes(to_bytes(make_state(data))).data
        assert back["s"] == {1, 2, 3}
        assert back["fs"] == {"a", "b"}
        assert back["by_id"] == {1: "one", 2: "two"}
        assert back["mixed"] == {(0, 1): 5.0}

    def test_unserializable_type_raises(self):
        with pytest.raises(StateError, match="cannot serialize"):
            to_bytes(make_state({"bad": object()}))


class TestCanonical:
    def test_insertion_order_does_not_change_bytes(self):
        a = {"alpha": np.arange(16.0), "beta": np.arange(13.0), "x": 1}
        b = {"x": 1, "beta": np.arange(13.0), "alpha": np.arange(16.0)}
        assert to_bytes(make_state(a)) == to_bytes(make_state(b))
        assert state_digest(make_state(a)) == state_digest(make_state(b))

    def test_digest_stable_across_round_trip(self):
        st = make_state({"z": np.arange(5.0), "a": [1, (2, 3)], "m": {"k": 1.5}})
        assert state_digest(from_bytes(to_bytes(st))) == state_digest(st)

    def test_digest_changes_with_content(self):
        base = state_digest(make_state({"a": 1}))
        assert state_digest(make_state({"a": 2})) != base


class TestContainerValidation:
    def test_bad_magic(self):
        with pytest.raises(StateError, match="magic"):
            from_bytes(b"NOPE" + b"\x00" * 16)

    def test_truncated_header(self):
        blob = to_bytes(make_state({"a": 1}))
        with pytest.raises(StateError, match="truncated"):
            from_bytes(blob[:10])

    def test_truncated_payload(self):
        blob = to_bytes(make_state({"a": np.arange(64.0)}))
        with pytest.raises(StateError):
            from_bytes(blob[:-8])

    def test_hash_mismatch_on_flipped_byte(self):
        blob = bytearray(to_bytes(make_state({"a": np.arange(64.0)})))
        blob[-1] ^= 0xFF
        with pytest.raises(StateError, match="hash"):
            from_bytes(bytes(blob))

    def test_unsupported_schema(self):
        blob = to_bytes(make_state({"a": 1}))
        hlen = int.from_bytes(blob[4:8], "little")
        header = json.loads(blob[8:8 + hlen])
        header["schema"] = STATE_SCHEMA_VERSION + 999
        hbytes = json.dumps(header, sort_keys=True,
                            separators=(",", ":")).encode()
        doctored = blob[:4] + len(hbytes).to_bytes(4, "little") + hbytes
        with pytest.raises(StateError, match="schema"):
            from_bytes(doctored)


class TestFiles:
    def test_save_load(self, tmp_path):
        st = make_state({"a": np.arange(10.0), "b": "text"})
        path = tmp_path / "deep" / "ck.ckpt"
        save_state(str(path), st)
        back = load_state(str(path))
        assert diff_states(st, back) == []
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_save_replaces_atomically(self, tmp_path):
        path = tmp_path / "ck.ckpt"
        save_state(str(path), make_state({"v": 1}))
        save_state(str(path), make_state({"v": 2}))
        assert load_state(str(path)).data["v"] == 2
