"""Unit conventions and validation helpers.

The library uses SI base conventions throughout:

========  ==========================  =================
Quantity  Unit                        Python type
========  ==========================  =================
time      seconds of simulated time   ``float``
power     watts                       ``float``
energy    joules                      ``float``
frequency hertz                       ``float``
========  ==========================  =================

These helpers exist so that configuration code can be written in the
units people actually think in (megawatts, hours, gigahertz) while the
core stays unit-uniform, and so that invalid physical quantities are
rejected at the boundary rather than deep inside the simulator.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Seconds per minute/hour/day, for readable configuration code.
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0

#: Watts per kilowatt/megawatt.
KILOWATT: float = 1e3
MEGAWATT: float = 1e6

#: Joules per kilowatt-hour / megawatt-hour.
KILOWATT_HOUR: float = 3.6e6
MEGAWATT_HOUR: float = 3.6e9

#: Hertz per megahertz/gigahertz.
MEGAHERTZ: float = 1e6
GIGAHERTZ: float = 1e9


def minutes(value: float) -> float:
    """Return *value* minutes expressed in seconds."""
    return value * MINUTE


def hours(value: float) -> float:
    """Return *value* hours expressed in seconds."""
    return value * HOUR


def days(value: float) -> float:
    """Return *value* days expressed in seconds."""
    return value * DAY


def kilowatts(value: float) -> float:
    """Return *value* kilowatts expressed in watts."""
    return value * KILOWATT


def megawatts(value: float) -> float:
    """Return *value* megawatts expressed in watts."""
    return value * MEGAWATT


def gigahertz(value: float) -> float:
    """Return *value* gigahertz expressed in hertz."""
    return value * GIGAHERTZ


def joules_to_kwh(value: float) -> float:
    """Convert joules to kilowatt-hours (for report rendering)."""
    return value / KILOWATT_HOUR


def joules_to_mwh(value: float) -> float:
    """Convert joules to megawatt-hours (for report rendering)."""
    return value / MEGAWATT_HOUR


def check_positive(name: str, value: float) -> float:
    """Validate that *value* is a finite, strictly positive number.

    Returns the value so the helper can be used inline in constructors.
    Raises :class:`~repro.errors.ConfigurationError` otherwise.
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not (value > 0) or value != value or value in (float("inf"),):
        raise ConfigurationError(f"{name} must be finite and > 0, got {value!r}")
    return float(value)


def check_non_negative(name: str, value: float) -> float:
    """Validate that *value* is a finite number >= 0 and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be a number, got {value!r}")
    if not (value >= 0) or value != value or value == float("inf"):
        raise ConfigurationError(f"{name} must be finite and >= 0, got {value!r}")
    return float(value)


def check_fraction(name: str, value: float) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    v = check_non_negative(name, value)
    if v > 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return v
