"""Describing and rebuilding pending simulator events.

A :class:`ClusterSimulation` heap holds only a closed universe of
event actions — job submissions/completions/timeouts, scheduler
passes, policy ticks, meter samples, RM boot/shutdown completions and
scripted admin actions — every one a *bound method* on an object
reachable from the simulation (the engine refactor replaced the
remaining closures with :class:`~repro.simulator.engine.PeriodicChain`
and RM bound methods precisely so this holds).

``describe_event`` turns a live :class:`~repro.simulator.events.Event`
into a plain dict (root key + method name + encoded args, or periodic
chain parameters); ``build_event`` re-plants it on a restored
simulation with its original ``(time, priority, seq)`` so FIFO
tie-breaks replay bit-identically.

Extension: a simulation component outside this universe (e.g. a
:class:`FailureInjector` wired directly to the engine) makes snapshots
fail with a :class:`StateError` naming the offending event.  Register
the owning object under a stable root key via ``extra_roots`` on both
:func:`repro.state.snapshot` and :func:`repro.state.restore` to make
its bound-method events capturable.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Tuple

from ..cluster.node import Node
from ..errors import StateError
from ..simulator.engine import EventHandle, PeriodicChain, Simulator
from ..simulator.events import Event
from ..workload.job import Job


def simulation_roots(sim_obj, extra_roots: Dict[str, Any] = None) -> Dict[str, Any]:
    """Stable root key -> live object map for one simulation."""
    roots: Dict[str, Any] = {
        "sim": sim_obj,
        "rm": sim_obj.rm,
        "meter": sim_obj.meter,
        "scheduler": sim_obj.scheduler,
    }
    for i, policy in enumerate(sim_obj.policies):
        roots[f"policy:{i}"] = policy
    for key, component in getattr(sim_obj, "components", {}).items():
        roots[f"component:{key}"] = component
    if extra_roots:
        for key, obj in extra_roots.items():
            if key in roots:
                raise StateError(f"extra root key {key!r} collides with a built-in root")
            roots[key] = obj
    return roots


def _roots_by_id(roots: Dict[str, Any]) -> Dict[int, str]:
    return {id(obj): key for key, obj in roots.items()}


# ----------------------------------------------------------------------
# Argument codecs
# ----------------------------------------------------------------------
def _encode_arg(arg: Any, owner: Any, by_id: Dict[int, str], name: str) -> Any:
    if arg is None or isinstance(arg, (bool, int, float, str)):
        return arg
    if isinstance(arg, Job):
        return {"$job": arg.job_id}
    if isinstance(arg, Node):
        return {"$node": arg.node_id}
    key = by_id.get(id(arg))
    if key is not None:
        return {"$root": key}
    # Item-by-identity in a list attribute of the owning root (e.g.
    # ManualActionPolicy's AdminAction instances in ``actions``).
    for attr in ("actions",):
        items = getattr(owner, attr, None)
        if isinstance(items, list):
            for i, item in enumerate(items):
                if item is arg:
                    return {"$item": [attr, i]}
    raise StateError(
        f"event {name!r}: cannot encode argument of type "
        f"{type(arg).__name__} for capture"
    )


def _resolve_arg(enc: Any, owner: Any, roots: Dict[str, Any],
                 job_by_id: Dict[str, Job], machine) -> Any:
    if isinstance(enc, dict):
        if "$job" in enc:
            try:
                return job_by_id[enc["$job"]]
            except KeyError:
                raise StateError(f"restored simulation has no job {enc['$job']!r}")
        if "$node" in enc:
            return machine.node(enc["$node"])
        if "$root" in enc:
            try:
                return roots[enc["$root"]]
            except KeyError:
                raise StateError(f"restored simulation has no root {enc['$root']!r}")
        if "$item" in enc:
            attr, i = enc["$item"]
            return getattr(owner, attr)[i]
    return enc


def _describe_call(action: Callable, args: Tuple, by_id: Dict[int, str],
                   name: str) -> Dict[str, Any]:
    if not inspect.ismethod(action):
        raise StateError(
            f"cannot capture event {name!r}: action {action!r} is not a bound "
            f"method of a simulation component (see repro.state extension "
            f"notes for ad-hoc events)"
        )
    owner = action.__self__
    root = by_id.get(id(owner))
    if root is None:
        raise StateError(
            f"cannot capture event {name!r}: its target "
            f"{type(owner).__name__} is not reachable from the simulation; "
            f"pass it via extra_roots to snapshot()/restore()"
        )
    return {
        "root": root,
        "method": action.__name__,
        "args": [_encode_arg(a, owner, by_id, name) for a in args],
    }


def _build_call(call: Dict[str, Any], roots: Dict[str, Any],
                job_by_id: Dict[str, Job], machine) -> Tuple[Callable, Tuple]:
    try:
        owner = roots[call["root"]]
    except KeyError:
        raise StateError(f"checkpoint references unknown root {call['root']!r}")
    method = getattr(owner, call["method"], None)
    if not callable(method):
        raise StateError(
            f"{type(owner).__name__} has no method {call['method']!r} "
            f"(checkpoint from an incompatible build?)"
        )
    args = tuple(
        _resolve_arg(a, owner, roots, job_by_id, machine) for a in call["args"]
    )
    return method, args


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
def describe_event(event: Event, by_id: Dict[int, str]) -> Dict[str, Any]:
    """Plain-data description of one live heap event."""
    action = event.action
    if inspect.ismethod(action) and isinstance(action.__self__, PeriodicChain):
        chain = action.__self__
        return {
            "kind": "periodic",
            "interval": chain.interval,
            "priority": chain.priority,
            "name": chain.name,
            "until": chain.until,
            "next_time": event.time,
            "seq": event.seq,
            # Phase-locked grid: restored chains must keep firing at
            # ``epoch + k * interval``, not re-anchor at next_time.
            "epoch": chain.epoch,
            "index": chain.index,
            "call": _describe_call(chain.action, chain.args, by_id, chain.name),
        }
    return {
        "kind": "call",
        "time": event.time,
        "priority": event.priority,
        "seq": event.seq,
        "name": event.name,
        "call": _describe_call(action, event.args, by_id, event.name),
    }


def build_event(desc: Dict[str, Any], engine: Simulator, roots: Dict[str, Any],
                job_by_id: Dict[str, Job], machine) -> Tuple[str, EventHandle]:
    """Re-plant one described event; returns ``(name, handle)`` so the
    restore pass can rewire stored handles (job end/timeout, meter)."""
    action, args = _build_call(desc["call"], roots, job_by_id, machine)
    if desc["kind"] == "periodic":
        handle = engine.restore_periodic(
            desc["interval"], action, args,
            priority=desc["priority"], name=desc["name"],
            until=desc["until"], next_time=desc["next_time"], seq=desc["seq"],
            epoch=desc.get("epoch"), index=desc.get("index", 0),
        )
        return desc["name"], handle
    handle = engine.restore_event(
        desc["time"], desc["priority"], desc["seq"], action,
        args=args, name=desc["name"],
    )
    return desc["name"], handle
