"""Thermal-aware throttling — the CINECA/Bologna research line.

Table II, CINECA research: "predictive models for node power and
temperature evolution (with University of Bologna)"; the companion
work MS3 ("a Mediterranean-style job scheduler ... do less when it's
too hot!", [11]) acts on those predictions.  The policy keeps one
:class:`~repro.prediction.thermal_model.NodeThermalModel` per node,
advances them with the nodes' modeled power, and applies a frequency
throttle to nodes predicted to cross their thermal threshold —
*before* the hardware's emergency throttling (or a shutdown) would
hit them.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.epa import FunctionalCategory
from ..errors import PolicyError
from ..prediction.thermal_model import NodeThermalModel
from ..units import check_positive
from .base import Policy


class ThermalAwarePolicy(Policy):
    """Predictive per-node thermal throttling.

    Parameters
    ----------
    r_thermal / tau / t_max:
        RC model parameters shared by all nodes (heterogeneous fleets
        can pass a prebuilt model map instead).
    throttle_frequency:
        Frequency applied to nodes predicted to overheat.
    horizon:
        Prediction lookahead, seconds: throttle when the temperature
        *horizon seconds ahead* would exceed ``t_max``.
    check_interval:
        Control-loop period (also the thermal integration step).
    """

    name = "thermal-aware"

    def __init__(
        self,
        r_thermal: float = 0.1,
        tau: float = 300.0,
        t_max: float = 85.0,
        throttle_frequency: float = 1.6e9,
        horizon: float = 300.0,
        check_interval: float = 60.0,
        models: Dict[int, NodeThermalModel] = None,
    ) -> None:
        super().__init__()
        self.r_thermal = check_positive("r_thermal", r_thermal)
        self.tau = check_positive("tau", tau)
        self.t_max = float(t_max)
        self.throttle_frequency = check_positive(
            "throttle_frequency", throttle_frequency
        )
        self.horizon = check_positive("horizon", horizon)
        self.control_interval = check_positive("check_interval", check_interval)
        self._models = models
        self.models: Dict[int, NodeThermalModel] = {}
        self.throttled: set = set()
        self.throttle_events = 0
        self._last_step = 0.0

    def on_attach(self) -> None:
        if self.simulation.site is None:
            raise PolicyError("thermal-aware policy needs a site (ambient)")
        machine = self.simulation.machine
        if self._models is not None:
            self.models = dict(self._models)
            missing = {n.node_id for n in machine.nodes} - set(self.models)
            if missing:
                raise PolicyError(f"thermal models missing for nodes {sorted(missing)}")
        else:
            ambient = self.simulation.site.ambient.temperature(self.sim.now)
            self.models = {
                n.node_id: NodeThermalModel(
                    r_thermal=self.r_thermal, tau=self.tau,
                    initial_temperature=ambient + 5.0, t_max=self.t_max,
                )
                for n in machine.nodes
            }
        self._last_step = self.sim.now

    # ------------------------------------------------------------------
    def node_temperature(self, node_id: int) -> float:
        """Current modeled temperature of one node."""
        return self.models[node_id].temperature

    def hottest(self) -> Tuple[int, float]:
        """(node_id, temperature) of the hottest node."""
        nid = max(self.models, key=lambda i: self.models[i].temperature)
        return nid, self.models[nid].temperature

    def on_tick(self, now: float) -> None:
        machine = self.simulation.machine
        rm = self.simulation.rm
        ambient = self.simulation.site.ambient.temperature(now)
        dt = max(0.0, now - self._last_step)
        self._last_step = now

        power_model = self.simulation.power_model
        to_throttle = []
        to_release = []
        for node in machine.nodes:
            model = self.models[node.node_id]
            watts = self.simulation._node_operating_point(node).watts
            model.step(dt, watts, ambient)
            predicted = model.predict(self.horizon, watts, ambient)
            if predicted > self.t_max and node.node_id not in self.throttled:
                to_throttle.append(node)
            elif node.node_id in self.throttled:
                # Release only if the node would stay safe at FULL
                # frequency — releasing on the throttled-power forecast
                # causes thermostat oscillation around t_max.
                execution = self.simulation.execution_on(node.node_id)
                utilization = (
                    execution.job.mean_power_intensity
                    if execution is not None else 0.0
                )
                full_watts = power_model.power_at_ratio(node, 1.0, utilization)
                if (model.predict(self.horizon, full_watts, ambient)
                        < self.t_max - 5.0):  # hysteresis band
                    to_release.append(node)

        if to_throttle:
            rm.set_frequency(to_throttle, self.throttle_frequency)
            self.throttled |= {n.node_id for n in to_throttle}
            self.throttle_events += len(to_throttle)
        if to_release:
            for node in to_release:
                rm.set_frequency([node], node.max_frequency)
            self.throttled -= {n.node_id for n in to_release}

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "thermal-models",
                FunctionalCategory.POWER_MONITORING,
                "per-node RC temperature evolution models",
            ),
            (
                "predictive-throttle",
                FunctionalCategory.POWER_CONTROL,
                f"DVFS throttle when predicted T({self.horizon:.0f}s) "
                f"> {self.t_max:.0f}C",
            ),
        ]
