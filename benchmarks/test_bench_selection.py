"""Experiment ``exp-selection``: the Section-III selection funnel.

Regenerates the 11-identified -> 9-participating funnel, the
three-part test outcomes and the interview timeline facts.
"""

from __future__ import annotations

from repro.survey import selection_funnel
from repro.survey.selection import interview_timeline

from .conftest import write_artifact


def test_bench_selection_funnel(benchmark, artifact_dir):
    funnel = benchmark(selection_funnel)
    timeline = interview_timeline()
    lines = [
        "SECTION III — Center selection funnel",
        "",
        f"  centers identified        : {funnel.identified}",
        f"  agreed to participate     : {funnel.participating}",
        f"  declined                  : {funnel.declined}",
        f"  participation rate        : {funnel.participation_rate:.0%}",
        "",
        "  three-part test per participating center:",
    ]
    for slug, passed in funnel.passes_three_part_test.items():
        lines.append(f"    {slug:12s}: {'pass' if passed else 'FAIL'}")
    lines.append("")
    lines.append(f"  interviews: {timeline['start']} to {timeline['end']} "
                 f"({timeline['duration_months']} months), responses "
                 f"{timeline['response_pages']}")
    write_artifact("exp-selection", "\n".join(lines))

    # Paper facts.
    assert funnel.identified == 11
    assert funnel.participating == 9
    assert all(funnel.passes_three_part_test.values())
