"""Power and energy substrate.

Functional equivalents of the power-control mechanisms the surveyed
centers use in production: the node power/performance model, DVFS
frequency ladders, RAPL-style running-average capping, CAPMC-style
out-of-band system/node control, power metering with per-job energy
attribution, and hierarchical power budgets (site -> system ->
partition -> node).
"""

from .model import NodePowerModel, PowerSample
from .dvfs import FrequencyLadder
from .rapl import RaplDomain
from .capmc import Capmc
from .meter import PowerMeter
from .budget import PowerBudget
from .pue import FacilityPowerModel
from .vector import OperatingPoints, VectorPowerMirror

__all__ = [
    "Capmc",
    "FacilityPowerModel",
    "FrequencyLadder",
    "NodePowerModel",
    "OperatingPoints",
    "PowerBudget",
    "PowerMeter",
    "PowerSample",
    "RaplDomain",
    "VectorPowerMirror",
]
