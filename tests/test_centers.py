"""Tests for the executable center scenarios.

Each scenario must run and exhibit its Table-I/II signature behaviour.
Runs are kept short (small machines, few hours) so the whole module
stays fast.
"""

import pytest

from repro.centers import build_center_simulation, center_slugs
from repro.errors import SurveyError
from repro.survey.data import all_center_slugs
from repro.units import HOUR


@pytest.fixture(scope="module")
def center_results():
    """Run every center once (module-scoped: they are not cheap)."""
    results = {}
    for slug in center_slugs():
        build = build_center_simulation(slug, seed=3, duration=4 * HOUR,
                                        nodes=48)
        results[slug] = (build, build.simulation.run())
    return results


class TestRegistry:
    def test_registry_matches_survey(self):
        assert center_slugs() == all_center_slugs()

    def test_unknown_center(self):
        with pytest.raises(SurveyError):
            build_center_simulation("olympus")


class TestAllCentersRun:
    @pytest.mark.parametrize("slug", [
        "riken", "tokyotech", "cea", "kaust", "lrz",
        "stfc", "trinity", "cineca", "jcahpc",
    ])
    def test_center_completes_work(self, center_results, slug):
        build, result = center_results[slug]
        metrics = result.metrics
        assert metrics.jobs_submitted > 0
        # The vast majority of work finishes in every scenario.
        assert metrics.jobs_completed >= 0.5 * metrics.jobs_submitted
        assert metrics.total_energy_joules > 0
        assert build.notes  # every scenario documents itself

    @pytest.mark.parametrize("slug", [
        "riken", "tokyotech", "cea", "kaust", "lrz",
        "trinity", "cineca", "jcahpc",
    ])
    def test_epa_registry_complete(self, center_results, slug):
        build, _ = center_results[slug]
        # Figure 1: every deployed solution covers monitor+control of
        # both resources and power (the baseline registers monitoring;
        # policies add control).
        assert build.simulation.epa.is_complete

    def test_stfc_registry_lacks_power_control(self, center_results):
        # STFC's production row is monitoring-only (Table II): its EPA
        # registry accurately shows the power-control gap.
        build, _ = center_results["stfc"]
        from repro.core.epa import FunctionalCategory

        coverage = build.simulation.epa.coverage()
        assert not coverage[FunctionalCategory.POWER_CONTROL]
        assert coverage[FunctionalCategory.POWER_MONITORING]


class TestSignatures:
    def test_kaust_partition(self, center_results):
        build, result = center_results["kaust"]
        machine = build.simulation.machine
        capped = [n for n in machine.nodes if n.power_cap == 270.0]
        assert len(capped) == round(0.7 * len(machine))

    def test_tokyotech_runs_summer_provisioning(self, center_results):
        build, result = center_results["tokyotech"]
        # The scenario starts mid-summer: the seasonal policy is live.
        policy = build.simulation.policies[0]
        assert policy.summer_only
        assert policy._active(build.simulation.sim.now)
        # No job was ever killed (the cooperative guarantee).
        assert result.metrics.jobs_killed == 0

    def test_cea_maintenance_respected(self, center_results):
        build, result = center_results["cea"]
        site = build.simulation.site
        affected = site.facility.nodes_of_component("chiller0")
        # Jobs that ran during the maintenance window avoided the
        # dependent nodes.
        window = site.facility.maintenance[0]
        for job in result.jobs:
            if job.start_time is None:
                continue
            if window.start <= job.start_time < window.end:
                assert not (set(job.assigned_nodes) & affected), job.job_id

    def test_riken_emergency_policy_armed(self, center_results):
        build, result = center_results["riken"]
        policy = build.simulation.policies[0]
        assert policy.limit_watts < build.simulation.machine.peak_power
        # Pre-run estimates recorded on started jobs.
        started = [j for j in result.jobs if j.start_time is not None]
        assert any(j.power_estimate is not None for j in started)

    def test_lrz_characterizes_tags(self, center_results):
        build, result = center_results["lrz"]
        policy = build.simulation.policies[0]
        assert len(policy.characterized_tags) > 0

    def test_stfc_monitoring_only(self, center_results):
        build, result = center_results["stfc"]
        machine = build.simulation.machine
        # No caps, no DVFS, no shutdowns: pure monitoring.
        assert all(n.power_cap is None for n in machine.nodes)
        assert build.simulation.rm.shutdowns_initiated == 0
        assert result.meter.num_samples > 100

    def test_trinity_admin_cap_applied(self, center_results):
        build, result = center_results["trinity"]
        machine = build.simulation.machine
        # After the run the admin cap is in force on every node.
        assert all(n.power_cap is not None for n in machine.nodes)

    def test_cineca_predictor_learned(self, center_results):
        build, result = center_results["cineca"]
        predictor = build.simulation.extra_predictor
        assert predictor.observations > 0

    def test_jcahpc_groups_capped(self, center_results):
        build, result = center_results["jcahpc"]
        machine = build.simulation.machine
        assert all(n.power_cap is not None for n in machine.nodes)
        group_policy = build.simulation.policies[0]
        assert group_policy.cap_changes >= len(group_policy.groups)

    def test_energy_reports_delivered(self, center_results):
        # Tokyo Tech and JCAHPC deliver post-job reports.
        for slug in ("tokyotech", "jcahpc"):
            build, result = center_results[slug]
            reporting = [p for p in build.simulation.policies
                         if p.name.startswith("energy-reporting")]
            assert reporting
            assert len(reporting[0].reports) > 0


class TestResearchLines:
    """The optional research-line flags from Tables I/II."""

    def test_cineca_thermal_research_flag(self):
        build = build_center_simulation(
            "cineca", seed=3, duration=2 * HOUR, nodes=32,
            with_thermal_research=True,
        )
        result = build.simulation.run()
        thermal = [p for p in build.simulation.policies
                   if p.name == "thermal-aware"]
        assert thermal
        assert thermal[0].models  # per-node models exist
        assert result.metrics.jobs_completed > 0

    def test_lrz_cooling_research_flag(self):
        build = build_center_simulation(
            "lrz", seed=3, duration=2 * HOUR, nodes=32,
            with_cooling_research=True,
        )
        result = build.simulation.run()
        cooling = [p for p in build.simulation.policies
                   if p.name == "cooling-aware"]
        assert cooling
        assert result.metrics.jobs_completed > 0
