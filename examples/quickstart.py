#!/usr/bin/env python
"""Quickstart: build a machine, generate a workload, run a scheduler.

Walks through the minimal EPA JSRM pipeline:

1. describe a machine (survey Q2 style),
2. generate a synthetic workload (survey Q3 style),
3. run it under EASY backfilling with a power meter attached,
4. read out the responsiveness + energy metrics every bench reports.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterSimulation,
    EasyBackfillScheduler,
    Machine,
    MachineSpec,
    RngStreams,
    WorkloadGenerator,
    WorkloadSpec,
)
from repro.units import HOUR, joules_to_mwh


def main() -> None:
    # 1. The machine: 128 nodes, 32 cores each, 100 W idle / 350 W peak.
    machine = Machine(
        MachineSpec(
            name="demo-cluster",
            nodes=128,
            cores_per_node=32,
            idle_power=100.0,
            max_power=350.0,
        )
    )
    print(f"machine: {machine.name}, {len(machine)} nodes, "
          f"{machine.peak_power / 1e3:.0f} kW peak")

    # 2. The workload: ~50 jobs/hour for a day, jobs up to 64 nodes.
    spec = WorkloadSpec(
        arrival_rate=50.0 / HOUR,
        duration=24.0 * HOUR,
        max_nodes=64,
        mean_work=1.0 * HOUR,
    )
    rng = RngStreams(seed=42)
    jobs = WorkloadGenerator(spec, rng.stream("workload")).generate()
    print(f"workload: {len(jobs)} jobs, "
          f"{sum(j.nodes for j in jobs)} node-requests total")

    # 3. Run under EASY backfilling.
    simulation = ClusterSimulation(
        machine, EasyBackfillScheduler(), jobs, seed=42
    )
    result = simulation.run()

    # 4. The numbers.
    m = result.metrics
    print()
    print(f"completed        : {m.jobs_completed}/{m.jobs_submitted} jobs")
    print(f"utilization      : {m.utilization:.1%}")
    print(f"mean wait        : {m.mean_wait / 60:.1f} min")
    print(f"bounded slowdown : {m.mean_bounded_slowdown:.2f}")
    print(f"energy           : {joules_to_mwh(m.total_energy_joules):.3f} MWh")
    print(f"average power    : {m.average_power_watts / 1e3:.1f} kW")
    print(f"peak power       : {m.peak_power_watts / 1e3:.1f} kW")


if __name__ == "__main__":
    main()
