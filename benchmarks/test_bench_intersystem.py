"""Experiment ``exp-intersystem``: sharing a facility budget between
machines.

Tokyo Tech (tech development): "Inter-system power capping. TSUBAME2
and TSUBAME3 will need to share the facility power budget"; CEA
(production) shifts budget between systems manually.  The bench runs
two machines on one engine under one facility budget, with asymmetric
load, and compares a frozen equal split against demand-proportional
coordination.  Shape claim: coordination finishes the loaded machine's
backlog substantially sooner without starving the quiet machine below
its floor.
"""

from __future__ import annotations

from repro.analysis.report import render_columns
from repro.cluster import Machine, MachineSpec
from repro.core import (
    ClusterSimulation,
    EasyBackfillScheduler,
    SiteSimulation,
)
from repro.policies import PowerAwareAdmissionPolicy
from repro.simulator import Simulator, TraceRecorder
from repro.workload.phases import COMPUTE_BOUND
from tests.conftest import make_job

from .conftest import write_artifact


def _build_site(coordinate):
    sim = Simulator()
    trace = TraceRecorder(enabled=False)
    sims = []
    for name, job_count in (("tsubame2", 20), ("tsubame3", 2)):
        machine = Machine(MachineSpec(name=name, nodes=16,
                                      idle_power=100.0, max_power=400.0))
        jobs = [
            make_job(job_id=f"{name}-{i}", nodes=2, work=900.0,
                     walltime=4000.0, submit=i * 60.0,
                     profile=COMPUTE_BOUND)
            for i in range(job_count)
        ]
        sims.append(
            ClusterSimulation(
                machine, EasyBackfillScheduler(), jobs,
                policies=[PowerAwareAdmissionPolicy(
                    budget_watts=machine.peak_power)],
                sim=sim, trace=trace,
            )
        )
    total_peak = sum(s.machine.peak_power for s in sims)
    return SiteSimulation(
        sims, site_budget_watts=total_peak * 0.55,
        coordinator_interval=coordinate,
    )


def test_bench_intersystem_sharing(benchmark, artifact_dir):
    def sweep():
        out = {}
        for label, coordinate in (("static-split", None),
                                  ("coordinated", 300.0)):
            site = _build_site(coordinate)
            results = site.run()
            out[label] = (site, results)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for label, (site, results) in out.items():
        for result in results:
            name = result.machine.name
            budget = site.site_budget.find(name).limit_watts
            rows.append([
                label, name,
                f"{budget / 1e3:.1f}",
                f"{result.metrics.makespan / 3600:.2f}",
                f"{result.metrics.mean_wait:.0f}",
                f"{result.metrics.jobs_completed}",
            ])
    write_artifact(
        "exp-intersystem",
        "EXP-INTERSYSTEM — facility budget shared by two machines "
        "(asymmetric load, budget 55% of combined peak)\n\n"
        + render_columns(
            ["mode", "machine", "budget[kW]", "makespan[h]", "wait[s]",
             "done"],
            rows,
        ),
    )

    static_loaded = out["static-split"][1][0].metrics
    coord_loaded = out["coordinated"][1][0].metrics
    # Coordination drains the loaded machine's backlog faster.
    assert coord_loaded.makespan < static_loaded.makespan * 0.9
    # Nothing is lost on either machine in either mode.
    for _, results in out.values():
        for result in results:
            assert result.metrics.jobs_completed == result.metrics.jobs_submitted
    # The coordinator really moved watts toward the load.
    site = out["coordinated"][0]
    assert (site.site_budget.find("tsubame2").limit_watts
            > site.site_budget.find("tsubame3").limit_watts)
