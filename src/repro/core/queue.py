"""Batch queues.

Section II-A: "Users submit batch jobs into one or more batch queues
that are defined within the job scheduler. ... The various queues ...
may be designated as having higher or lower priorities and may be
restricted to some subset of the center's users."  This module models
exactly that: named queues with priorities, optional size/walltime
limits and user restrictions, and a merged priority order for the
scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import QueueError
from ..workload.job import Job, JobState
from .jobtable import JobTable


@dataclass(frozen=True)
class QueueConfig:
    """Definition of one batch queue.

    Attributes
    ----------
    name:
        Queue name; jobs select it via ``job.queue``.
    priority:
        Higher runs first across queues.
    max_nodes / max_walltime:
        Admission limits (None = unlimited).
    allowed_users:
        If non-empty, only these users may submit.
    """

    name: str
    priority: int = 0
    max_nodes: Optional[int] = None
    max_walltime: Optional[float] = None
    allowed_users: frozenset = field(default_factory=frozenset)

    def admits(self, job: Job) -> bool:
        """True if *job* satisfies this queue's limits."""
        if self.max_nodes is not None and job.nodes > self.max_nodes:
            return False
        if self.max_walltime is not None and job.walltime_request > self.max_walltime:
            return False
        if self.allowed_users and job.user not in self.allowed_users:
            return False
        return True


class JobQueue:
    """A set of named queues with a merged scheduling order.

    The merged order is (queue priority desc, job priority desc,
    submit time asc, job id) — deterministic and the standard
    priority-FCFS base order that backfilling variants preserve.
    """

    def __init__(self, configs: Optional[List[QueueConfig]] = None) -> None:
        configs = configs or [QueueConfig("default")]
        self._configs: Dict[str, QueueConfig] = {}
        for cfg in configs:
            if cfg.name in self._configs:
                raise QueueError(f"duplicate queue name {cfg.name!r}")
            self._configs[cfg.name] = cfg
        self._jobs: Dict[str, Job] = {}
        #: Memoized scheduling order, invalidated whenever the
        #: membership changes (submit/remove) *or* a queued job is
        #: mutated in place (moldable reshaping goes through
        #: :meth:`notify_job_changed` — sort keys are not immutable
        #: while queued, despite what earlier revisions assumed).
        self._order: Optional[List[Job]] = None
        #: SoA mirror of the queued jobs, kept in sync through the
        #: mutation hooks below (see ``repro.core.jobtable``).
        self._table = JobTable()

    # ------------------------------------------------------------------
    @property
    def queue_names(self) -> List[str]:
        """Configured queue names."""
        return list(self._configs)

    def config(self, name: str) -> QueueConfig:
        """The configuration of queue *name*."""
        try:
            return self._configs[name]
        except KeyError:
            raise QueueError(f"no queue named {name!r}") from None

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Enqueue a pending job into its declared queue."""
        if job.state is not JobState.PENDING:
            raise QueueError(f"job {job.job_id} is {job.state.value}, not pending")
        if job.job_id in self._jobs:
            raise QueueError(f"job {job.job_id} already queued")
        cfg = self._configs.get(job.queue) or self._configs.get("default")
        if cfg is None:
            raise QueueError(
                f"job {job.job_id}: queue {job.queue!r} undefined and no default"
            )
        if not cfg.admits(job):
            raise QueueError(
                f"job {job.job_id} violates limits of queue {cfg.name!r}"
            )
        self._jobs[job.job_id] = job
        self._table.add(job, cfg.priority)
        self._order = None

    def remove(self, job_id: str) -> Job:
        """Remove and return a queued job (started or cancelled)."""
        try:
            job = self._jobs.pop(job_id)
        except KeyError:
            raise QueueError(f"job {job_id} not in queue") from None
        self._table.discard(job_id)
        self._order = None
        return job

    def notify_job_changed(self, job_id: str) -> None:
        """Invalidate the memoized order after an in-place mutation.

        Moldable reshaping rewrites ``job.nodes`` and
        ``job.walltime_request`` on *queued* jobs; priority edits are
        possible through the same route.  Both feed the merged sort
        key and the SoA columns, so every such mutation must pass
        through here — the memo otherwise serves a stale order (and
        the table stale rows) until the next submit/remove.
        """
        try:
            job = self._jobs[job_id]
        except KeyError:
            raise QueueError(f"job {job_id} not in queue") from None
        self._table.refresh(job)
        self._order = None

    def restore_jobs(self, jobs: Dict[str, Job]) -> None:
        """Replace the queue contents wholesale (state restore).

        Rebuilds the SoA mirror through the same per-job hook that
        submissions use, so a restored queue is indistinguishable from
        one grown by ``submit`` calls — required for the schema-v4
        round-trip contract.
        """
        self._jobs = dict(jobs)
        self._order = None
        self._table.clear()
        for job in self._jobs.values():
            cfg = self._configs.get(job.queue) or self._configs.get("default")
            self._table.add(job, cfg.priority if cfg else 0)

    def _ensure_order(self) -> List[Job]:
        if self._order is None:

            def sort_key(job: Job):
                cfg = self._configs.get(job.queue) or self._configs.get("default")
                qprio = cfg.priority if cfg else 0
                return (-qprio, -job.priority, job.submit_time, job.job_id)

            self._order = sorted(self._jobs.values(), key=sort_key)
            self._table.set_order(self._order)
        return self._order

    def pending(self) -> List[Job]:
        """Jobs in merged scheduling order.

        Every policy tick and schedule pass reads this; re-sorting a
        deep backlog each time is O(Q log Q) per call, so the order is
        cached until the queue membership changes.  Returns a fresh
        list — callers may slice or mutate it freely.
        """
        return list(self._ensure_order())

    def pending_arrays(self) -> "Tuple[np.ndarray, np.ndarray]":
        """``(nodes_required, walltime)`` columns in ``pending()``
        order — the SoA view scheduler passes consume.  Cached with the
        order memo; treat as read-only."""
        self._ensure_order()
        return self._table.order_columns()

    def backlog_nodes(self) -> int:
        """Total nodes requested by queued jobs (Q3b's backlog size)."""
        return sum(j.nodes for j in self._jobs.values())

    def by_queue(self) -> Dict[str, List[Job]]:
        """Pending jobs grouped by queue name."""
        groups: Dict[str, List[Job]] = {name: [] for name in self._configs}
        for job in self.pending():
            name = job.queue if job.queue in self._configs else "default"
            groups.setdefault(name, []).append(job)
        return groups
