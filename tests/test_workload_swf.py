"""Tests for SWF trace reading and writing."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.workload import read_swf, write_swf
from repro.workload.swf import roundtrip_string

SAMPLE = """\
; Sample SWF trace
; UnixStartTime: 0
1 0 10 100 4 -1 -1 4 200 -1 1 5 -1 2 1 -1 -1 -1
2 50 -1 300 8 -1 -1 8 600 -1 1 6 -1 3 1 -1 -1 -1
3 60 5 -1 -1 -1 -1 4 100 -1 0 5 -1 2 1 -1 -1 -1
"""


class TestRead:
    def test_parses_jobs(self):
        jobs = read_swf(io.StringIO(SAMPLE))
        # Third line has run_time -1 -> skipped.
        assert len(jobs) == 2
        assert jobs[0].job_id == "swf1"
        assert jobs[0].nodes == 4
        assert jobs[0].work_seconds == 100.0
        assert jobs[0].walltime_request == 200.0
        assert jobs[0].submit_time == 0.0
        assert jobs[0].user == "user005"

    def test_cores_per_node_division(self):
        jobs = read_swf(io.StringIO(SAMPLE), cores_per_node=4)
        assert jobs[0].nodes == 1
        assert jobs[1].nodes == 2

    def test_ceil_division(self):
        line = "1 0 0 100 5 -1 -1 5 200 -1 1 1 -1 1 1 -1 -1 -1\n"
        jobs = read_swf(io.StringIO(line), cores_per_node=4)
        assert jobs[0].nodes == 2  # ceil(5/4)

    def test_max_jobs(self):
        jobs = read_swf(io.StringIO(SAMPLE), max_jobs=1)
        assert len(jobs) == 1

    def test_requested_falls_back_to_actual(self):
        line = "1 0 0 100 4 -1 -1 -1 -1 -1 1 1 -1 1 1 -1 -1 -1\n"
        jobs = read_swf(io.StringIO(line))
        assert jobs[0].nodes == 4
        assert jobs[0].walltime_request == 100.0

    def test_short_line_raises(self):
        with pytest.raises(TraceFormatError):
            read_swf(io.StringIO("1 2 3\n"))

    def test_non_numeric_raises(self):
        bad = "1 0 0 abc 4 -1 -1 4 200 -1 1 1 -1 1 1 -1 -1 -1\n"
        with pytest.raises(TraceFormatError):
            read_swf(io.StringIO(bad))

    def test_bad_cores_per_node(self):
        with pytest.raises(TraceFormatError):
            read_swf(io.StringIO(SAMPLE), cores_per_node=0)


class TestWrite:
    def test_roundtrip(self, job_factory):
        jobs = [
            job_factory(job_id="a", nodes=4, work=100.0, walltime=200.0),
            job_factory(job_id="b", nodes=8, work=300.0, walltime=600.0, submit=50.0),
        ]
        for i, job in enumerate(jobs):
            job.start(job.submit_time + 10.0, list(range(job.nodes)))
            job.complete(job.start_time + job.work_seconds)
        text = roundtrip_string(jobs)
        back = read_swf(io.StringIO(text))
        assert len(back) == 2
        assert back[0].nodes == 4
        assert back[0].work_seconds == pytest.approx(100.0)
        assert back[1].submit_time == 50.0

    def test_header_written_as_comments(self, job_factory, tmp_path):
        job = job_factory()
        job.start(0.0, [0])
        job.complete(100.0)
        path = tmp_path / "trace.swf"
        write_swf([job], str(path), header="line1\nline2")
        content = path.read_text()
        assert content.startswith("; line1\n; line2\n")

    def test_file_roundtrip(self, job_factory, tmp_path):
        job = job_factory(nodes=2)
        job.start(5.0, [0, 1])
        job.complete(105.0)
        path = tmp_path / "t.swf"
        count = write_swf([job], str(path))
        assert count == 1
        back = read_swf(str(path))
        assert back[0].nodes == 2

    def test_unstarted_jobs_skipped_on_read(self, job_factory):
        # Written with -1 run time; reader drops them.
        pending = job_factory()
        text = roundtrip_string([pending])
        assert read_swf(io.StringIO(text)) == []

    def test_status_codes(self, job_factory):
        killed = job_factory(job_id="k")
        killed.start(0.0, [0])
        killed.kill(50.0, "power")
        text = roundtrip_string([killed])
        fields = text.strip().split()
        assert fields[10] == "5"  # SWF status: cancelled/killed


class TestReadEdgeCases:
    """Sentinel, malformed-line and ordering corners of the parser."""

    def test_minus_one_sentinels_fall_back(self):
        # req_procs=-1 -> alloc_procs; req_time=-1 -> run_time;
        # user/app/queue=-1 -> id 0.
        line = "7 5 0 120 6 -1 -1 -1 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
        jobs = read_swf(io.StringIO(line))
        assert len(jobs) == 1
        job = jobs[0]
        assert job.nodes == 6
        assert job.walltime_request == 120.0
        assert job.user == "user000"
        assert job.app_name == "app0"
        assert job.queue == "q0"

    def test_negative_submit_clamped_to_zero(self):
        line = "1 -30 0 100 4 -1 -1 4 200 -1 1 1 -1 1 1 -1 -1 -1\n"
        jobs = read_swf(io.StringIO(line))
        assert jobs[0].submit_time == 0.0

    def test_walltime_never_below_runtime(self):
        # Requested time shorter than actual run time: the walltime
        # request is widened to the run time so replays never kill a
        # job its own trace says completed.
        line = "1 0 0 500 4 -1 -1 4 100 -1 1 1 -1 1 1 -1 -1 -1\n"
        jobs = read_swf(io.StringIO(line))
        assert jobs[0].work_seconds == 500.0
        assert jobs[0].walltime_request == 500.0

    def test_truncated_line_reports_lineno(self):
        text = (
            "1 0 10 100 4 -1 -1 4 200 -1 1 5 -1 2 1 -1 -1 -1\n"
            "2 50 -1 300 8\n"
        )
        with pytest.raises(TraceFormatError, match="line 2"):
            read_swf(io.StringIO(text))

    def test_extra_fields_tolerated(self):
        # Some archive traces append annotation columns; only the
        # first 18 fields are interpreted.
        line = "1 0 0 100 4 -1 -1 4 200 -1 1 1 -1 1 1 -1 -1 -1 99 98\n"
        jobs = read_swf(io.StringIO(line))
        assert len(jobs) == 1

    def test_non_numeric_field_reports_lineno(self):
        text = "1 0 0 abc 4 -1 -1 4 200 -1 1 1 -1 1 1 -1 -1 -1\n"
        with pytest.raises(TraceFormatError, match="line 1"):
            read_swf(io.StringIO(text))

    def test_blank_and_comment_lines_skipped(self):
        text = (
            ";Comment\n"
            "\n"
            "   \n"
            "1 0 0 100 4 -1 -1 4 200 -1 1 1 -1 1 1 -1 -1 -1\n"
        )
        assert len(read_swf(io.StringIO(text))) == 1

    def test_zero_processor_entries_skipped(self):
        # alloc=0 and req=-1 -> no processors; cancelled-before-start.
        text = (
            "1 0 0 100 0 -1 -1 -1 200 -1 0 1 -1 1 1 -1 -1 -1\n"
            "2 10 0 100 4 -1 -1 4 200 -1 1 1 -1 1 1 -1 -1 -1\n"
        )
        jobs = read_swf(io.StringIO(text))
        assert [j.job_id for j in jobs] == ["swf2"]

    def test_out_of_order_submits_preserved(self):
        # Real archive traces are *usually* submit-sorted but the spec
        # does not require it; the parser must not reorder or drop.
        text = (
            "1 100 0 50 2 -1 -1 2 60 -1 1 1 -1 1 1 -1 -1 -1\n"
            "2 40 0 50 2 -1 -1 2 60 -1 1 1 -1 1 1 -1 -1 -1\n"
            "3 70 0 50 2 -1 -1 2 60 -1 1 1 -1 1 1 -1 -1 -1\n"
        )
        jobs = read_swf(io.StringIO(text))
        assert [j.submit_time for j in jobs] == [100.0, 40.0, 70.0]
        # Downstream submission replay sorts by submit time; verify
        # the round-trip through write_swf keeps every job (they must
        # be terminal first — the writer stamps -1 run fields on
        # unstarted jobs and the reader drops those).
        for job in jobs:
            job.start(job.submit_time + 1.0, list(range(job.nodes)))
            job.complete(job.start_time + job.work_seconds)
        again = read_swf(io.StringIO(roundtrip_string(jobs)))
        assert sorted(j.submit_time for j in again) == [40.0, 70.0, 100.0]
