"""Backfilling schedulers: EASY and conservative.

Backfilling (Mu'alem & Feitelson [35]) is the workhorse of every
surveyed production scheduler (SLURM, PBS Pro, LSF, LoadLeveler,
MOAB): move small jobs forward through the queue as long as they do
not delay the reservation(s) of the job(s) at the head.

* **EASY**: only the head job holds a reservation; anything that fits
  now and does not push that one reservation starts immediately.
* **Conservative**: every queued job holds a reservation; a job may
  jump ahead only if it delays none of them.

Both use the user's walltime request as the runtime estimate — a hard
upper bound in this framework because jobs are killed at their
walltime, which keeps reservations sound even under power capping
slowdowns.

Both schedulers plan on a :class:`~repro.core.profile.FreeNodeProfile`
— an incrementally maintained step function of free nodes over time —
instead of re-deriving the profile from a raw delta dict per candidate
start.  That turns conservative backfill from ~O(P·T³) into O(P·T) at
queue depth P with T profile breakpoints, while producing decisions
identical to the seed implementations preserved in
:mod:`repro.core.reference_backfill` (enforced by property tests).

Batched passes
--------------
When the owning simulation hands over the queue as SoA columns
(``ctx.pending_arrays``, the :class:`~repro.core.jobtable.JobTable`
gather) *and* guarantees that the admission predicate is vacuous
(``ctx.trivial_admit`` — zero policies attached), both schedulers
switch from the per-job hook-visiting loop to whole-queue-slice
passes:

* EASY screens phase 1 with one ``cumsum``/``searchsorted`` (the first
  in-order failure) and phase 3 with a feasibility mask, visiting only
  jobs that could possibly start.
* Conservative plans the whole queue through one
  :func:`repro.power.kernels.plan_conservative` call (``@njit`` twin
  behind the ``REPRO_NO_NUMBA`` gate) with a saturation early-stop,
  and carries the planned profile across passes: while the cluster
  state and queue prefix are unchanged and no reservation has matured,
  a pass is either an O(log T) *defer* (still saturated — nothing can
  start) or a catch-up over just the newly submitted tail.

Both fast paths are decision-for-decision identical to the reference
loops: reservations beyond the early stop are pass-local scratch that
no caller can observe, and skipped ``admit`` calls are vacuous by the
``trivial_admit`` contract.  Any policy — even one that always admits
— forces the reference path, preserving hook visit order.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..power import kernels
from .profile import FreeNodeProfile
from .scheduler import Scheduler, SchedulingContext, StartDecision

# Re-exported for prediction-assisted schedulers (fairshare module)
# that run the EASY arithmetic over predicted runtimes.
from .reference_backfill import _earliest_fit, _release_profile  # noqa: F401

#: Queue depth below which EASY's array screens cost more than the
#: plain loop they replace (a handful of numpy dispatches vs a walk
#: over a few jobs).  Purely a performance threshold — both paths
#: make identical decisions.
_EASY_BATCH_MIN_JOBS = 64


class EasyBackfillScheduler(Scheduler):
    """EASY (aggressive) backfilling: one reservation for the head job."""

    name = "easy"

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        arrays = ctx.pending_arrays
        if (
            not ctx.trivial_admit
            or arrays is None
            or arrays[0].shape[0] < _EASY_BATCH_MIN_JOBS
        ):
            return self._schedule_reference(ctx)
        return self._schedule_batched(ctx, arrays)

    def _schedule_reference(
        self, ctx: SchedulingContext
    ) -> List[StartDecision]:
        self.allocator.begin_pass(ctx.now)
        decisions: List[StartDecision] = []
        pool = self._make_pool(ctx)
        pending = list(ctx.pending)

        # Phase 1: start jobs in order while they fit and are admitted.
        blocked_idx = None
        for i, job in enumerate(pending):
            if job.nodes <= len(pool) and ctx.admit(job):
                decisions.append(
                    StartDecision(job, self._grant(ctx, job, pool))
                )
            else:
                blocked_idx = i
                break
        if blocked_idx is None:
            return decisions

        head = pending[blocked_idx]
        shadow, spare = self._shadow_and_spare(ctx, decisions, pool, head)

        # Phase 3: backfill later jobs.
        for job in pending[blocked_idx + 1 :]:
            if job.nodes > len(pool) or not ctx.admit(job):
                continue
            ends_before_shadow = ctx.now + job.walltime_request <= shadow
            fits_spare = job.nodes <= spare
            if ends_before_shadow or fits_spare:
                nodes = self._grant(ctx, job, pool)
                if not ends_before_shadow:
                    spare -= job.nodes
                decisions.append(StartDecision(job, nodes))
        return decisions

    def _schedule_batched(
        self,
        ctx: SchedulingContext,
        arrays: Tuple[np.ndarray, np.ndarray],
    ) -> List[StartDecision]:
        """Reference pass with the two queue walks screened by arrays;
        decisions are identical (see the module docstring)."""
        self.allocator.begin_pass(ctx.now)
        decisions: List[StartDecision] = []
        nodes_a, wall_a = arrays
        m = int(nodes_a.shape[0])
        if m == 0:
            return decisions
        pool = self._make_pool(ctx)
        pending = ctx.pending

        # Phase 1 screen: job i starts iff every prior job did and
        # cumulative demand still fits, so the first in-order failure
        # is one searchsorted over the running demand sum.
        csum = np.cumsum(nodes_a)
        blocked_idx = int(csum.searchsorted(len(pool), side="right"))
        for i in range(blocked_idx):
            job = pending[i]
            decisions.append(StartDecision(job, self._grant(ctx, job, pool)))
        if blocked_idx >= m:
            return decisions

        head = pending[blocked_idx]
        shadow, spare = self._shadow_and_spare(ctx, decisions, pool, head)

        # Phase 3 screen: the reference walk only shrinks the pool and
        # the spare count, so a mask built from their *initial* values
        # over-approximates the start set — every masked-out job would
        # fail the in-loop checks too.  The loop re-checks dynamically.
        tail_nodes = nodes_a[blocked_idx + 1 :]
        tail_ends = ctx.now + wall_a[blocked_idx + 1 :]
        mask = (tail_nodes <= len(pool)) & (
            (tail_ends <= shadow) | (tail_nodes <= spare)
        )
        for k in np.flatnonzero(mask).tolist():
            job = pending[blocked_idx + 1 + k]
            if job.nodes > len(pool):
                continue
            ends_before_shadow = ctx.now + job.walltime_request <= shadow
            fits_spare = job.nodes <= spare
            if ends_before_shadow or fits_spare:
                nodes = self._grant(ctx, job, pool)
                if not ends_before_shadow:
                    spare -= job.nodes
                decisions.append(StartDecision(job, nodes))
        return decisions

    def _shadow_and_spare(self, ctx, decisions, pool, head):
        """Phase 2: the blocked head's shadow time and spare nodes,
        off the release profile.  Origin -inf keeps stale (sub-now)
        release estimates as explicit breakpoints, matching the seed's
        raw release walk; equal-time releases merge into one breakpoint
        (the seed's duplicate-entry list was only cumulative by
        accident of the walk order)."""
        profile = FreeNodeProfile.from_releases(
            float("-inf"),
            len(pool),
            self._release_events(ctx, decisions),
        )
        shadow = profile.earliest_at_least(head.nodes, ctx.now)
        if shadow is None:
            shadow = float("inf")
            # Head can never fit (larger than capacity horizon or only
            # blocked by admission) — backfill without a shadow guard is
            # unsafe for the former; guard with capacity check:
            if head.nodes <= ctx.usable_node_count:
                # Blocked by admission (e.g. power): be conservative,
                # allow only jobs that fit in currently spare nodes.
                shadow = ctx.now

        # Spare nodes at shadow time: free nodes at shadow minus head's.
        spare = max(0, profile.free_at(shadow) - head.nodes)
        return shadow, spare

    @staticmethod
    def _release_events(
        ctx: SchedulingContext, decisions: List[StartDecision]
    ) -> List[Tuple[float, int]]:
        """Release events from running jobs plus this round's grants
        (granted nodes count as busy until their walltime)."""
        events = [
            (info.expected_end, len(info.node_ids)) for info in ctx.running
        ]
        events.extend(
            (ctx.now + d.job.walltime_request, len(d.nodes)) for d in decisions
        )
        return events


class _PassCache:
    """Profile carried between consecutive conservative passes.

    ``__slots__`` and no ``__dict__`` keep the cache invisible to the
    generic state capture (``repro.state.capture`` skips slot-only
    repro objects), which is exactly right: it is a pure accelerator —
    a restored scheduler starts cold and replans, reaching identical
    decisions.
    """

    __slots__ = (
        "valid", "started", "pool_len", "capacity", "releases",
        "m", "nodes", "wall", "times", "free", "n", "monotone",
        "minf", "planned",
    )

    def __init__(self) -> None:
        self.valid = False


class ConservativeBackfillScheduler(Scheduler):
    """Conservative backfilling: every queued job holds a reservation.

    Implemented by forward-simulating the free-node profile: each job
    in priority order is planned at its earliest feasible slot; only
    jobs planned to start *now* are actually started.  Planning uses
    walltime estimates, so no earlier-reserved job is ever delayed.

    The profile lives in a :class:`FreeNodeProfile` built once per
    pass; each reservation is an incremental subtraction over its
    ``[start, end)`` window and each earliest-slot search is a single
    sliding-window-minimum walk.  Under the batched contract (see the
    module docstring) the whole pass runs through one
    :func:`repro.power.kernels.plan_conservative` call and the planned
    profile is cached across passes.
    """

    name = "conservative"

    #: Debug/test switches.  Class attributes on purpose: they stay
    #: out of per-instance state capture, and tests flip them on the
    #: instance.  When ``capture_reservations`` is set, each pass
    #: stores its reserve-call sequence (``(start, end, nodes)`` in
    #: call order) in ``last_reservations``; batched passes record the
    #: kernel's reservations (from the resume point on catch-up).
    capture_reservations = False
    last_reservations: Optional[List[Tuple[float, float, int]]] = None
    #: Saturation early-stop toggle; equivalence sweeps disable it to
    #: compare full reservation sets against the reference.
    stop_early = True

    def __init__(self, allocator=None) -> None:
        super().__init__(allocator)
        self._cache = _PassCache()

    def schedule(self, ctx: SchedulingContext) -> List[StartDecision]:
        arrays = ctx.pending_arrays
        if not ctx.trivial_admit or arrays is None:
            self._cache.valid = False
            return self._schedule_reference(ctx)
        return self._schedule_batched(ctx, arrays)

    def _schedule_reference(
        self, ctx: SchedulingContext
    ) -> List[StartDecision]:
        self.allocator.begin_pass(ctx.now)
        decisions: List[StartDecision] = []
        pool = self._make_pool(ctx)
        now = ctx.now
        resv = [] if self.capture_reservations else None

        # Release events at or before now fold into the base count —
        # identical to the seed's free_at() summing every delta with
        # time <= t (the start-now guard below still checks the real
        # pool, so folded stale estimates cannot over-start jobs).
        profile = FreeNodeProfile.from_releases(
            now,
            len(pool),
            ((info.expected_end, len(info.node_ids)) for info in ctx.running),
        )
        capacity = ctx.usable_node_count

        for job in ctx.pending:
            if job.nodes > capacity:
                continue  # can never run; do not reserve
            admitted = ctx.admit(job)
            # Earliest profile breakpoint where the job fits for its
            # whole duration.
            start = profile.earliest_fit(job.nodes, job.walltime_request)
            if start is None:
                # No breakpoint fits the job (e.g. part of the machine
                # is booting, so free nodes never reach its size).  The
                # profile is constant after its last point, so check the
                # tail: if the job fits there it can be soundly
                # reserved, otherwise no sound reservation exists —
                # leave the job unreserved (it is retried on later
                # passes as nodes come up) instead of forcing one that
                # drives the free-node profile negative and delays
                # every reservation after it.
                tail = profile.tail_time
                if profile.free_at(tail) >= job.nodes:
                    start = tail
                else:
                    continue

            if start <= now and admitted and job.nodes <= len(pool):
                nodes = self._grant(ctx, job, pool)
                profile.reserve(now, now + job.walltime_request, job.nodes)
                if resv is not None:
                    resv.append((now, now + job.walltime_request, job.nodes))
                decisions.append(StartDecision(job, nodes))
            else:
                start = max(start, now)
                profile.reserve(start, start + job.walltime_request, job.nodes)
                if resv is not None:
                    resv.append(
                        (start, start + job.walltime_request, job.nodes)
                    )
        if resv is not None:
            self.last_reservations = resv
        return decisions

    def _schedule_batched(
        self,
        ctx: SchedulingContext,
        arrays: Tuple[np.ndarray, np.ndarray],
    ) -> List[StartDecision]:
        self.allocator.begin_pass(ctx.now)
        now = ctx.now
        cache = self._cache
        nodes_a, wall_a = arrays
        m = int(nodes_a.shape[0])
        if m == 0:
            cache.valid = False
            return []
        pool_len = ctx.free_count()
        capacity = ctx.usable_node_count
        releases = tuple(
            (info.expected_end, len(info.node_ids)) for info in ctx.running
        )
        # Suffix minima over the queue: the cheapest profile window any
        # remaining job needs, for the kernel's saturation early-stop.
        sfx_nodes = np.minimum.accumulate(nodes_a[::-1])[::-1]
        sfx_wall = np.minimum.accumulate(wall_a[::-1])[::-1]
        stop_early = self.stop_early

        k0 = 0
        base_minf = float("inf")
        if (
            stop_early
            and cache.valid
            and not cache.started
            and cache.pool_len == pool_len
            and cache.capacity == capacity
            and cache.minf > now
            and (cache.n < 2 or float(cache.times[1]) > now)
            and m >= cache.m
            and cache.releases == releases
            and np.array_equal(nodes_a[: cache.m], cache.nodes)
            and np.array_equal(wall_a[: cache.m], cache.wall)
        ):
            # The previous pass's plan is still current: nothing
            # started, the pool and running set are unchanged, no
            # reservation or release breakpoint has matured, and the
            # planned queue prefix is byte-identical.  Re-check
            # saturation at the planned frontier: still saturated
            # means no job anywhere in the queue (old or newly
            # appended) can start — defer in O(log T).  Otherwise
            # catch up from the frontier on the carried profile.
            k0 = cache.planned
            if k0 >= m:
                return []
            smallest = int(sfx_nodes[k0])
            if pool_len < smallest:
                return []
            hi = int(
                cache.times[: cache.n].searchsorted(
                    now + float(sfx_wall[k0])
                )
            )
            if hi < 1:
                hi = 1
            if int(cache.free[:hi].min()) < smallest:
                return []
            times, free = cache.times, cache.free
            n = cache.n
            monotone = cache.monotone
            base_minf = cache.minf
            times, free = _grow_arrays(times, free, n, n + 2 * (m - k0))
        else:
            profile = FreeNodeProfile.from_releases(
                now, pool_len, list(releases)
            )
            times, free, n, monotone = profile.detach_arrays(2 * m)

        starts_out = np.empty(m - k0, dtype=np.int64)
        resv_out = np.empty((m - k0, 3), dtype=np.float64)
        n, planned, _, minf, monotone, n_starts, n_resv = (
            kernels.plan_conservative(
                times, free, n, nodes_a, wall_a, sfx_nodes, sfx_wall,
                k0, now, pool_len, capacity, monotone, stop_early,
                starts_out, resv_out,
            )
        )

        decisions: List[StartDecision] = []
        if n_starts:
            pool = self._make_pool(ctx)
            pending = ctx.pending
            for i in range(n_starts):
                job = pending[int(starts_out[i])]
                decisions.append(
                    StartDecision(job, self._grant(ctx, job, pool))
                )
        if self.capture_reservations:
            self.last_reservations = [
                (
                    float(resv_out[i, 0]),
                    float(resv_out[i, 1]),
                    int(resv_out[i, 2]),
                )
                for i in range(n_resv)
            ]

        cache.valid = True
        cache.started = n_starts > 0
        cache.pool_len = pool_len
        cache.capacity = capacity
        cache.releases = releases
        cache.m = m
        cache.nodes = nodes_a
        cache.wall = wall_a
        cache.times = times
        cache.free = free
        cache.n = n
        cache.monotone = monotone
        cache.minf = min(base_minf, minf)
        cache.planned = planned
        return decisions


def _grow_arrays(
    times: np.ndarray, free: np.ndarray, n: int, need: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Doubling growth of detached profile arrays (cross-pass cache)."""
    cap = int(times.shape[0])
    if cap >= need:
        return times, free
    while cap < need:
        cap *= 2
    new_times = np.empty(cap, dtype=np.float64)
    new_free = np.empty(cap, dtype=np.int64)
    new_times[:n] = times[:n]
    new_free[:n] = free[:n]
    return new_times, new_free
