"""Generic power-aware admission control.

The simplest budget mechanism the related work describes ([9]-[11]):
"an orthogonal approach to achieving a system level power budget does
not limit the performance of the processing elements, but limits the
jobs concurrently running".  A job may start only if the machine's
predicted power including the new job stays under the budget; nothing
is ever slowed or killed.

The prediction can come from any estimator — nominal worst case by
default, or a learned per-job predictor from
:mod:`repro.prediction.power_predictor` (the CINECA line of work,
where prediction quality directly bounds how tight the budget can be
run).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..core.epa import FunctionalCategory
from ..units import check_positive
from ..workload.job import Job
from .base import Policy


class PowerAwareAdmissionPolicy(Policy):
    """Admit jobs only while predicted machine power fits a budget.

    Parameters
    ----------
    budget_watts:
        Machine power budget.
    estimator:
        ``f(job) -> watts`` predicting the job's *total* draw (its
        nodes at its intensity).  Defaults to the nominal worst case
        from the power model.
    safety_margin:
        Multiplier applied to estimates (>1 = conservative); CINECA's
        prediction-based scheduling runs with a small margin to absorb
        prediction error.
    """

    name = "power-admission"

    def __init__(
        self,
        budget_watts: float,
        estimator: Optional[Callable[[Job], float]] = None,
        safety_margin: float = 1.0,
    ) -> None:
        super().__init__()
        self.budget_watts = check_positive("budget_watts", budget_watts)
        self._estimator = estimator
        self.safety_margin = check_positive("safety_margin", safety_margin)
        self.vetoes = 0

    def _default_estimate(self, job: Job) -> float:
        node = self.simulation.machine.nodes[0]
        per_node = node.idle_power + (
            (node.max_power - node.idle_power) * job.mean_power_intensity
        )
        return job.nodes * per_node

    def estimate(self, job: Job) -> float:
        """The (margin-adjusted) power estimate used for admission."""
        raw = self._estimator(job) if self._estimator else self._default_estimate(job)
        job.power_estimate = raw
        return raw * self.safety_margin

    def admit(self, job: Job, now: float) -> bool:
        current = self.simulation.machine_power()
        # The job's nodes already draw idle power; only the delta counts.
        idle_part = job.nodes * self.simulation.machine.nodes[0].idle_power
        delta = max(0.0, self.estimate(job) - idle_part)
        if current + delta > self.budget_watts:
            self.vetoes += 1
            return False
        return True

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "power-admission",
                FunctionalCategory.RESOURCE_CONTROL,
                f"limit concurrent jobs to fit "
                f"{self.budget_watts / 1e3:.0f} kW (prediction-gated)",
            ),
            (
                "power-budget-enforcement",
                FunctionalCategory.POWER_CONTROL,
                "machine power held under budget by admission alone "
                "(no throttling)",
            ),
        ]
