"""KAUST (Shaheen, Cray XC40) scenario — Table I row 4.

Production: static power capping via Cray CAPMC — 30 % of nodes
uncapped, 70 % capped at 270 W — plus SLURM Dynamic Power Management
on top of CAPMC.  The scenario installs exactly that partition; the
`exp-capping` bench sweeps the fraction and cap level.
"""

from __future__ import annotations

from ..cluster.thermal import AmbientModel
from ..core.backfill import EasyBackfillScheduler
from ..core.simulation import ClusterSimulation
from ..policies.static_capping import StaticCappingPolicy
from ..units import DAY
from .base import CenterBuild, center_workload, standard_machine, standard_site

#: The production numbers from Table I.
KAUST_CAP_WATTS = 270.0
KAUST_CAPPED_FRACTION = 0.70


def build_simulation(
    seed: int = 0,
    duration: float = 2.0 * DAY,
    nodes: int = 128,
    cap_watts: float = KAUST_CAP_WATTS,
    capped_fraction: float = KAUST_CAPPED_FRACTION,
) -> CenterBuild:
    """Assemble the KAUST scenario with the 70 % / 270 W partition."""
    # Shaheen XC40: dual-socket Haswell, ~350 W node peak.
    machine = standard_machine(
        "shaheen", nodes=nodes, idle_power=110.0, max_power=360.0,
        interconnect="dragonfly", seed=seed,
    )
    site = standard_site(
        "kaust", machine, region="Middle East",
        ambient=AmbientModel(mean=28.0, seasonal_amplitude=7.0),
    )
    policy = StaticCappingPolicy(
        cap_watts=cap_watts, capped_fraction=capped_fraction
    )
    workload = center_workload("kaust", machine, duration=duration, seed=seed)
    simulation = ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        workload,
        policies=[policy],
        site=site,
        seed=seed,
    )
    return CenterBuild(
        "kaust",
        simulation,
        notes=[
            f"{capped_fraction:.0%} of nodes capped at {cap_watts:.0f} W "
            f"(CAPMC-style)",
        ],
    )
