"""Taxonomy of EPA JSRM techniques found in the survey.

Every cell of Tables I and II names one or more concrete techniques.
This enum is the controlled vocabulary the analysis operates on; each
member maps to the :mod:`repro.policies` (or substrate) module that
implements it, so the capability matrix is *executable*.
"""

from __future__ import annotations

import enum
from typing import Dict


class Technique(enum.Enum):
    """Controlled vocabulary of surveyed EPA techniques."""

    # Capping family
    STATIC_NODE_CAPPING = "static node power capping"
    SYSTEM_CAPPING = "system-wide power capping"
    GROUP_CAPPING = "group/partition power caps"
    DYNAMIC_CAP_TRACKING = "dynamic cap tracking via provisioning"
    INTER_SYSTEM_BUDGET = "inter-system power budget sharing"
    DVFS_CONTROL = "DVFS-based power control"
    POWER_SHARING = "dynamic per-node power sharing"
    OVERPROVISIONING = "over-provisioned operation under budget"

    # Node provisioning family
    IDLE_SHUTDOWN = "idle node shutdown"
    MANUAL_SHUTDOWN = "manual node shutdown / budget shifting"

    # Emergency / enforcement
    EMERGENCY_KILL = "automated emergency job killing"
    MANUAL_EMERGENCY = "manual emergency response"

    # Prediction / characterization
    POWER_PREDICTION = "per-job power prediction"
    TEMPERATURE_MODELING = "node power/temperature evolution models"
    APP_CHARACTERIZATION = "application frequency/energy characterization"
    RUNTIME_ESTIMATION = "pre-run estimates of job behaviour"

    # Scheduling integration
    ENERGY_AWARE_SCHEDULING = "energy-aware job scheduling"
    POWER_AWARE_SCHEDULING = "power-aware job scheduling"
    LAYOUT_AWARE_SCHEDULING = "facility-layout-aware scheduling"
    TOPOLOGY_AWARE_ALLOCATION = "topology-aware task allocation"
    RESERVED_LARGE_JOB_WINDOWS = "reserved large-job periods"
    MOLDABLE_SHAPING = "moldable job configuration selection"

    # Monitoring / reporting
    CONTINUOUS_MONITORING = "continuous multi-level power monitoring"
    LONG_TERM_ARCHIVE = "long-term power/energy data archival"
    ENERGY_REPORTS = "post-job energy reports to users"
    USER_EFFICIENCY_MARKS = "user power/energy efficiency marks"
    SEGMENT_MEASUREMENT = "code-segment power measurement (Power API)"

    # Facility / grid
    GRID_INTEGRATION = "electrical grid / supply-source integration"
    COOLING_AWARE = "cooling/infrastructure-efficiency awareness"

    # Platform mechanisms
    VIRTUALIZATION = "virtual machines splitting compute nodes"
    VENDOR_COPRODUCT = "co-developed vendor product"


#: Technique -> implementing module in this framework.
TECHNIQUE_IMPLEMENTATIONS: Dict[Technique, str] = {
    Technique.STATIC_NODE_CAPPING: "repro.policies.static_capping",
    Technique.SYSTEM_CAPPING: "repro.power.capmc",
    Technique.GROUP_CAPPING: "repro.policies.group_caps",
    Technique.DYNAMIC_CAP_TRACKING: "repro.policies.dynamic_provisioning",
    Technique.INTER_SYSTEM_BUDGET: "repro.power.budget",
    Technique.DVFS_CONTROL: "repro.policies.dvfs_budget",
    Technique.POWER_SHARING: "repro.policies.power_sharing",
    Technique.OVERPROVISIONING: "repro.policies.overprovisioning",
    Technique.IDLE_SHUTDOWN: "repro.policies.node_shutdown",
    Technique.MANUAL_SHUTDOWN: "repro.policies.manual",
    Technique.EMERGENCY_KILL: "repro.policies.emergency",
    Technique.MANUAL_EMERGENCY: "repro.policies.manual",
    Technique.POWER_PREDICTION: "repro.prediction.power_predictor",
    Technique.TEMPERATURE_MODELING: "repro.prediction.thermal_model",
    Technique.APP_CHARACTERIZATION: "repro.policies.energy_tags",
    Technique.RUNTIME_ESTIMATION: "repro.prediction.runtime_predictor",
    Technique.ENERGY_AWARE_SCHEDULING: "repro.policies.energy_tags",
    Technique.POWER_AWARE_SCHEDULING: "repro.policies.power_aware_admission",
    Technique.LAYOUT_AWARE_SCHEDULING: "repro.policies.layout_aware",
    Technique.TOPOLOGY_AWARE_ALLOCATION: "repro.core.allocator",
    Technique.RESERVED_LARGE_JOB_WINDOWS: "repro.core.queue",
    Technique.MOLDABLE_SHAPING: "repro.policies.moldable",
    Technique.CONTINUOUS_MONITORING: "repro.telemetry.sampler",
    Technique.LONG_TERM_ARCHIVE: "repro.telemetry.archive",
    Technique.ENERGY_REPORTS: "repro.policies.reporting",
    Technique.USER_EFFICIENCY_MARKS: "repro.policies.reporting",
    Technique.SEGMENT_MEASUREMENT: "repro.telemetry.powerapi",
    Technique.GRID_INTEGRATION: "repro.grid.supply",
    Technique.COOLING_AWARE: "repro.power.pue",
    Technique.VIRTUALIZATION: "repro.cluster.node",
    Technique.VENDOR_COPRODUCT: "repro.policies",
}

#: Human-oriented one-liners (used in rendered tables).
TECHNIQUE_DESCRIPTIONS: Dict[Technique, str] = {
    t: t.value for t in Technique
}
