"""Tests for the synthetic workload generator and presets."""

import numpy as np
import pytest

from repro.errors import SurveyError, WorkloadError
from repro.units import DAY, HOUR
from repro.workload import (
    CENTER_WORKLOADS,
    WorkloadGenerator,
    WorkloadSpec,
    center_workload_spec,
)


class TestSpecValidation:
    def test_defaults_are_valid(self):
        WorkloadSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrival_rate": 0.0},
            {"duration": 0.0},
            {"min_nodes": 0},
            {"min_nodes": 8, "max_nodes": 4},
            {"capability_fraction": 1.5},
            {"mean_work": 0.0},
            {"overestimate_mean": 0.5},
            {"moldable_fraction": -0.1},
            {"users": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadSpec(**kwargs)


class TestGeneration:
    def _generate(self, rng, **kwargs):
        defaults = dict(arrival_rate=100.0 / HOUR, duration=1.0 * DAY,
                        max_nodes=64)
        defaults.update(kwargs)
        return WorkloadGenerator(WorkloadSpec(**defaults), rng.stream("g"))

    def test_deterministic(self, rng):
        from repro.simulator import RngStreams

        a = WorkloadGenerator(WorkloadSpec(), RngStreams(7).stream("x")).generate(count=50)
        b = WorkloadGenerator(WorkloadSpec(), RngStreams(7).stream("x")).generate(count=50)
        assert [j.submit_time for j in a] == [j.submit_time for j in b]
        assert [j.nodes for j in a] == [j.nodes for j in b]

    def test_count_exact(self, rng):
        jobs = self._generate(rng).generate(count=123)
        assert len(jobs) == 123

    def test_sorted_by_submit(self, rng):
        jobs = self._generate(rng).generate(count=100)
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)

    def test_sizes_within_bounds(self, rng):
        jobs = self._generate(rng, min_nodes=2, max_nodes=32).generate(count=200)
        assert all(2 <= j.nodes <= 32 for j in jobs)

    def test_sizes_are_powers_of_two_ish(self, rng):
        jobs = self._generate(rng, min_nodes=1, max_nodes=64).generate(count=200)
        for job in jobs:
            assert job.nodes & (job.nodes - 1) == 0 or job.nodes == 64

    def test_walltime_covers_work(self, rng):
        jobs = self._generate(rng).generate(count=200)
        assert all(j.walltime_request >= j.work_seconds for j in jobs)

    def test_walltime_quarter_hour_rounding(self, rng):
        jobs = self._generate(rng).generate(count=50)
        # Requests are rounded up to 900 s multiples (unless clamped by work).
        rounded = sum(1 for j in jobs if j.walltime_request % 900.0 == 0.0)
        assert rounded >= len(jobs) * 0.8

    def test_capability_fraction_shifts_sizes(self, rng):
        small = self._generate(rng, capability_fraction=0.0).generate(count=300)
        from repro.simulator import RngStreams

        big_gen = WorkloadGenerator(
            WorkloadSpec(arrival_rate=100.0 / HOUR, duration=1.0 * DAY,
                         max_nodes=64, capability_fraction=0.9),
            RngStreams(99).stream("g"),
        )
        big = big_gen.generate(count=300)
        assert np.mean([j.nodes for j in big]) > np.mean([j.nodes for j in small])

    def test_diurnal_concentrates_daytime(self, rng):
        jobs = self._generate(rng, diurnal=True, duration=4 * DAY).generate()
        hours = np.array([(j.submit_time % DAY) / 3600.0 for j in jobs])
        day = ((hours >= 8) & (hours < 20)).mean()
        assert day > 0.5  # more than half of submissions in working hours

    def test_moldable_fraction(self, rng):
        jobs = self._generate(rng, moldable_fraction=1.0, min_nodes=2).generate(count=100)
        with_configs = [j for j in jobs if j.moldable]
        assert len(with_configs) >= 90  # nodes==1 jobs are exempt
        for job in with_configs:
            node_counts = [c.nodes for c in job.moldable]
            assert len(node_counts) == len(set(node_counts))
            # More nodes -> less work per Amdahl.
            ordered = sorted(job.moldable, key=lambda c: c.nodes)
            works = [c.work_seconds for c in ordered]
            assert works == sorted(works, reverse=True)

    def test_zero_count_rejected(self, rng):
        with pytest.raises(WorkloadError):
            self._generate(rng).generate(count=0)

    def test_users_assigned(self, rng):
        jobs = self._generate(rng, users=3).generate(count=50)
        users = {j.user for j in jobs}
        assert users <= {"user000", "user001", "user002"}
        assert len(users) == 3


class TestPresets:
    def test_all_nine_centers_present(self):
        assert len(CENTER_WORKLOADS) == 9

    @pytest.mark.parametrize("slug", sorted(CENTER_WORKLOADS))
    def test_preset_builds_valid_spec(self, slug):
        spec = center_workload_spec(slug)
        assert spec.duration > 0

    def test_override(self):
        spec = center_workload_spec("riken", max_nodes=32)
        assert spec.max_nodes == 32

    def test_unknown_center(self):
        with pytest.raises(SurveyError):
            center_workload_spec("nowhere")

    def test_trinity_is_capability_heavy(self):
        trinity = center_workload_spec("trinity")
        tokyotech = center_workload_spec("tokyotech")
        assert trinity.capability_fraction > tokyotech.capability_fraction
        assert trinity.mean_work > tokyotech.mean_work
