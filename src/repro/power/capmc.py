"""CAPMC-style out-of-band power control.

Cray's CAPMC (Cray Advanced Platform Monitoring and Control) is the
mechanism behind three surveyed production deployments: KAUST's static
270 W caps on 70 % of Shaheen's nodes, Trinity's "administrator ability
to set system-wide and node-level power caps (available on all Cray XC
systems)", and the SLURM Dynamic Power Management KAUST co-developed
with SchedMD.  The defining property is that it is *out-of-band*: a
privileged controller that can read power and set caps or power nodes
on/off without involving the jobs.

This class is the functional equivalent: it wraps a
:class:`~repro.cluster.machine.Machine` and exposes exactly the CAPMC
verbs the surveyed policies use.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..cluster.machine import Machine
from ..cluster.node import NodeState
from ..errors import PowerCapError
from .model import NodePowerModel


class Capmc:
    """Out-of-band monitoring and control facade over one machine."""

    def __init__(self, machine: Machine, power_model: Optional[NodePowerModel] = None) -> None:
        self.machine = machine
        self.power_model = power_model or NodePowerModel()
        self._system_cap: Optional[float] = None

    # ------------------------------------------------------------------
    # Caps
    # ------------------------------------------------------------------
    def set_node_cap(self, node_ids: Iterable[int], cap_watts: Optional[float]) -> int:
        """Set (or clear) a per-node cap on the given nodes.

        Returns the number of nodes changed.  Mirrors
        ``capmc set_power_cap --nids ... --node <watts>``.
        """
        count = 0
        for nid in node_ids:
            self.machine.node(nid).set_power_cap(cap_watts)
            count += 1
        return count

    def set_system_cap(self, cap_watts: Optional[float]) -> None:
        """Set a system-wide cap, spread uniformly over powered nodes.

        The uniform spread is what vanilla CAPMC system capping does;
        smarter redistribution is the job of policies like Ellsworth's
        dynamic power sharing (see
        :mod:`repro.policies.power_sharing`).
        """
        self._system_cap = cap_watts
        if cap_watts is None:
            for node in self.machine.nodes:
                node.set_power_cap(None)
            return
        on_nodes = [n for n in self.machine.nodes if n.is_on]
        if not on_nodes:
            return
        per_node = cap_watts / len(on_nodes)
        floor = max(n.cap_floor for n in on_nodes)
        if per_node < floor:
            raise PowerCapError(
                f"system cap {cap_watts:.0f} W implies {per_node:.1f} W/node, "
                f"below the {floor:.1f} W enforceable floor"
            )
        for node in on_nodes:
            node.set_power_cap(per_node)

    @property
    def system_cap(self) -> Optional[float]:
        """Currently configured system-wide cap, if any."""
        return self._system_cap

    # ------------------------------------------------------------------
    # Node power on/off (used by provisioning policies)
    # ------------------------------------------------------------------
    def node_status(self) -> Dict[str, List[int]]:
        """Node ids grouped by state name (capmc ``node_status``)."""
        groups: Dict[str, List[int]] = {}
        for node in self.machine.nodes:
            groups.setdefault(node.state.value, []).append(node.node_id)
        return groups

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def get_power(self, utilization: float = 1.0) -> float:
        """Instantaneous machine power (watts), summed over nodes.

        *utilization* is the assumed intensity of BUSY nodes when the
        caller has no per-job information (out-of-band reads don't).
        """
        total = 0.0
        for node in self.machine.nodes:
            total += self.power_model.operating_point(node, utilization).watts
        return total

    def get_node_energy_counters(self, utilization: float = 1.0) -> Dict[int, float]:
        """Per-node instantaneous power (watts) keyed by node id."""
        return {
            node.node_id: self.power_model.operating_point(node, utilization).watts
            for node in self.machine.nodes
        }

    def powered_on_count(self) -> int:
        """Number of nodes consuming operational power."""
        return sum(1 for n in self.machine.nodes if n.is_on)

    def idle_nodes(self) -> List[int]:
        """Ids of nodes currently IDLE (candidates for shutdown)."""
        return [n.node_id for n in self.machine.nodes if n.state is NodeState.IDLE]
