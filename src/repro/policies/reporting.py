"""Per-job energy reporting and user efficiency marks.

Two production capabilities from the tables:

* Tokyo Tech: "Energy use provided to users at end of every job" and
  (tech development) "Gives users mark on how well they used power and
  energy";
* JCAHPC: "Delivering post-job energy use reports to users."

The policy collects an :class:`EnergyReport` for every finished job
and grades it A-E by comparing the job's average per-node power draw
against the machine's nominal range — a job that kept its nodes busy
near their efficient operating point scores well; a job that held
nodes mostly idle scores poorly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.epa import FunctionalCategory
from ..workload.job import Job, JobState
from .base import Policy

#: Grade thresholds on the utilization score (fraction of the node's
#: dynamic range the job actually used, time-averaged).
_GRADES = [(0.8, "A"), (0.6, "B"), (0.4, "C"), (0.2, "D"), (0.0, "E")]


@dataclass(frozen=True)
class EnergyReport:
    """Post-job energy report delivered to the submitting user."""

    job_id: str
    user: str
    energy_joules: float
    average_watts: float
    node_count: int
    run_time: float
    efficiency_score: float
    grade: str


class EnergyReportingPolicy(Policy):
    """Collect post-job energy reports and per-user summaries."""

    name = "energy-reporting"

    def __init__(self) -> None:
        super().__init__()
        self.reports: List[EnergyReport] = []

    # -- state capture: reports are nested dataclasses, which the
    # generic attribute walk cannot rebuild inside a container; hand
    # repro.state a flat-tuple form instead so checkpoint/restore keeps
    # the full report history (riken/jcahpc replay divergence fix).
    def __repro_getstate__(self) -> Dict[str, list]:
        return {
            "reports": [
                (r.job_id, r.user, r.energy_joules, r.average_watts,
                 r.node_count, r.run_time, r.efficiency_score, r.grade)
                for r in self.reports
            ]
        }

    def __repro_setstate__(self, state: Dict[str, list]) -> None:
        self.reports = [
            EnergyReport(
                job_id=jid, user=user, energy_joules=energy,
                average_watts=watts, node_count=int(nodes), run_time=run,
                efficiency_score=score, grade=grade,
            )
            for jid, user, energy, watts, nodes, run, score, grade
            in state["reports"]
        ]

    def on_job_end(self, job: Job, now: float) -> None:
        run = job.run_time
        if run is None or run <= 0 or job.state is JobState.CANCELLED:
            return
        avg_watts = job.energy_joules / run
        node = self.simulation.machine.nodes[0]
        per_node = avg_watts / max(1, job.nodes)
        dyn_range = max(node.max_power - node.idle_power, 1e-9)
        score = (per_node - node.idle_power) / dyn_range
        score = min(1.0, max(0.0, score))
        grade = next(g for threshold, g in _GRADES if score >= threshold)
        self.reports.append(
            EnergyReport(
                job_id=job.job_id,
                user=job.user,
                energy_joules=job.energy_joules,
                average_watts=avg_watts,
                node_count=job.nodes,
                run_time=run,
                efficiency_score=score,
                grade=grade,
            )
        )

    # ------------------------------------------------------------------
    def report_for(self, job_id: str) -> Optional[EnergyReport]:
        """The report for one job, if it finished."""
        for report in self.reports:
            if report.job_id == job_id:
                return report
        return None

    def user_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-user totals: jobs, energy, mean efficiency score."""
        summary: Dict[str, Dict[str, float]] = {}
        for report in self.reports:
            entry = summary.setdefault(
                report.user, {"jobs": 0.0, "energy_joules": 0.0, "score_sum": 0.0}
            )
            entry["jobs"] += 1
            entry["energy_joules"] += report.energy_joules
            entry["score_sum"] += report.efficiency_score
        for entry in summary.values():
            entry["mean_score"] = entry.pop("score_sum") / entry["jobs"]
        return summary

    def epa_components(self) -> List[Tuple[str, FunctionalCategory, str]]:
        return [
            (
                "energy-reports",
                FunctionalCategory.POWER_MONITORING,
                "post-job energy use reports with efficiency marks",
            )
        ]
