"""Tests for the emergency power policy and power-aware admission."""


from repro.cluster import Machine, MachineSpec
from repro.cluster.site import Site
from repro.cluster.thermal import AmbientModel
from repro.core import ClusterSimulation, EasyBackfillScheduler
from repro.policies import EmergencyPowerPolicy, PowerAwareAdmissionPolicy
from repro.units import HOUR
from repro.workload import JobState
from repro.workload.phases import COMPUTE_BOUND
from tests.conftest import make_job


def machine16():
    return Machine(MachineSpec(name="m", nodes=16,
                               idle_power=100.0, max_power=400.0))


class TestEmergencyPolicy:
    def test_gate_vetoes_hungry_job(self):
        machine = machine16()
        limit = machine.idle_floor_power + 200.0  # near-zero headroom
        policy = EmergencyPowerPolicy(limit_watts=limit)
        job = make_job(nodes=8, work=100.0, walltime=1000.0,
                       profile=COMPUTE_BOUND)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run(until=1 * HOUR)
        assert job.state is JobState.PENDING
        assert policy.vetoes > 0
        assert job.power_estimate is not None

    def test_kills_on_sustained_excess(self):
        machine = machine16()
        job = make_job(nodes=16, work=5000.0, walltime=10_000.0,
                       profile=COMPUTE_BOUND)
        # Gate disabled: the job starts, then the limit is violated.
        policy = EmergencyPowerPolicy(
            limit_watts=machine.peak_power * 0.5,
            grace_period=300.0,
            check_interval=60.0,
            gate_enabled=False,
        )
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        assert job.state is JobState.KILLED
        assert "power" in job.kill_reason
        assert policy.kills == 1
        # The kill happened only after the grace period.
        assert job.end_time >= 300.0

    def test_grace_period_tolerates_short_spikes(self):
        machine = machine16()
        # Short job ends before the grace period expires: no kill.
        job = make_job(nodes=16, work=100.0, walltime=200.0,
                       profile=COMPUTE_BOUND)
        policy = EmergencyPowerPolicy(
            limit_watts=machine.peak_power * 0.5,
            grace_period=300.0,
            check_interval=30.0,
            gate_enabled=False,
        )
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        assert job.state is JobState.COMPLETED
        assert policy.kills == 0

    def test_kills_hungriest_first(self):
        machine = machine16()
        big = make_job(job_id="big", nodes=8, work=5000.0, walltime=10_000.0,
                       profile=COMPUTE_BOUND)
        small = make_job(job_id="small", nodes=1, work=5000.0,
                         walltime=10_000.0, profile=COMPUTE_BOUND)
        limit = machine.idle_floor_power + 1.5 * 300.0  # fits small only
        policy = EmergencyPowerPolicy(limit_watts=limit, grace_period=60.0,
                                      check_interval=30.0, gate_enabled=False)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(),
                                [big, small], policies=[policy])
        sim.run()
        assert big.state is JobState.KILLED
        assert small.state is JobState.COMPLETED

    def test_temperature_raises_estimates(self):
        machine = machine16()
        hot = Site("hot", [machine],
                   ambient=AmbientModel(mean=35.0, seasonal_amplitude=0.0,
                                        diurnal_amplitude=0.0))
        policy = EmergencyPowerPolicy(limit_watts=machine.peak_power)
        ClusterSimulation(machine, EasyBackfillScheduler(), [],
                          policies=[policy], site=hot)
        job = make_job(nodes=4, profile=COMPUTE_BOUND)
        hot_estimate = policy.estimate_job_power(job, now=0.0)

        machine2 = machine16()
        cold = Site("cold", [machine2],
                    ambient=AmbientModel(mean=5.0, seasonal_amplitude=0.0,
                                         diurnal_amplitude=0.0))
        policy2 = EmergencyPowerPolicy(limit_watts=machine2.peak_power)
        ClusterSimulation(machine2, EasyBackfillScheduler(), [],
                          policies=[policy2], site=cold)
        cold_estimate = policy2.estimate_job_power(job, now=0.0)
        assert hot_estimate > cold_estimate


class TestPowerAwareAdmission:
    def test_limits_concurrency_under_budget(self):
        machine = machine16()
        # Budget fits ~4 busy nodes' dynamic power above the idle floor.
        budget = machine.idle_floor_power + 4 * 300.0
        jobs = [make_job(job_id=f"j{i}", nodes=2, work=500.0,
                         walltime=2000.0, profile=COMPUTE_BOUND)
                for i in range(8)]
        policy = PowerAwareAdmissionPolicy(budget_watts=budget)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), jobs,
                                policies=[policy],
                                cap_watts_for_metrics=budget)
        result = sim.run()
        assert result.metrics.jobs_completed == 8
        assert policy.vetoes > 0
        # Sampled power never exceeded the budget materially.
        assert result.metrics.peak_power_watts <= budget * 1.02

    def test_custom_estimator_used(self):
        machine = machine16()
        calls = []

        def estimator(job):
            calls.append(job.job_id)
            return 100.0  # wildly optimistic

        policy = PowerAwareAdmissionPolicy(
            budget_watts=machine.idle_floor_power + 10.0,
            estimator=estimator,
        )
        job = make_job(nodes=2, work=50.0, walltime=500.0)
        sim = ClusterSimulation(machine, EasyBackfillScheduler(), [job],
                                policies=[policy])
        sim.run()
        # Optimistic estimate admits the job despite the tiny budget.
        assert job.state is JobState.COMPLETED
        assert calls

    def test_safety_margin_tightens(self):
        machine = machine16()
        budget = machine.idle_floor_power + 4 * 300.0

        def count_vetoes(margin):
            jobs = [make_job(job_id=f"j{i}", nodes=2, work=500.0,
                             walltime=2000.0, profile=COMPUTE_BOUND)
                    for i in range(8)]
            policy = PowerAwareAdmissionPolicy(budget_watts=budget,
                                               safety_margin=margin)
            machine_fresh = machine16()
            sim = ClusterSimulation(machine_fresh, EasyBackfillScheduler(),
                                    jobs, policies=[policy])
            sim.run()
            return policy.vetoes

        assert count_vetoes(1.5) >= count_vetoes(1.0)
