"""JCAHPC (Oakforest-PACS) scenario — Table II row 4.

Production: group power caps via the resource manager (Fujitsu
proprietary), manual emergency response (admin sets a cap), and
post-job energy reports.  The machine is split into node groups with
per-group caps; an admin emergency action tightens one group's cap
mid-run.
"""

from __future__ import annotations

from ..cluster.thermal import AmbientModel
from ..core.backfill import EasyBackfillScheduler
from ..core.simulation import ClusterSimulation
from ..policies.group_caps import GroupCapPolicy
from ..policies.manual import AdminAction, ManualActionPolicy
from ..policies.reporting import EnergyReportingPolicy
from ..units import DAY, HOUR
from .base import CenterBuild, center_workload, standard_machine, standard_site


def build_simulation(
    seed: int = 0,
    duration: float = 2.0 * DAY,
    nodes: int = 128,
    groups: int = 4,
    group_cap_fraction: float = 0.85,
    emergency_at: float = 12.0 * HOUR,
    emergency_fraction: float = 0.6,
) -> CenterBuild:
    """Assemble the JCAHPC scenario with grouped caps + emergency."""
    # Oakforest-PACS: Knights Landing nodes.
    machine = standard_machine(
        "oakforest-pacs", nodes=nodes, idle_power=100.0, max_power=330.0,
        seed=seed,
    )
    site = standard_site(
        "jcahpc", machine, region="Asia",
        ambient=AmbientModel(mean=15.5, seasonal_amplitude=10.0),
    )
    per_group = max(1, nodes // groups)
    group_map = {
        f"group{g}": [
            n.node_id for n in machine.nodes[g * per_group : (g + 1) * per_group]
        ]
        for g in range(groups)
    }
    group_map = {k: v for k, v in group_map.items() if v}
    group_peak = per_group * machine.nodes[0].effective_max_power
    caps = {name: group_peak * group_cap_fraction for name in group_map}
    group_policy = GroupCapPolicy(group_map, caps)

    manual = ManualActionPolicy(
        [
            AdminAction(
                emergency_at,
                "custom",
                callback=lambda: group_policy.set_group_cap(
                    "group0", group_peak * emergency_fraction
                ),
            )
        ]
    )
    workload = center_workload("jcahpc", machine, duration=duration, seed=seed)
    simulation = ClusterSimulation(
        machine,
        EasyBackfillScheduler(),
        workload,
        policies=[group_policy, manual, EnergyReportingPolicy()],
        site=site,
        seed=seed,
    )
    return CenterBuild(
        "jcahpc",
        simulation,
        notes=[
            f"{len(group_map)} node groups capped at "
            f"{group_cap_fraction:.0%} of group peak",
            f"admin emergency tightens group0 to {emergency_fraction:.0%} "
            f"at t={emergency_at / HOUR:.0f}h",
        ],
    )
