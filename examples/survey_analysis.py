#!/usr/bin/env python
"""Regenerate the paper's artifacts: Tables I/II, Figures 1/2, and the
announced cross-center analysis — then execute the capability matrix
itself as a parallel cached sweep over all nine center scenarios.

Run:  python examples/survey_analysis.py
A second run serves the sweep from ``benchmarks/out/cache/`` without
re-simulating anything.
"""

import functools
import os

from repro.analysis import (
    DEFAULT_CACHE_DIR,
    ExperimentExecutor,
    ExperimentRunner,
    Variant,
    render_dict_table,
    render_executor_summary,
)
from repro.centers import build_center_simulation, center_slugs
from repro.units import HOUR
from repro.survey import (
    SurveyAnalysis,
    build_component_graph,
    regional_distribution,
    selection_funnel,
    verify_component_graph,
)
from repro.survey.components import category_coverage
from repro.survey.geography import ascii_map
from repro.survey.matrix import render_table1, render_table2


def main() -> None:
    print(render_table1(cell_width=30))
    print()
    print(render_table2(cell_width=30))

    print("\nFIGURE 1 — component graph verification:")
    graph = build_component_graph()
    problems = verify_component_graph(graph)
    print(f"  {graph.number_of_nodes()} components, "
          f"{graph.number_of_edges()} interactions, "
          f"problems: {problems or 'none'}")
    for category, members in category_coverage(graph).items():
        print(f"  {category.value}: {', '.join(sorted(members))}")

    print("\nFIGURE 2 — geographic distribution:")
    for region, count in sorted(regional_distribution().items()):
        print(f"  {region:15s}: {count}")
    print()
    print(ascii_map())

    funnel = selection_funnel()
    print(f"\nSELECTION — identified {funnel.identified}, "
          f"participating {funnel.participating} "
          f"({funnel.participation_rate:.0%})")

    analysis = SurveyAnalysis()
    print("\nANALYSIS — common themes (>= 3 centers):")
    for record in analysis.common_themes(min_centers=3):
        print(f"  {record.technique.value:45s} "
              f"{record.total_centers} centers "
              f"({len(record.production)} in production)")

    print("\nANALYSIS — research/practice gap (research-only techniques):")
    for technique in analysis.research_production_gap()["research_only"]:
        print(f"  {technique.value}")

    print("\nANALYSIS — center clusters:")
    clusters = analysis.cluster_centers(num_clusters=3)
    by_label: dict = {}
    for slug, label in clusters.items():
        by_label.setdefault(label, []).append(slug)
    for label, members in sorted(by_label.items()):
        print(f"  cluster {label}: {', '.join(members)}")
    a, b, score = analysis.most_similar_pair()
    print(f"  most similar pair: {a} / {b} (Jaccard {score:.2f})")

    print("\nANALYSIS — vendor engagement:")
    for partner, centers in analysis.vendor_engagement().items():
        print(f"  {partner:30s}: {', '.join(centers)}")

    run_center_sweep()


def run_center_sweep() -> None:
    """Execute all nine scenarios through the parallel cached executor."""
    workers = min(4, os.cpu_count() or 1)
    runner = ExperimentRunner([
        Variant(slug, functools.partial(build_center_simulation, slug,
                                        seed=13, duration=1 * HOUR, nodes=24))
        for slug in center_slugs()
    ])
    executor = ExperimentExecutor(workers=workers,
                                  cache_dir=DEFAULT_CACHE_DIR / "example-sweep")
    runner.run_all(executor=executor)

    print(f"\nEXECUTION — capability matrix run "
          f"({workers} workers, 24 nodes, 1 simulated hour):")
    print(render_dict_table(
        runner.metric_table(["jobs_completed", "utilization", "mean_wait",
                             "average_power_watts", "total_energy_joules"]),
        metric_units={"mean_wait": "s", "average_power_watts": "W",
                      "total_energy_joules": "J"},
        row_label="center",
    ))
    print()
    print(render_executor_summary(executor.last_records))
    print(f"  wall {executor.last_wall_seconds:.2f}s — "
          f"{executor.last_executed} simulated, "
          f"{executor.last_cache_hits} from cache "
          f"({executor.cache.root}/)")


if __name__ == "__main__":
    main()
