"""Executable center configurations.

One module per surveyed center, each wiring a scaled machine model,
the center's Q3-style workload preset and its Tables-I/II production
policy stack into a ready-to-run
:class:`~repro.core.simulation.ClusterSimulation`.  The registry makes
the capability matrix *executable*: iterating it runs every surveyed
production technique.
"""

from .base import CenterBuild, standard_machine, standard_site
from .registry import (
    CENTER_BUILDERS,
    CENTER_MARKETS,
    build_center_simulation,
    center_market,
    center_slugs,
)

__all__ = [
    "CENTER_BUILDERS",
    "CENTER_MARKETS",
    "CenterBuild",
    "build_center_simulation",
    "center_market",
    "center_slugs",
    "standard_machine",
    "standard_site",
]
