"""Tests for DVFS ladders and RAPL windowed limiting."""

import pytest

from repro.errors import ConfigurationError, PowerCapError
from repro.power import FrequencyLadder, RaplDomain


class TestFrequencyLadder:
    def test_sorted_and_validated(self):
        ladder = FrequencyLadder([2.0e9, 1.0e9, 1.5e9])
        assert ladder.frequencies == [1.0e9, 1.5e9, 2.0e9]
        assert ladder.f_min == 1.0e9
        assert ladder.f_max == 2.0e9
        assert len(ladder) == 3

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ConfigurationError):
            FrequencyLadder([])
        with pytest.raises(ConfigurationError):
            FrequencyLadder([1e9, 1e9])
        with pytest.raises(ConfigurationError):
            FrequencyLadder([-1e9, 1e9])

    def test_linear_builder(self):
        ladder = FrequencyLadder.linear(1e9, 2e9, 5)
        assert len(ladder) == 5
        assert ladder.f_min == 1e9
        assert ladder.f_max == 2e9
        gaps = [b - a for a, b in zip(ladder.frequencies, ladder.frequencies[1:])]
        assert all(g == pytest.approx(gaps[0]) for g in gaps)

    def test_linear_single_step(self):
        assert FrequencyLadder.linear(1e9, 2e9, 1).frequencies == [2e9]

    def test_clamp_rounds_down(self):
        ladder = FrequencyLadder([1e9, 1.5e9, 2e9])
        assert ladder.clamp(1.7e9) == 1.5e9
        assert ladder.clamp(2.5e9) == 2e9
        assert ladder.clamp(0.5e9) == 1e9  # floor

    def test_step_down_up(self):
        ladder = FrequencyLadder([1e9, 1.5e9, 2e9])
        assert ladder.step_down(2e9) == 1.5e9
        assert ladder.step_down(1e9) == 1e9
        assert ladder.step_up(1e9) == 1.5e9
        assert ladder.step_up(2e9) == 2e9


class TestRaplDomain:
    def test_unlimited_domain(self):
        domain = RaplDomain(window_seconds=10.0)
        domain.record(0.0, 500.0)
        assert domain.allowance(5.0) == float("inf")
        assert domain.compliant(5.0)

    def test_window_average_flat_signal(self):
        domain = RaplDomain(limit_watts=100.0, window_seconds=10.0)
        for t in range(11):
            domain.record(float(t), 80.0)
        assert domain.window_average(10.0) == pytest.approx(80.0)
        assert domain.compliant(10.0)

    def test_window_average_expires_old_samples(self):
        domain = RaplDomain(limit_watts=100.0, window_seconds=5.0)
        domain.record(0.0, 1000.0)
        for t in range(1, 11):
            domain.record(float(t), 50.0)
        # The 1000 W sample is far outside the 5 s window.
        assert domain.window_average(10.0) == pytest.approx(50.0)

    def test_over_limit_not_compliant(self):
        domain = RaplDomain(limit_watts=100.0, window_seconds=10.0)
        for t in range(11):
            domain.record(float(t), 150.0)
        assert not domain.compliant(10.0)

    def test_allowance_gives_credit_after_low_draw(self):
        domain = RaplDomain(limit_watts=100.0, window_seconds=10.0)
        for t in range(6):
            domain.record(float(t), 50.0)  # half the limit for 5 s
        # Budget 1000 J, spent 250 J, 5 s remain: 150 W sustainable.
        assert domain.allowance(5.0) == pytest.approx(150.0)

    def test_allowance_tightens_after_high_draw(self):
        domain = RaplDomain(limit_watts=100.0, window_seconds=10.0)
        low = RaplDomain(limit_watts=100.0, window_seconds=10.0)
        for t in range(6):
            domain.record(float(t), 140.0)
            low.record(float(t), 50.0)
        assert domain.allowance(5.0) < low.allowance(5.0)
        # Budget 1000 J, spent 700 J, 5 s remain: 60 W sustainable.
        assert domain.allowance(5.0) == pytest.approx(60.0)

    def test_short_burst_is_compliant(self):
        # The defining RAPL behaviour: a burst much shorter than the
        # window never breaks the running average.
        domain = RaplDomain(limit_watts=100.0, window_seconds=10.0)
        domain.record(0.0, 400.0)
        domain.record(2.0, 0.0)  # burst ends after 2 s
        assert domain.window_average(10.0) == pytest.approx(80.0)
        assert domain.compliant(10.0)

    def test_steady_state_allowance(self):
        domain = RaplDomain(limit_watts=100.0, window_seconds=10.0)
        for t in range(0, 11):
            domain.record(float(t), 80.0)
        # Fully covered window at 80 W: steady allowance = 2L - avg.
        assert domain.allowance(10.0) == pytest.approx(120.0)

    def test_limit_validation(self):
        with pytest.raises(PowerCapError):
            RaplDomain(limit_watts=0.0)
        domain = RaplDomain(limit_watts=50.0)
        domain.set_limit(None)
        assert domain.limit_watts is None

    def test_cold_start_allows_limit(self):
        domain = RaplDomain(limit_watts=100.0, window_seconds=10.0)
        assert domain.allowance(0.0) == pytest.approx(100.0)
